"""A4 — ablation: the position queues' two-queue (free-list) scheme.

§4: "To reduce the number of memory allocations, Dimmunix uses a second
queue, where the elements deleted from the main queue are stored" — cells
are recycled instead of reallocated on every acquisition.

Measured two ways: structurally (allocations vs reuses after a lock-churn
workload — steady state must not allocate) and as a raw add/remove
timing microbenchmark, the only bench here where pytest-benchmark's
multi-round timing is the headline number.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentRecord
from repro.core.callstack import CallStack
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionQueue
from repro.dalvik.vm import VMConfig
from repro.workloads.microbench import MicrobenchConfig, run_vm_microbench

VM_CONFIG = VMConfig(ticks_per_second=200_000, stack_retrieval_cost=3)


def bench_steady_state_does_not_allocate(benchmark, record):
    config = MicrobenchConfig(
        threads=16,
        locks=32,
        sites=8,
        iterations_per_thread=64,
        inside_spin=20,
        outside_spin=85,
        history_size=128,
        seed=9,
    )

    def measure():
        return run_vm_microbench(config, dimmunix=True, vm_config=VM_CONFIG)

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    stats = result.stats
    assert stats is not None
    adds = stats.acquisitions  # one queue add per granted acquisition
    # Reach into the run's structure counters via the engine snapshot the
    # microbench captured: allocations = peak concurrency, reuses = rest.
    # (The engine object is gone; the counters live on in the stats.)
    syncs = config.threads * config.iterations_per_thread * config.sites
    print()
    print(
        f"A4 - {syncs} syncs; queue adds ~{adds}; "
        f"see structural assertion below"
    )

    # Structural check on a fresh engine-level run of the same shape.
    from repro.core.engine import DimmunixCore
    from repro.config import DimmunixConfig

    core = DimmunixCore(DimmunixConfig())
    threads = [core.register_thread(f"t{i}") for i in range(8)]
    locks = [core.register_lock(f"l{i}") for i in range(8)]
    stack = CallStack.single("Churn.java", 7)
    for round_index in range(200):
        for thread, lock in zip(threads, locks):
            verdict = core.request(thread, lock, stack)
            assert verdict.verdict.value == "proceed"
            core.acquired(thread, lock)
        for thread, lock in zip(threads, locks):
            core.release(thread, lock)
    allocations = core.positions.total_queue_allocations()
    reuses = core.positions.total_queue_reuses()
    total_adds = allocations + reuses
    print(
        f"A4 - churn: {total_adds} queue adds, {allocations} allocations, "
        f"{reuses} reuses ({reuses / total_adds * 100:.1f}% recycled)"
    )
    holds = allocations <= 8 and reuses == total_adds - allocations
    record(
        ExperimentRecord(
            experiment_id="A4",
            description="free-list recycles queue cells in steady state",
            paper_value="second queue eliminates steady-state allocations",
            measured_value=(
                f"{allocations} allocations for {total_adds} adds "
                f"({reuses / total_adds * 100:.1f}% recycled)"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_queue_add_remove_cycle(benchmark, record):
    """Raw cost of one add+remove pair once the free list is warm."""
    queue = PositionQueue()
    thread = ThreadNode("t")
    lock = LockNode("l")
    # Warm the free list so the timed loop is pure reuse.
    queue.add(thread, lock)
    queue.remove(thread, lock)

    def cycle():
        queue.add(thread, lock)
        queue.remove(thread, lock)

    benchmark(cycle)
    allocations = queue.allocations
    print()
    print(
        f"A4 - after {queue.reuses} timed cycles: "
        f"{allocations} total allocation(s)"
    )
    record(
        ExperimentRecord(
            experiment_id="A4.hotpath",
            description="warm add/remove allocates nothing",
            paper_value="pop a free cell, point it at t, push it (§4)",
            measured_value=f"{allocations} allocation(s) across all timed cycles",
            holds=allocations == 1,
        )
    )
    assert allocations == 1


def bench_burst_allocates_once_then_recycles(benchmark, record):
    """Bursts allocate up to the high-water mark, then never again."""

    def burst_workload():
        queue = PositionQueue()
        threads = [ThreadNode(f"t{i}") for i in range(32)]
        locks = [LockNode(f"l{i}") for i in range(32)]
        for _round in range(50):
            for thread, lock in zip(threads, locks):
                queue.add(thread, lock)
            for thread, lock in zip(threads, locks):
                queue.remove(thread, lock)
        return queue

    queue = benchmark.pedantic(burst_workload, rounds=3, iterations=1)
    print()
    print(
        f"A4 - burst: {queue.allocations} allocations, "
        f"{queue.reuses} reuses, free list holds "
        f"{queue.free_list_length()} cells"
    )
    holds = (
        queue.allocations == 32
        and queue.reuses == 32 * 49
        and queue.free_list_length() == 32
    )
    record(
        ExperimentRecord(
            experiment_id="A4.highwater",
            description="allocations bounded by peak queue occupancy",
            paper_value="allocation only when the second queue is empty",
            measured_value=(
                f"{queue.allocations} allocations for "
                f"{queue.allocations + queue.reuses} adds"
            ),
            holds=holds,
        )
    )
    assert holds
