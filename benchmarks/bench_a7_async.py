"""A7 — the asyncio adapter layer: overhead and avoidance latency.

The aio layer runs the same Request/Acquired/Release loop as every other
adapter, but on the cooperative schedule — so the two numbers that matter
are different from the thread layer's:

* **Uncontended immunized-acquire overhead** — the per-``async with``
  cost of consulting the engine, measured against a raw ``asyncio.Lock``.
  This is the §5 "common case" number for coroutine code: no contention,
  no in-history positions, just the detection/avoidance bookkeeping.
* **Avoidance latency under task fan-out** — with an antibody loaded,
  a parked task resumes when the blocking release arrives; the yield→
  resume gap (event-timestamped by the engine's monotonic clock) is the
  price a task pays for immunity when avoidance actually engages, and it
  must stay bounded as the number of contending tasks grows. Fan-out
  scales the *task count* at constant signature size (K independent
  AB/BA pairs sharing one two-entry signature's positions): the
  instantiation matcher backtracks over per-position queues, so its cost
  is governed by signature length, not task count — a single N-task
  cycle signature instead grows the matching search factorially (the
  avoidance module's "signatures almost always have 2 entries"
  assumption), which is a history-shape ablation (A3/A4), not a fan-out
  one.

``DIMMUNIX_BENCH_SMOKE=1`` shrinks iteration counts and skips the
wall-clock assertions so CI can run this as a collection/regression
check without timing flakes.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.aio.runtime import AsyncioDimmunixRuntime
from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.config import DetectionPolicy, DimmunixConfig
from repro.errors import DeadlockDetectedError

SMOKE = os.environ.get("DIMMUNIX_BENCH_SMOKE") == "1"

ACQUIRE_PAIRS = 2_000 if SMOKE else 50_000
FANOUT_PAIRS = (4,) if SMOKE else (2, 8, 32)
FANOUT_ROUNDS = 2 if SMOKE else 3

CONFIG = DimmunixConfig(
    detection_policy=DetectionPolicy.RAISE, yield_timeout=2.0
)


# ----------------------------------------------------------------------
# uncontended immunized-acquire overhead
# ----------------------------------------------------------------------

def _time_raw_pairs(pairs: int) -> float:
    """ns per acquire/release pair on a vanilla asyncio.Lock."""

    async def scenario() -> float:
        lock = asyncio.Lock()
        start = time.perf_counter_ns()
        for _ in range(pairs):
            async with lock:
                pass
        return (time.perf_counter_ns() - start) / pairs

    return asyncio.run(scenario())


def _time_immunized_pairs(pairs: int) -> float:
    """ns per acquire/release pair on an AioDimmunixLock."""
    runtime = AsyncioDimmunixRuntime(CONFIG, name="a7-uncontended")

    async def scenario() -> float:
        lock = runtime.lock("hot")
        start = time.perf_counter_ns()
        for _ in range(pairs):
            async with lock:
                pass
        return (time.perf_counter_ns() - start) / pairs

    return asyncio.run(scenario())


def bench_async_uncontended_overhead(benchmark, record):
    raw_ns = _time_raw_pairs(ACQUIRE_PAIRS)

    immunized_ns = benchmark.pedantic(
        _time_immunized_pairs,
        args=(ACQUIRE_PAIRS,),
        rounds=1,
        iterations=1,
    )
    overhead = immunized_ns / raw_ns if raw_ns else float("inf")

    print()
    print(
        render_table(
            ["Variant", "ns / acquire+release", "Relative"],
            [
                ["asyncio.Lock (vanilla)", f"{raw_ns:,.0f}", "1.00x"],
                [
                    "AioDimmunixLock",
                    f"{immunized_ns:,.0f}",
                    f"{overhead:.2f}x",
                ],
            ],
            title=(
                f"A7 - uncontended async acquire ({ACQUIRE_PAIRS:,} pairs, "
                "1 task, empty history)"
            ),
        )
    )
    record(
        ExperimentRecord(
            experiment_id="A7",
            description="uncontended immunized asyncio acquire overhead",
            paper_value=(
                "common-case Request/Release adds a few microseconds per "
                "sync (4-5% on sync-heavy workloads)"
            ),
            measured_value=(
                f"{raw_ns:,.0f} ns raw vs {immunized_ns:,.0f} ns "
                f"immunized ({overhead:.1f}x) per uncontended pair"
            ),
            holds=immunized_ns < 200_000,
        )
    )
    if SMOKE:
        return
    assert immunized_ns < 200_000, "immunized async acquire above 200µs"


# ----------------------------------------------------------------------
# avoidance latency under task fan-out
# ----------------------------------------------------------------------

async def _pair_fanout_workload(
    runtime: AsyncioDimmunixRuntime, pairs: int, rounds: int
) -> int:
    """K independent AB/BA pairs, all funneling through two positions.

    Every pair has private locks, but all pairs share the two source
    lines below — after the antibody is recorded those two positions are
    in history, so concurrent pairs constantly park and resume on the
    signature. Returns the number of detections observed (0 once
    immune).
    """
    detections = 0

    async def ab(lock_a, lock_b) -> None:
        nonlocal detections
        for _ in range(rounds):
            try:
                async with lock_a:
                    await asyncio.sleep(0)
                    async with lock_b:
                        await asyncio.sleep(0)
            except DeadlockDetectedError:
                detections += 1
                await asyncio.sleep(0)

    async def ba(lock_a, lock_b) -> None:
        nonlocal detections
        for _ in range(rounds):
            try:
                async with lock_b:
                    await asyncio.sleep(0)
                    async with lock_a:
                        await asyncio.sleep(0)
            except DeadlockDetectedError:
                detections += 1
                await asyncio.sleep(0)

    tasks = []
    for index in range(pairs):
        lock_a = runtime.lock(f"fan-a{index}")
        lock_b = runtime.lock(f"fan-b{index}")
        tasks.append(asyncio.ensure_future(ab(lock_a, lock_b)))
        tasks.append(asyncio.ensure_future(ba(lock_a, lock_b)))
    await asyncio.gather(*tasks)
    return detections


def _pair_fanout_with_antibodies(pairs: int) -> dict:
    """Seed the two-entry signature, then measure the immunized run."""
    seed = AsyncioDimmunixRuntime(CONFIG, name=f"a7-seed-{pairs}")
    asyncio.run(_pair_fanout_workload(seed, 1, FANOUT_ROUNDS))
    assert len(seed.history) >= 1

    second = AsyncioDimmunixRuntime(
        CONFIG, history=seed.history, name=f"a7-avoid-{pairs}"
    )
    yields: dict[str, float] = {}
    latencies: list[float] = []

    def watch(event) -> None:
        if event.kind == "yield":
            yields[event.thread] = event.ts
        elif event.kind == "resume" and event.thread in yields:
            latencies.append(event.ts - yields.pop(event.thread))

    second.subscribe(watch, kinds=("yield", "resume"))
    started = time.perf_counter()
    detections = asyncio.run(
        _pair_fanout_workload(second, pairs, FANOUT_ROUNDS)
    )
    elapsed = time.perf_counter() - started
    return {
        "pairs": pairs,
        "tasks": pairs * 2,
        "detections": detections,
        "yields": second.stats.yields,
        "latencies": latencies,
        "wall_seconds": elapsed,
    }


def bench_async_avoidance_latency(benchmark, record):
    rows = []

    def sweep():
        return [_pair_fanout_with_antibodies(pairs) for pairs in FANOUT_PAIRS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    worst_mean = 0.0
    for result in results:
        latencies = result["latencies"]
        mean_ms = (
            sum(latencies) / len(latencies) * 1000 if latencies else 0.0
        )
        worst_mean = max(worst_mean, mean_ms)
        rows.append(
            [
                result["tasks"],
                result["detections"],
                result["yields"],
                f"{mean_ms:.2f} ms" if latencies else "n/a",
                f"{result['wall_seconds'] * 1000:.0f} ms",
            ]
        )
        assert result["detections"] == 0, "antibody must prevent re-detection"

    print()
    print(
        render_table(
            ["Tasks", "Detections", "Yields", "Mean yield->resume", "Wall"],
            rows,
            title=(
                "A7 - avoidance latency under task fan-out "
                f"({FANOUT_ROUNDS} rounds per task, antibody loaded)"
            ),
        )
    )
    record(
        ExperimentRecord(
            experiment_id="A7.avoidance",
            description="cooperative avoidance latency under task fan-out",
            paper_value=(
                "parked threads resume as soon as the blocking position "
                "is released (no busy wait)"
            ),
            measured_value=(
                ", ".join(
                    f"{row[0]} tasks: {row[3]} mean park" for row in rows
                )
            ),
            holds=all(result["detections"] == 0 for result in results),
        )
    )
    if SMOKE:
        return
    assert worst_mean < 1000, "yield->resume latency above a second"


# ----------------------------------------------------------------------
# the sub-2µs fast-path gate
# ----------------------------------------------------------------------

FASTPATH_ACQUIRES = 2_000 if SMOKE else 30_000
FASTPATH_ROUNDS = 2 if SMOKE else 5
FASTPATH_GATE_NS = 2_000


def _time_immunized_acquire(pairs: int, fast: bool) -> float:
    """ns per uncontended immunized *acquire* (release untimed)."""
    config = (
        CONFIG
        if fast
        else CONFIG.evolve(position_cache=False, fast_path=False)
    )
    runtime = AsyncioDimmunixRuntime(
        config, name=f"a7-fastpath-{'on' if fast else 'off'}"
    )

    async def scenario() -> float:
        lock = runtime.lock("hot")
        clock = time.perf_counter_ns
        total = 0
        for _ in range(pairs):
            start = clock()
            await lock.acquire()
            total += clock() - start
            lock.release()
        return total / pairs

    return asyncio.run(scenario())


def bench_fastpath_gate(benchmark, record):
    """The tentpole number: an uncontended immunized ``await
    lock.acquire()`` through the position cache and the no-history fast
    path must come in under 2µs, and turning the fast path off must
    still satisfy the layer's original loose bound (the exact path is
    unchanged, just slower).
    """

    def measure():
        best = {True: float("inf"), False: float("inf")}
        for _ in range(FASTPATH_ROUNDS):
            for fast in (True, False):
                best[fast] = min(
                    best[fast],
                    _time_immunized_acquire(FASTPATH_ACQUIRES, fast),
                )
        return best

    best = benchmark.pedantic(measure, rounds=1, iterations=1)
    fast_ns, slow_ns = best[True], best[False]

    print()
    print(
        render_table(
            ["Variant", "ns / acquire", "Relative"],
            [
                ["fast path on", f"{fast_ns:,.0f}", "1.00x"],
                [
                    "fast path off",
                    f"{slow_ns:,.0f}",
                    f"{slow_ns / fast_ns:.2f}x" if fast_ns else "n/a",
                ],
            ],
            title=(
                f"A7 - fast-path acquire gate (min of {FASTPATH_ROUNDS} "
                f"rounds x {FASTPATH_ACQUIRES:,} acquires)"
            ),
        )
    )
    benchmark.extra_info.update(
        fast_ns=round(fast_ns, 1), slow_ns=round(slow_ns, 1)
    )
    record(
        ExperimentRecord(
            experiment_id="A7.fastpath",
            description="uncontended immunized async acquire, fast path",
            paper_value=(
                "the common case must stay cheap enough to immunize "
                "every lock on the platform (sub-2µs gate)"
            ),
            measured_value=(
                f"fast path {fast_ns:,.0f} ns, exact path "
                f"{slow_ns:,.0f} ns per uncontended acquire"
            ),
            holds=fast_ns < FASTPATH_GATE_NS and slow_ns < 200_000,
        )
    )
    assert slow_ns < 200_000, "fast-path-off acquire above the layer bound"
    if SMOKE:
        return
    assert fast_ns < FASTPATH_GATE_NS, (
        f"fast-path acquire {fast_ns:,.0f} ns breaches the 2µs gate"
    )


# ----------------------------------------------------------------------
# per-phase latency breakdown (telemetry on)
# ----------------------------------------------------------------------

def bench_async_phase_breakdown(benchmark, record):
    """Where the immunized-acquire nanoseconds go, phase by phase.

    Runs the uncontended workload with ``telemetry=True`` and reads the
    engine's per-phase log2 histograms: ``capture`` (stack resolution),
    ``glock_wait`` (engine-lock contention — near zero with one task),
    and ``acquire`` (request→grant end to end). The breakdown lands in
    the record's details so ``records.jsonl`` carries per-phase ns.
    """
    config = CONFIG.evolve(telemetry=True)

    def measure():
        runtime = AsyncioDimmunixRuntime(config, name="a7-phases")

        async def scenario() -> None:
            lock = runtime.lock("hot")
            for _ in range(ACQUIRE_PAIRS):
                async with lock:
                    pass

        asyncio.run(scenario())
        return runtime.core.telemetry.snapshot()

    snapshot = benchmark.pedantic(measure, rounds=1, iterations=1)
    phases = {
        phase: {
            "count": histogram.count,
            "mean_ns": round(histogram.mean_ns, 1),
            "p99_ns": histogram.percentile(0.99),
        }
        for phase, histogram in sorted(snapshot.items())
        if histogram.count
    }

    print()
    print(
        render_table(
            ["Phase", "Count", "Mean ns", "p99 ns"],
            [
                [phase, stats["count"], f"{stats['mean_ns']:,.0f}",
                 f"{stats['p99_ns']:,}"]
                for phase, stats in phases.items()
            ],
            title=(
                f"A7 - per-phase acquire latency ({ACQUIRE_PAIRS:,} pairs, "
                "telemetry on)"
            ),
        )
    )
    record(
        ExperimentRecord(
            experiment_id="A7.phases",
            description="asyncio immunized-acquire per-phase breakdown",
            paper_value=(
                "the request path is capture + engine decision; both "
                "microseconds-scale in the common case"
            ),
            measured_value=", ".join(
                f"{phase} mean {stats['mean_ns']:,.0f} ns"
                for phase, stats in phases.items()
            ),
            holds=all(
                phase in phases for phase in ("capture", "glock_wait", "acquire")
            ),
            details={"phases": phases},
        )
    )
    assert phases.get("acquire", {}).get("count") == ACQUIRE_PAIRS
