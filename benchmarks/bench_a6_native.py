"""A6 — extension: native (NDK) deadlocks and pthread interception (§4).

The paper's closing limitation: "Android Dimmunix does not handle
deadlocks involving native code", with a sketched fix — intercept the
POSIX Threads routines, but *only when native code executes*, because
the VM implements Java monitors on those same routines.

Three measured points on the JNI-crossing deadlock (a Java thread holds
a monitor and locks a native mutex; a native thread holds the mutex and
enters the monitor):

* ``OFF`` (shipped) — the process freezes, nothing detected;
* ``NATIVE_ONLY`` (the proposal) — the cross-boundary cycle is detected
  (signature spans Decoder.java and decoder_jni.cpp) and the reboot is
  immune, the standard lifecycle;
* ``ALWAYS`` (the naive hook) — every Java acquisition is processed
  twice and all VM-internal locking collapses onto one ``<libdvm>``
  position: the measured reason "this must be done carefully".
"""

from __future__ import annotations


from repro.analysis.report import ExperimentRecord
from repro.config import InterceptionMode
from repro.core.history import History
from repro.dalvik.program import ProgramBuilder
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.ndk.pthread_layer import VM_INTERNAL_FILE
from repro.ndk.scenarios import JAVA_FILE, JNI_FILE, run_jni_inversion


def bench_shipped_mode_misses_native_deadlock(benchmark, record):
    def measure():
        return run_jni_inversion(InterceptionMode.OFF)

    vm = benchmark.pedantic(measure, rounds=1, iterations=1)
    live = [t for t in vm.threads if t.is_live()]
    print()
    print(
        f"A6 - OFF: {len(live)} thread(s) frozen, "
        f"{len(vm.detections)} detection(s), history size "
        f"{len(vm.core.history)}"
    )
    holds = len(live) == 2 and not vm.detections
    record(
        ExperimentRecord(
            experiment_id="A6.off",
            description="shipped Android Dimmunix misses native deadlocks",
            paper_value="Android Dimmunix does not handle deadlocks involving native code",
            measured_value=f"frozen undetected ({len(live)} threads stuck)",
            holds=holds,
        )
    )
    assert holds


def bench_native_only_detects_and_avoids(benchmark, record, tmp_path):
    history_path = tmp_path / "jni.history"

    def measure():
        first = run_jni_inversion(InterceptionMode.NATIVE_ONLY)
        first.core.history.save(history_path)
        second = run_jni_inversion(
            InterceptionMode.NATIVE_ONLY, history=History.load(history_path)
        )
        return first, second

    first, second = benchmark.pedantic(measure, rounds=1, iterations=1)
    signature_files = {
        key[0][0] for key in first.detections[0].outer_position_keys()
    }
    second_live = [t for t in second.threads if t.is_live()]
    print()
    print(
        f"A6 - NATIVE_ONLY: boot 1 detected a cycle spanning "
        f"{sorted(signature_files)}; boot 2 completed with "
        f"{second.core.stats.yields} yield(s)"
    )
    holds = (
        len(first.detections) == 1
        and signature_files == {JAVA_FILE, JNI_FILE}
        and second_live == []
        and not second.detections
    )
    record(
        ExperimentRecord(
            experiment_id="A6.native-only",
            description="pthread interception in native context closes the gap",
            paper_value="possible to handle such deadlocks by intercepting POSIX Threads",
            measured_value=(
                "cross-boundary signature recorded (Java + JNI positions); "
                "reboot immune"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_naive_hook_double_intercepts(benchmark, record):
    """Quantify why 'this must be done carefully'."""

    def java_workload(mode: InterceptionMode) -> DalvikVM:
        builder = ProgramBuilder("App.java")
        builder.set_reg("i", 100)
        builder.label("loop")
        builder.rand("r", 16)
        builder.monitor_enter("obj", reg="r", line=50)
        builder.compute(2, line=51)
        builder.monitor_exit("obj", reg="r", line=52)
        builder.loop_dec("i", "loop")
        builder.halt()
        vm = DalvikVM(VMConfig().evolve(native_interception=mode))
        for index in range(4):
            vm.spawn(builder.build(), f"worker-{index}")
        vm.run()
        return vm

    def measure():
        clean = java_workload(InterceptionMode.NATIVE_ONLY)
        naive = java_workload(InterceptionMode.ALWAYS)
        return clean, naive

    clean, naive = benchmark.pedantic(measure, rounds=1, iterations=1)
    clean_requests = clean.core.stats.requests
    naive_requests = naive.core.stats.requests
    internal_positions = [
        pos
        for pos in naive.core.positions
        if pos.key and pos.key[0][0] == VM_INTERNAL_FILE
    ]
    print()
    print(
        f"A6 - ALWAYS: {naive_requests} core requests for the same Java "
        f"workload vs {clean_requests} under NATIVE_ONLY "
        f"({naive_requests / clean_requests:.1f}x); "
        f"{len(internal_positions)} shared <libdvm> position"
    )
    holds = (
        naive_requests >= 2 * clean_requests - 4
        and len(internal_positions) == 1
        and clean.pthreads.intercepted_internal == 0
    )
    record(
        ExperimentRecord(
            experiment_id="A6.naive",
            description="naive pthread hook double-intercepts the VM itself",
            paper_value="must be done carefully: Dalvik already uses this library",
            measured_value=(
                f"{naive_requests / clean_requests:.1f}x request volume; all "
                f"internal acquisitions share one <libdvm> position"
            ),
            holds=holds,
        )
    )
    assert holds
