"""A8 — the budgeted instantiation matcher under adversarial signatures.

The §2.2 check runs on every monitorenter; the A7 fan-out work exposed
that the exact backtracking search is exponential in signature *length* —
a single N-entry cycle signature whose outer positions collapse onto one
line could wedge a request for minutes. This bench drives the reworked
matcher with exactly that shape and holds the two claims of the redesign:

* **Bounded adversarial cost** — collapsed-position N-task signatures
  (N in {4, 8, 12, 16}) over the counting-defeating occupancy of
  ``workloads.synthetic_sigs.hard_matching_entries``. Small N refutes
  exactly (structural pruning); large N exhausts
  ``DimmunixConfig.match_step_budget`` and returns capped — in
  milliseconds, under both cap policies. The headline number: the N=12
  check that previously ran for minutes completes in < 50 ms under the
  default budget.
* **Real signatures never cap** — a two-entry signature over busy
  queues matches in microseconds with zero ``match_caps``; the budget
  is pure insurance on the §5 operating point.

``DIMMUNIX_BENCH_SMOKE=1`` shrinks the sweep and skips the wall-clock
assertions so CI can run this as a collection/regression check without
timing flakes.
"""

from __future__ import annotations

import os
import time

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.config import DimmunixConfig, MatchCapPolicy
from repro.core.avoidance import InstantiationChecker
from repro.core.callstack import CallStack
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable
from repro.core.stats import DimmunixStats
from repro.workloads.synthetic_sigs import (
    hard_matching_entries,
    make_collapsed_signature,
)

SMOKE = os.environ.get("DIMMUNIX_BENCH_SMOKE") == "1"

ADVERSARIAL_NS = (4, 12) if SMOKE else (4, 8, 12, 16)
REAL_CHECKS = 2_000 if SMOKE else 50_000

SITE = ("adv.py", 42)
DEFAULT_BUDGET = DimmunixConfig().match_step_budget


def _adversarial_checker(entries: int, policy: MatchCapPolicy):
    table = PositionTable()
    stats = DimmunixStats()
    checker = InstantiationChecker(
        table, stats, budget=DEFAULT_BUDGET, policy=policy
    )
    position = table.intern(CallStack.single(*SITE))
    pairs = hard_matching_entries(entries)
    threads = [
        ThreadNode(f"t{i}") for i in range(max(t for t, _ in pairs) + 1)
    ]
    locks = [
        LockNode(f"l{i}") for i in range(max(l for _, l in pairs) + 1)
    ]
    for thread_index, lock_index in pairs:
        position.queue.add(threads[thread_index], locks[lock_index])
    return checker, stats, make_collapsed_signature(SITE, entries)


def _run_adversarial(entries: int, policy: MatchCapPolicy) -> dict:
    checker, stats, signature = _adversarial_checker(entries, policy)
    started = time.perf_counter()
    result = checker.would_instantiate(signature)
    elapsed_ms = (time.perf_counter() - started) * 1000
    return {
        "entries": entries,
        "policy": policy.value,
        "instantiable": result is not None,
        "capped": checker.last_capped,
        "steps": checker.last_steps,
        "weak_fallback": checker.last_weak_fallback,
        "ms": elapsed_ms,
        "caps": stats.match_caps,
    }


def bench_matcher_adversarial_cap(benchmark, record):
    def sweep():
        return [
            _run_adversarial(entries, policy)
            for entries in ADVERSARIAL_NS
            for policy in (MatchCapPolicy.GRANT, MatchCapPolicy.WEAK)
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for result in results:
        rows.append(
            [
                result["entries"],
                result["policy"],
                "capped" if result["capped"] else "exact",
                f"{result['steps']:,}",
                (
                    "instantiable"
                    if result["instantiable"]
                    else "not instantiable"
                ),
                f"{result['ms']:.2f} ms",
            ]
        )
        # Safety of the budget machinery, regardless of timing:
        assert result["steps"] <= DEFAULT_BUDGET + 1
        if result["capped"]:
            assert result["caps"] == 1
            # grant reads a cap as "not instantiable"; weak answers
            # through the counting over-approximation, which this
            # occupancy passes by construction.
            assert result["instantiable"] == (result["policy"] == "weak")
            assert result["weak_fallback"] == (result["policy"] == "weak")

    print()
    print(
        render_table(
            ["N", "Policy", "Search", "Steps", "Verdict", "Wall"],
            rows,
            title=(
                "A8 - collapsed-position adversarial signatures "
                f"(budget {DEFAULT_BUDGET:,} steps)"
            ),
        )
    )

    twelve = [r for r in results if r["entries"] == 12]
    worst_twelve_ms = max(r["ms"] for r in twelve) if twelve else 0.0
    record(
        ExperimentRecord(
            experiment_id="A8",
            description="budgeted matcher on collapsed-position signatures",
            paper_value=(
                "instantiation checking must stay cheap on every "
                "monitorenter (the paper's constant-time §2.2 claim "
                "holds only for short signatures)"
            ),
            measured_value=(
                f"N=12 adversarial check {worst_twelve_ms:.1f} ms worst "
                f"under the default budget (was minutes unbounded); "
                f"caps: {sum(1 for r in results if r['capped'])}/"
                f"{len(results)} runs"
            ),
            holds=all(r["ms"] < 50 for r in twelve) if twelve else False,
        )
    )
    if SMOKE:
        return
    assert all(r["capped"] for r in twelve), "N=12 must exhaust the budget"
    assert worst_twelve_ms < 50, "capped N=12 check above 50 ms"


def bench_matcher_real_signature_overhead(benchmark, record):
    """Two-entry signatures over busy queues: the §5 operating point."""
    table = PositionTable()
    stats = DimmunixStats()
    checker = InstantiationChecker(table, stats, budget=DEFAULT_BUDGET)
    # Two busy positions (16 occupants each) and one idle partner —
    # the hit and the miss the avoidance loop alternates between.
    busy_a = table.intern(CallStack.single("app.py", 10))
    busy_b = table.intern(CallStack.single("app.py", 20))
    for index in range(16):
        busy_a.queue.add(ThreadNode(f"a{index}"), LockNode(f"x{index}"))
        busy_b.queue.add(ThreadNode(f"b{index}"), LockNode(f"y{index}"))
    table.intern(CallStack.single("app.py", 30))  # idle partner

    from repro.workloads.synthetic_sigs import make_signature

    instantiable = make_signature(("app.py", 10), ("app.py", 20))
    partner_miss = make_signature(("app.py", 10), ("app.py", 30))

    def run_checks() -> float:
        started = time.perf_counter_ns()
        for _ in range(REAL_CHECKS):
            checker.would_instantiate(instantiable)
            checker.would_instantiate(partner_miss)
        return (time.perf_counter_ns() - started) / (REAL_CHECKS * 2)

    per_check_ns = benchmark.pedantic(run_checks, rounds=1, iterations=1)
    assert stats.match_caps == 0, "real signatures must never cap"

    print()
    print(
        render_table(
            ["Shape", "ns / check"],
            [["2-entry (hit + partner-miss mix)", f"{per_check_ns:,.0f}"]],
            title=(
                f"A8 - real-signature check cost ({REAL_CHECKS:,} "
                "hit/miss pairs, 16-deep queues)"
            ),
        )
    )
    record(
        ExperimentRecord(
            experiment_id="A8.real",
            description="real 2-entry signature check under the budget",
            paper_value="common-case checks are a few dict probes",
            measured_value=(
                f"{per_check_ns:,.0f} ns per check, 0 caps in "
                f"{REAL_CHECKS * 2:,} checks"
            ),
            holds=stats.match_caps == 0,
        )
    )
    if SMOKE:
        return
    assert per_check_ns < 100_000, "real-signature check above 100µs"
