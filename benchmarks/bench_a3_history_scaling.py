"""A3 — ablation: history size on the critical path.

§4 warns that signatures on the hot path make Request expensive: every
acquisition at an in-history position scans that position's signatures
and runs the instantiation check on each. The paper engineers around it
(position queues, free lists, tuple-indexed history) and evaluates with
64–256 signatures; this sweep extends the range to show the trend the
engineering keeps flat-ish, and where it finally bends.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.dalvik.vm import VMConfig
from repro.workloads.microbench import MicrobenchConfig, run_vm_pair

VM_CONFIG = VMConfig(ticks_per_second=200_000, stack_retrieval_cost=3)
HISTORY_SIZES = (0, 64, 256, 1024, 4095)


def _config(history: int) -> MicrobenchConfig:
    return MicrobenchConfig(
        threads=32,
        locks=64,
        sites=8,
        iterations_per_thread=24,
        inside_spin=20,
        outside_spin=85,
        history_size=history,
        seed=7,
    )


@pytest.fixture(scope="module")
def sweep():
    results = []
    for history in HISTORY_SIZES:
        vanilla, immunized = run_vm_pair(_config(history), vm_config=VM_CONFIG)
        results.append(
            (
                history,
                immunized.overhead_vs(vanilla),
                immunized.stats.instantiation_checks,
            )
        )
    return results


def bench_request_cost_vs_history(benchmark, record, sweep):
    def replay():
        return run_vm_pair(_config(256), vm_config=VM_CONFIG)

    benchmark.pedantic(replay, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["History size", "Overhead", "Instantiation checks"],
            [
                [history, f"{overhead * 100:.2f}%", checks]
                for history, overhead, checks in sweep
            ],
            title="A3 - overhead vs history size (32 threads, 8 sites)",
        )
    )
    from repro.analysis.figures import Series, render_figure

    print()
    print(
        render_figure(
            [
                Series.of(
                    "overhead %",
                    [history for history, _o, _c in sweep],
                    [overhead * 100 for _h, overhead, _c in sweep],
                )
            ],
            title="A3 - Request cost vs signatures on the critical path",
            height=8,
            x_label="history size (signatures)",
        )
    )
    overhead_by_size = {history: overhead for history, overhead, _c in sweep}
    paper_band_flat = (
        overhead_by_size[256] - overhead_by_size[64] < 0.01
    )
    grows = overhead_by_size[4095] > overhead_by_size[64]
    monotone = all(
        b[1] >= a[1] - 0.002 for a, b in zip(sweep, sweep[1:])
    )
    record(
        ExperimentRecord(
            experiment_id="A3",
            description="Request cost vs signatures on the critical path",
            paper_value="64-256 signatures cost the same 4-5%; cost is per-signature work",
            measured_value=(
                f"{overhead_by_size[64] * 100:.1f}% at 64, "
                f"{overhead_by_size[256] * 100:.1f}% at 256, "
                f"{overhead_by_size[4095] * 100:.1f}% at 4095 signatures"
            ),
            holds=paper_band_flat and grows and monotone,
        )
    )
    assert paper_band_flat, "64->256 should stay within the paper's flat band"
    assert grows, "a 16x larger history must eventually cost more"


def bench_checks_scale_linearly(benchmark, record, sweep):
    """The mechanism: checks per sync = signatures at the position."""

    def replay():
        return [(h, c) for h, _o, c in sweep]

    pairs = benchmark.pedantic(replay, rounds=1, iterations=1)
    nonzero = [(h, c) for h, c in pairs if h > 0]
    syncs = 32 * 24 * 8
    per_sync = [(h, c / syncs) for h, c in nonzero]
    print()
    print("A3 - instantiation checks per sync:")
    for history, rate in per_sync:
        print(f"      history {history:>5}: {rate:.1f} checks/sync")
    # checks/sync should be ~history/sites (each site holds its share).
    expected_ratio = [rate / (history / 8) for history, rate in per_sync]
    holds = all(0.5 <= ratio <= 1.5 for ratio in expected_ratio)
    record(
        ExperimentRecord(
            experiment_id="A3.mechanism",
            description="instantiation checks grow linearly with history",
            paper_value="Request scans the signatures indexed at the position",
            measured_value=(
                ", ".join(f"{h}:{r:.1f}/sync" for h, r in per_sync)
            ),
            holds=holds,
        )
    )
    assert holds
