"""A3 — ablation: history size on the critical path.

§4 warns that signatures on the hot path make Request expensive: every
acquisition at an in-history position scans that position's signatures
and runs the instantiation check on each. The paper engineers around it
(position queues, free lists, tuple-indexed history) and evaluates with
64–256 signatures; this sweep extends the range to show the trend the
engineering keeps flat-ish, and where it finally bends.

The store-level benches at the bottom isolate the lookup primitives
themselves (``contains_position`` / ``signatures_at``) across history
*backends* (``mem://``, ``sqlite://``): with the position-keyed index
they must stay O(1) — flat in history size — where a naive linear scan
grows without bound. CI runs these as a smoke check so a backend
regression surfaces before a full bench run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.dalvik.vm import VMConfig
from repro.workloads.microbench import MicrobenchConfig, run_vm_pair
from repro.workloads.synthetic_sigs import generate_history

VM_CONFIG = VMConfig(ticks_per_second=200_000, stack_retrieval_cost=3)
HISTORY_SIZES = (0, 64, 256, 1024, 4095)


def _config(history: int) -> MicrobenchConfig:
    return MicrobenchConfig(
        threads=32,
        locks=64,
        sites=8,
        iterations_per_thread=24,
        inside_spin=20,
        outside_spin=85,
        history_size=history,
        seed=7,
    )


@pytest.fixture(scope="module")
def sweep():
    results = []
    for history in HISTORY_SIZES:
        vanilla, immunized = run_vm_pair(_config(history), vm_config=VM_CONFIG)
        results.append(
            (
                history,
                immunized.overhead_vs(vanilla),
                immunized.stats.instantiation_checks,
            )
        )
    return results


def bench_request_cost_vs_history(benchmark, record, sweep):
    def replay():
        return run_vm_pair(_config(256), vm_config=VM_CONFIG)

    benchmark.pedantic(replay, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["History size", "Overhead", "Instantiation checks"],
            [
                [history, f"{overhead * 100:.2f}%", checks]
                for history, overhead, checks in sweep
            ],
            title="A3 - overhead vs history size (32 threads, 8 sites)",
        )
    )
    from repro.analysis.figures import Series, render_figure

    print()
    print(
        render_figure(
            [
                Series.of(
                    "overhead %",
                    [history for history, _o, _c in sweep],
                    [overhead * 100 for _h, overhead, _c in sweep],
                )
            ],
            title="A3 - Request cost vs signatures on the critical path",
            height=8,
            x_label="history size (signatures)",
        )
    )
    overhead_by_size = {history: overhead for history, overhead, _c in sweep}
    paper_band_flat = (
        overhead_by_size[256] - overhead_by_size[64] < 0.01
    )
    grows = overhead_by_size[4095] > overhead_by_size[64]
    monotone = all(
        b[1] >= a[1] - 0.002 for a, b in zip(sweep, sweep[1:])
    )
    record(
        ExperimentRecord(
            experiment_id="A3",
            description="Request cost vs signatures on the critical path",
            paper_value="64-256 signatures cost the same 4-5%; cost is per-signature work",
            measured_value=(
                f"{overhead_by_size[64] * 100:.1f}% at 64, "
                f"{overhead_by_size[256] * 100:.1f}% at 256, "
                f"{overhead_by_size[4095] * 100:.1f}% at 4095 signatures"
            ),
            holds=paper_band_flat and grows and monotone,
        )
    )
    assert paper_band_flat, "64->256 should stay within the paper's flat band"
    assert grows, "a 16x larger history must eventually cost more"


def bench_checks_scale_linearly(benchmark, record, sweep):
    """The mechanism: checks per sync = signatures at the position."""

    def replay():
        return [(h, c) for h, _o, c in sweep]

    pairs = benchmark.pedantic(replay, rounds=1, iterations=1)
    nonzero = [(h, c) for h, c in pairs if h > 0]
    syncs = 32 * 24 * 8
    per_sync = [(h, c / syncs) for h, c in nonzero]
    print()
    print("A3 - instantiation checks per sync:")
    for history, rate in per_sync:
        print(f"      history {history:>5}: {rate:.1f} checks/sync")
    # checks/sync should be ~history/sites (each site holds its share).
    expected_ratio = [rate / (history / 8) for history, rate in per_sync]
    holds = all(0.5 <= ratio <= 1.5 for ratio in expected_ratio)
    record(
        ExperimentRecord(
            experiment_id="A3.mechanism",
            description="instantiation checks grow linearly with history",
            paper_value="Request scans the signatures indexed at the position",
            measured_value=(
                ", ".join(f"{h}:{r:.1f}/sync" for h, r in per_sync)
            ),
            holds=holds,
        )
    )
    assert holds


# ----------------------------------------------------------------------
# store-level lookups: the O(1) claim, per backend
# ----------------------------------------------------------------------

STORE_SIZES = (64, 512, 4095)
LOOKUP_ROUNDS = 2_000


def _store_for(url_scheme: str, tmp_path, size: int):
    """A backend preloaded with ``size`` synthetic signatures."""
    from repro.core.store import open_store

    sites = [("Bench.java", line) for line in range(1, 33)]
    history = generate_history(sites, size)
    if url_scheme == "mem":
        store = open_store("mem://")
    else:
        store = open_store(
            f"{url_scheme}://{tmp_path / f'{url_scheme}-{size}.db'}"
        )
    store.merge_from(history)
    store.flush()
    return store, sites


def _time_lookups(store, sites) -> tuple[float, float]:
    """(contains_position ns/op, signatures_at ns/op) over live+miss keys."""
    keys = [((file, line),) for file, line in sites]
    keys += [(("Miss.java", line),) for line in range(1, 33)]
    start = time.perf_counter_ns()
    for _ in range(LOOKUP_ROUNDS // len(keys) + 1):
        for key in keys:
            store.contains_position(key)
    contains_ns = (time.perf_counter_ns() - start) / LOOKUP_ROUNDS
    start = time.perf_counter_ns()
    for _ in range(LOOKUP_ROUNDS // len(keys) + 1):
        for key in keys:
            store.signatures_at(key)
    at_ns = (time.perf_counter_ns() - start) / LOOKUP_ROUNDS
    return contains_ns, at_ns


def _time_naive_scan(store, sites) -> float:
    """The pre-index 'before': contains_position as a linear scan.

    Misses dominate real probes (most positions are never in any
    signature) and they are the worst case for a scan — no
    short-circuit, the whole history is walked.
    """
    signatures = list(store)
    keys = [(("Miss.java", line),) for line in range(1, 9)]
    rounds = max(LOOKUP_ROUNDS // 40, 10)
    start = time.perf_counter_ns()
    for _ in range(rounds // len(keys) + 1):
        for key in keys:
            any(key in s.outer_position_keys() for s in signatures)
    return (time.perf_counter_ns() - start) / rounds


@pytest.mark.parametrize("backend", ["mem", "sqlite"])
def bench_store_lookup_flat(benchmark, record, tmp_path, backend):
    """contains_position / signatures_at stay O(1) in history size."""
    rows = []
    for size in STORE_SIZES:
        store, sites = _store_for(backend, tmp_path, size)
        contains_ns, at_ns = _time_lookups(store, sites)
        naive_ns = _time_naive_scan(store, sites)
        rows.append((size, contains_ns, at_ns, naive_ns))
        store.close()

    def replay():
        store, sites = _store_for(backend, tmp_path, STORE_SIZES[0])
        result = _time_lookups(store, sites)
        store.close()
        return result

    benchmark.pedantic(replay, rounds=1, iterations=1)

    print()
    print(
        render_table(
            [
                "History size",
                "contains_position",
                "signatures_at",
                "naive scan (pre-index)",
            ],
            [
                [
                    size,
                    f"{contains_ns:,.0f} ns",
                    f"{at_ns:,.0f} ns",
                    f"{naive_ns:,.0f} ns",
                ]
                for size, contains_ns, at_ns, naive_ns in rows
            ],
            title=f"A3.store - {backend}:// lookup cost vs history size",
        )
    )
    by_size = {size: (c, a) for size, c, a, _n in rows}
    smallest, largest = STORE_SIZES[0], STORE_SIZES[-1]
    # O(1) claim: a 64x larger history may not make the indexed probes
    # more than ~4x slower (noise allowance); the naive scan comparison
    # shows what a linear structure would do instead.
    contains_flat = by_size[largest][0] < by_size[smallest][0] * 4 + 200
    at_flat = by_size[largest][1] < by_size[smallest][1] * 4 + 200
    naive_by_size = {size: n for size, _c, _a, n in rows}
    naive_grows = naive_by_size[largest] > naive_by_size[smallest] * 4
    record(
        ExperimentRecord(
            experiment_id=f"A3.store.{backend}",
            description=(
                f"{backend}:// position lookups are O(1) in history size"
            ),
            paper_value="tuple-indexed history keeps Request cost per-signature",
            measured_value=(
                ", ".join(
                    f"{size}: {c:,.0f}/{a:,.0f} ns (scan {n:,.0f})"
                    for size, c, a, n in rows
                )
            ),
            holds=contains_flat and at_flat,
        )
    )
    if os.environ.get("DIMMUNIX_BENCH_SMOKE") == "1":
        # CI smoke mode: collection and execution are the gate; the
        # wall-clock ratio assertions stay out so a noisy shared runner
        # cannot fail a healthy build. Full bench runs keep them.
        return
    assert contains_flat, "contains_position must not grow with history size"
    assert at_flat, "signatures_at must not grow with history size"
    assert naive_grows, "the naive-scan baseline should show the O(n) trend"
