"""E4 — the case study: Android issue 7986, frozen once, then immune.

The paper reproduces a real deadlock between
``NotificationManagerService.enqueueNotificationWithTag`` and
``StatusBarService$H.handleMessage`` that freezes the whole phone UI.
With Dimmunix: the phone hangs once, the signature is persisted, and
after a reboot the deadlock is deterministically avoided with no user
intervention.

The bench runs that exact story on the simulated platform — boot 1
freezes and detects; boot 2 (a fresh ``system_server`` fork loading the
persisted history) completes — plus the unprotected baseline, which
freezes on every run.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentRecord
from repro.android.issue7986 import demonstrate_immunity, run_vanilla
from repro.core.history import History


def bench_freeze_once_then_immune(benchmark, record, tmp_path):
    def measure():
        return demonstrate_immunity(tmp_path / "histories", seed=11)

    first, second = benchmark.pedantic(measure, rounds=1, iterations=1)

    print()
    print("E4 - boot 1:", first.summary())
    print("E4 - boot 2:", second.summary())

    history_file = tmp_path / "histories" / "system_server.history"
    persisted = History.load(history_file)

    holds = (
        first.frozen
        and first.ui_blocked
        and len(first.detections) == 1
        and second.completed
        and not second.ui_blocked
        and len(second.detections) == 0
        and second.yields > 0
        and len(persisted) >= 1
    )
    record(
        ExperimentRecord(
            experiment_id="E4",
            description="issue 7986: freeze once, persist, avoid after reboot",
            paper_value="1 hang, signature saved, 0 recurrences after reboot",
            measured_value=(
                f"boot1 {first.run.status} ({len(first.detections)} detection), "
                f"boot2 {second.run.status} ({second.yields} avoidance yields), "
                f"{len(persisted)} signature(s) on disk"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_vanilla_freezes_every_time(benchmark, record):
    def measure():
        return [run_vanilla(seed=seed) for seed in (11, 12, 13)]

    runs = benchmark.pedantic(measure, rounds=1, iterations=1)
    frozen = sum(1 for result in runs if result.frozen and result.ui_blocked)
    print()
    print(f"E4 - vanilla: {frozen}/{len(runs)} runs froze the interface")
    record(
        ExperimentRecord(
            experiment_id="E4.vanilla",
            description="unprotected baseline freezes on the race",
            paper_value="phone may freeze whenever the race occurs",
            measured_value=f"{frozen}/{len(runs)} seeded runs froze",
            holds=frozen == len(runs),
        )
    )
    assert frozen == len(runs)


def bench_immunity_is_durable(benchmark, record, tmp_path):
    """Extra reboots stay clean — immunity does not decay."""

    def measure():
        first, second = demonstrate_immunity(tmp_path / "h", seed=11)
        results = [first, second]
        from repro.android.issue7986 import PROCESS_NAME, run_once
        from repro.dalvik.vm import VMConfig
        from repro.dalvik.zygote import Zygote

        zygote = Zygote(VMConfig(), history_dir=tmp_path / "h")
        for seed in (21, 22, 23):
            vm = zygote.fork(PROCESS_NAME, seed=seed)
            results.append(run_once(vm))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    later = results[2:]
    clean = sum(
        1
        for result in later
        if result.completed and not result.detections
    )
    print()
    print(f"E4 - {clean}/{len(later)} post-immunity boots ran clean")
    record(
        ExperimentRecord(
            experiment_id="E4.durability",
            description="immunity persists across repeated reboots and seeds",
            paper_value="deadlock deterministically avoided from then on",
            measured_value=f"{clean}/{len(later)} later boots clean",
            holds=clean == len(later),
        )
    )
    assert clean == len(later)
