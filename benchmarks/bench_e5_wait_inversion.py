"""E5 — the wait()-induced lock inversion of §3.2.

Thread 1 calls ``x.wait()`` while holding ``y``; thread 2 takes ``x``,
notifies, then requests ``y``. The deadlock closes when thread 1
*re-acquires* ``x`` inside ``Object.wait()`` — a lock acquisition only a
``waitMonitor``-level interception can see, which is the paper's argument
for patching the VM rather than instrumenting bytecode.

Boot 1 freezes and the signature names the ``x.wait()`` call site as an
outer position; boot 2, loading that history, completes.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentRecord
from repro.core.history import History
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.workloads.scenarios import (
    WAIT_INV_FILE,
    build_wait_inversion_programs,
    run_wait_inversion_vm,
)


def bench_vanilla_freezes(benchmark, record):
    def measure():
        return run_wait_inversion_vm(VMConfig().vanilla())

    vm = benchmark.pedantic(measure, rounds=1, iterations=1)
    frozen = any(t.is_live() for t in vm.threads)
    print()
    print(
        f"E5 - vanilla: {sum(t.is_live() for t in vm.threads)} thread(s) "
        "stuck, no detection possible"
    )
    record(
        ExperimentRecord(
            experiment_id="E5.vanilla",
            description="wait() inversion freezes the unprotected VM",
            paper_value="the two threads are going to deadlock",
            measured_value=f"frozen={frozen}, detections={len(vm.detections)}",
            holds=frozen and not vm.detections,
        )
    )
    assert frozen


def bench_detect_then_avoid(benchmark, record, tmp_path):
    """Timed-wait variant: the deadlock is schedule-avoidable.

    The waiter uses ``x.wait(timeout)`` — the common real-world pattern.
    Boot 1 deadlocks before the timeout and records the signature; on
    boot 2 avoidance parks the notifier, the wait times out, the waiter
    releases ``y``, and both threads finish. (The *untimed* inversion is
    detectable but semantically unavoidable — no lock scheduler can help
    a program whose only notifier must be parked; the test suite pins
    that honest behaviour separately.)
    """
    history_path = tmp_path / "wait-inv.history"

    def measure():
        config = VMConfig(
            dimmunix=VMConfig().dimmunix.evolve(
                history_path=history_path
            )
        )
        first = run_wait_inversion_vm(config, wait_timeout_ticks=5_000)
        second = run_wait_inversion_vm(
            config,
            history=History.load(history_path),
            wait_timeout_ticks=5_000,
        )
        return first, second

    first, second = benchmark.pedantic(measure, rounds=1, iterations=1)
    second_live = [t for t in second.threads if t.is_live()]

    # The detected signature must name the x.wait() call site (line 12)
    # as the waiter's blocked position: only the waitMonitor patch makes
    # that reacquisition visible to detection.
    wait_site_in_signature = False
    for signature in first.detections:
        for key in signature.inner_position_keys():
            if key and key[0][0] == WAIT_INV_FILE and key[0][1] == 12:
                wait_site_in_signature = True

    print()
    print(
        f"E5 - boot 1: detections={len(first.detections)}, "
        f"wait-site in signature={wait_site_in_signature}"
    )
    print(
        f"E5 - boot 2: live threads={len(second_live)}, "
        f"yields={second.core.stats.yields if second.core else 0}"
    )
    holds = (
        len(first.detections) == 1
        and wait_site_in_signature
        and not second_live
        and not second.detections
    )
    record(
        ExperimentRecord(
            experiment_id="E5",
            description="wait() inversion detected at the reacquisition, then avoided",
            paper_value="deadlock detected via the waitMonitor patch; avoided after",
            measured_value=(
                f"boot1: {len(first.detections)} detection "
                f"(wait site named: {wait_site_in_signature}); "
                f"boot2: completed clean"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_signature_names_both_threads(benchmark, record):
    """The signature approximates the flow: both outer stacks recorded."""

    def measure():
        vm = DalvikVM(VMConfig(), name="wait-inv")
        one, two = build_wait_inversion_programs()
        vm.spawn(one, "waiter")
        vm.spawn(two, "notifier")
        vm.run(max_ticks=100_000)
        return vm

    vm = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert len(vm.detections) == 1
    signature = vm.detections[0]
    entries = signature.entries
    print()
    print(f"E5 - signature has {len(entries)} (outer, inner) pairs:")
    for entry in entries:
        print(f"      outer={entry.outer!r} inner={entry.inner!r}")
    record(
        ExperimentRecord(
            experiment_id="E5.signature",
            description="signature carries one (outer, inner) pair per thread",
            paper_value="signature = {(CSout1, CSin1), (CSout2, CSin2)}",
            measured_value=f"{len(entries)} entries recorded",
            holds=len(entries) == 2,
        )
    )
