"""E1 — the §5 microbenchmark: 4–5 % synchronization-throughput overhead.

The paper's numbers (Nexus One, 1 GHz single core):

* vanilla Android 2.2:   1738–1756 syncs/sec
* Android Dimmunix:      1657–1681 syncs/sec  →  4–5 % overhead

across 2–512 threads executing synchronized blocks on random lock
objects (no contention), busy-waiting in and out of the critical
sections, against a history of 64–256 synthetic signatures.

Reproduced twice:

* on the virtual-time VM, calibrated to the paper's operating point
  (~114 ticks ≈ 570 µs of compute per synchronization), sweeping the
  paper's full thread and history ranges deterministically;
* on real ``threading`` threads through the interception runtime, with
  busy-waits calibrated so the vanilla run hits ~1750 syncs/sec on this
  host (the honest analog of "the same workload on the same phone").
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.dalvik.vm import VMConfig
from repro.workloads.microbench import (
    MicrobenchConfig,
    calibrate_for_rate,
    run_real_pair,
    run_vm_pair,
)

SMOKE = os.environ.get("DIMMUNIX_BENCH_SMOKE") == "1"

# ~114 ticks per synchronization -> vanilla ~1750 syncs/sec at 200k
# ticks/sec, the paper's measured operating point.
E1_VM_CONFIG = VMConfig(ticks_per_second=200_000, stack_retrieval_cost=3)
PAPER_BAND = (0.02, 0.08)  # accept 2-8%; the paper reports 4-5%

THREAD_SWEEP = (2, 8, 32, 128, 512)
HISTORY_SWEEP = (64, 128, 256)
TOTAL_SYNCS_TARGET = 8_192


def _vm_config_for(threads: int, history: int) -> MicrobenchConfig:
    sites = 8
    iterations = max(TOTAL_SYNCS_TARGET // (threads * sites), 2)
    return MicrobenchConfig(
        threads=threads,
        locks=64,
        sites=sites,
        iterations_per_thread=iterations,
        inside_spin=20,
        outside_spin=85,
        history_size=history,
        seed=7,
    )


@pytest.mark.parametrize("threads", THREAD_SWEEP)
def bench_vm_thread_sweep(benchmark, record, threads):
    """Overhead at each paper thread count (history fixed at 128)."""
    config = _vm_config_for(threads, history=128)

    def measure():
        return run_vm_pair(config, vm_config=E1_VM_CONFIG)

    vanilla, immunized = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = immunized.overhead_vs(vanilla)
    benchmark.extra_info.update(
        vanilla_rate=round(vanilla.syncs_per_sec, 1),
        dimmunix_rate=round(immunized.syncs_per_sec, 1),
        overhead_pct=round(overhead * 100, 2),
    )
    record(
        ExperimentRecord(
            experiment_id=f"E1.vm.threads={threads}",
            description="microbenchmark overhead (virtual time)",
            paper_value="vanilla 1738-1756 s/s, Dimmunix 1657-1681 s/s (4-5%)",
            measured_value=(
                f"vanilla {vanilla.syncs_per_sec:.0f} s/s, "
                f"Dimmunix {immunized.syncs_per_sec:.0f} s/s "
                f"({overhead * 100:.1f}%)"
            ),
            holds=PAPER_BAND[0] <= overhead <= PAPER_BAND[1],
        )
    )
    assert PAPER_BAND[0] <= overhead <= PAPER_BAND[1]


@pytest.mark.parametrize("history", HISTORY_SWEEP)
def bench_vm_history_sweep(benchmark, record, history):
    """Overhead at each paper history size (threads fixed at 32)."""
    config = _vm_config_for(32, history=history)

    def measure():
        return run_vm_pair(config, vm_config=E1_VM_CONFIG)

    vanilla, immunized = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = immunized.overhead_vs(vanilla)
    benchmark.extra_info.update(
        vanilla_rate=round(vanilla.syncs_per_sec, 1),
        dimmunix_rate=round(immunized.syncs_per_sec, 1),
        overhead_pct=round(overhead * 100, 2),
    )
    record(
        ExperimentRecord(
            experiment_id=f"E1.vm.history={history}",
            description="microbenchmark overhead vs history size",
            paper_value="4-5% overhead across 64-256 signatures",
            measured_value=f"{overhead * 100:.1f}% overhead",
            holds=PAPER_BAND[0] <= overhead <= PAPER_BAND[1],
        )
    )
    assert PAPER_BAND[0] <= overhead <= PAPER_BAND[1]


def bench_vm_summary_table(benchmark, record):
    """The full sweep in one run, printed as the §5 series."""

    def measure():
        rows = []
        for threads in THREAD_SWEEP:
            config = _vm_config_for(threads, history=256)
            vanilla, immunized = run_vm_pair(config, vm_config=E1_VM_CONFIG)
            rows.append(
                (
                    threads,
                    vanilla.syncs_per_sec,
                    immunized.syncs_per_sec,
                    immunized.overhead_vs(vanilla),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Threads", "Vanilla s/s", "Dimmunix s/s", "Overhead"],
            [
                [t, f"{v:.0f}", f"{d:.0f}", f"{o * 100:.1f}%"]
                for t, v, d, o in rows
            ],
            title="E1 - microbenchmark, history=256 (virtual time)",
        )
    )
    from repro.analysis.figures import Series, render_figure

    print()
    print(
        render_figure(
            [
                Series.of(
                    "overhead %",
                    [t for t, _v, _d, _o in rows],
                    [o * 100 for _t, _v, _d, o in rows],
                )
            ],
            title="E1 - overhead vs threads (paper: flat 4-5%)",
            y_min=0.0,
            y_max=10.0,
            height=8,
            x_label="threads",
        )
    )
    overheads = [o for _t, _v, _d, o in rows]
    vanilla_rates = [v for _t, v, _d, _o in rows]
    record(
        ExperimentRecord(
            experiment_id="E1.vm",
            description="microbenchmark 2-512 threads, 256 signatures",
            paper_value="1738-1756 -> 1657-1681 s/s, 4-5% overhead, flat in threads",
            measured_value=(
                f"{min(vanilla_rates):.0f}-{max(vanilla_rates):.0f} s/s vanilla, "
                f"{min(overheads) * 100:.1f}-{max(overheads) * 100:.1f}% overhead"
            ),
            holds=all(PAPER_BAND[0] <= o <= PAPER_BAND[1] for o in overheads),
        )
    )
    assert max(overheads) <= PAPER_BAND[1]


def bench_real_threads(benchmark, record):
    """Real ``threading`` confirmation at the paper's operating point.

    Wall-clock timing on a shared host is noisy, so the assertion is a
    loose sanity band; the virtual-time sweep above is the precise one.
    """
    base = MicrobenchConfig(
        threads=8,
        locks=64,
        sites=8,
        iterations_per_thread=250,
        history_size=128,
        seed=3,
    )
    config = calibrate_for_rate(base, target_syncs_per_sec=1750)

    def measure():
        return run_real_pair(config)

    vanilla, immunized = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = immunized.overhead_vs(vanilla)
    benchmark.extra_info.update(
        vanilla_rate=round(vanilla.syncs_per_sec, 1),
        dimmunix_rate=round(immunized.syncs_per_sec, 1),
        overhead_pct=round(overhead * 100, 2),
    )
    from repro.analysis.report import within_factor

    record(
        ExperimentRecord(
            experiment_id="E1.real",
            description="microbenchmark on real threads (wall clock)",
            paper_value=(
                "~1750 s/s vanilla; bounded overhead (the 4-5% figure is "
                "Dalvik's, reproduced on the VM cost model above)"
            ),
            measured_value=(
                f"vanilla {vanilla.syncs_per_sec:.0f} s/s, "
                f"Dimmunix {immunized.syncs_per_sec:.0f} s/s "
                f"({overhead * 100:.1f}%)"
            ),
            holds=within_factor(vanilla.syncs_per_sec, 1750, 1.3)
            and overhead < 0.35,
            notes=(
                "documented deviation: a CPython frame walk costs more of "
                "the 570 us/sync budget than dvmGetCallStack did "
                "(EXPERIMENTS.md, E1)"
            ),
        )
    )
    assert vanilla.syncs_per_sec > 0 and immunized.syncs_per_sec > 0
    assert overhead < 0.5


# ----------------------------------------------------------------------
# telemetry overhead gate
# ----------------------------------------------------------------------

TELEMETRY_PAIRS = 2_000 if SMOKE else 20_000
#: guard checks on the uncontended immunized path: capture + glock_wait
#: (lock class + interception) plus the engine's acquired/emit guards.
GUARD_CHECKS_PER_PAIR = 8


def _time_immunized_thread_pairs(telemetry: bool, pairs: int):
    """(ns per uncontended acquire/release pair, the runtime used)."""
    from repro.config import DimmunixConfig
    from repro.runtime.runtime import DimmunixRuntime

    runtime = DimmunixRuntime(
        DimmunixConfig(telemetry=telemetry, auto_save=False),
        name=f"e1-telemetry-{'on' if telemetry else 'off'}",
    )
    lock = runtime.lock("hot")
    start = time.perf_counter_ns()
    for _ in range(pairs):
        with lock:
            pass
    elapsed = (time.perf_counter_ns() - start) / pairs
    return elapsed, runtime


def _attribute_check_ns(iterations: int = 200_000) -> float:
    """Cost of one ``x is not None`` guard — the disabled-telemetry tax."""
    sentinel = None
    start = time.perf_counter_ns()
    for _ in range(iterations):
        pass
    empty = time.perf_counter_ns() - start
    start = time.perf_counter_ns()
    for _ in range(iterations):
        if sentinel is not None:
            raise AssertionError
    checked = time.perf_counter_ns() - start
    return max(0.0, checked - empty) / iterations


def bench_telemetry_overhead_gate(benchmark, record):
    """Telemetry must be near-free when off and cheap when on.

    Off, the instrumentation is one ``is not None`` attribute check per
    site — measured directly and asserted to cost < 3 % of an immunized
    pair. On, the monotonic-clock reads must stay under 2x the
    disabled-path pair cost. The on-run's per-phase breakdown lands in
    the record's details, so ``records.jsonl`` carries real
    nanosecond-level phase latencies for every CI run.
    """
    off_ns, _ = _time_immunized_thread_pairs(False, TELEMETRY_PAIRS)

    def measure():
        return _time_immunized_thread_pairs(True, TELEMETRY_PAIRS)

    on_ns, runtime = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = on_ns / off_ns if off_ns else float("inf")
    guard_ns = _attribute_check_ns()
    guard_share = (guard_ns * GUARD_CHECKS_PER_PAIR) / off_ns if off_ns else 0.0

    snapshot = runtime.core.telemetry.snapshot()
    phases = {
        phase: {
            "count": histogram.count,
            "mean_ns": round(histogram.mean_ns, 1),
            "p99_ns": histogram.percentile(0.99),
        }
        for phase, histogram in sorted(snapshot.items())
        if histogram.count
    }

    print()
    print(
        render_table(
            ["Variant", "ns / pair", "Relative"],
            [
                ["telemetry off", f"{off_ns:,.0f}", "1.00x"],
                ["telemetry on", f"{on_ns:,.0f}", f"{ratio:.2f}x"],
                [
                    "disabled guard tax",
                    f"{guard_ns * GUARD_CHECKS_PER_PAIR:,.1f}",
                    f"{guard_share * 100:.2f}%",
                ],
            ],
            title=(
                f"E1 - telemetry overhead gate ({TELEMETRY_PAIRS:,} "
                "uncontended immunized pairs)"
            ),
        )
    )
    benchmark.extra_info.update(
        off_ns=round(off_ns, 1),
        on_ns=round(on_ns, 1),
        ratio=round(ratio, 3),
        guard_share_pct=round(guard_share * 100, 3),
    )
    record(
        ExperimentRecord(
            experiment_id="E1.telemetry",
            description="per-phase telemetry overhead gate",
            paper_value=(
                "observability must not change the 4-5% overhead story: "
                "off ~free, on bounded"
            ),
            measured_value=(
                f"off {off_ns:,.0f} ns/pair, on {on_ns:,.0f} ns/pair "
                f"({ratio:.2f}x); disabled guard "
                f"{guard_share * 100:.2f}% of a pair"
            ),
            holds=ratio < 2.0 and guard_share < 0.03,
            details={"phases": phases},
        )
    )
    assert phases, "telemetry-on run recorded no phases"
    assert ratio < 2.0, f"telemetry-on pair cost {ratio:.2f}x disabled path"
    if SMOKE:
        return
    assert guard_share < 0.03, (
        f"disabled-telemetry guards cost {guard_share * 100:.2f}% of a pair"
    )


# ----------------------------------------------------------------------
# the sub-2µs fast-path gate (threaded)
# ----------------------------------------------------------------------

FASTPATH_ACQUIRES = 2_000 if SMOKE else 30_000
FASTPATH_ROUNDS = 2 if SMOKE else 5
FASTPATH_GATE_NS = 2_000


def _time_immunized_acquires(pairs: int, fast: bool) -> float:
    """ns per uncontended immunized *acquire* (release untimed)."""
    from repro.config import DimmunixConfig
    from repro.runtime.runtime import DimmunixRuntime

    runtime = DimmunixRuntime(
        DimmunixConfig(
            auto_save=False, position_cache=fast, fast_path=fast
        ),
        name=f"e1-fastpath-{'on' if fast else 'off'}",
    )
    lock = runtime.lock("hot")
    clock = time.perf_counter_ns
    total = 0
    for _ in range(pairs):
        start = clock()
        lock.acquire()
        total += clock() - start
        lock.release()
    return total / pairs


def bench_fastpath_overhead_gate(benchmark, record):
    """Uncontended immunized ``lock.acquire()`` must stay under 2µs
    through the (code, lasti) position cache and the no-history fast
    path — and the fast-path-off run must still satisfy the original
    loose bound, proving the exact path is merely bypassed, not changed.
    """

    def measure():
        best = {True: float("inf"), False: float("inf")}
        for _ in range(FASTPATH_ROUNDS):
            for fast in (True, False):
                best[fast] = min(
                    best[fast],
                    _time_immunized_acquires(FASTPATH_ACQUIRES, fast),
                )
        return best

    best = benchmark.pedantic(measure, rounds=1, iterations=1)
    fast_ns, slow_ns = best[True], best[False]

    print()
    print(
        render_table(
            ["Variant", "ns / acquire", "Relative"],
            [
                ["fast path on", f"{fast_ns:,.0f}", "1.00x"],
                [
                    "fast path off",
                    f"{slow_ns:,.0f}",
                    f"{slow_ns / fast_ns:.2f}x" if fast_ns else "n/a",
                ],
            ],
            title=(
                f"E1 - fast-path acquire gate (min of {FASTPATH_ROUNDS} "
                f"rounds x {FASTPATH_ACQUIRES:,} acquires)"
            ),
        )
    )
    benchmark.extra_info.update(
        fast_ns=round(fast_ns, 1), slow_ns=round(slow_ns, 1)
    )
    record(
        ExperimentRecord(
            experiment_id="E1.fastpath",
            description="uncontended immunized thread acquire, fast path",
            paper_value=(
                "the common case must stay cheap enough to immunize "
                "every lock on the platform (sub-2µs gate)"
            ),
            measured_value=(
                f"fast path {fast_ns:,.0f} ns, exact path "
                f"{slow_ns:,.0f} ns per uncontended acquire"
            ),
            holds=fast_ns < FASTPATH_GATE_NS and slow_ns < 100_000,
        )
    )
    assert slow_ns < 100_000, "fast-path-off acquire above the loose bound"
    if SMOKE:
        return
    assert fast_ns < FASTPATH_GATE_NS, (
        f"fast-path acquire {fast_ns:,.0f} ns breaches the 2µs gate"
    )


# ----------------------------------------------------------------------
# watchdog overhead gate
# ----------------------------------------------------------------------

WATCHDOG_PAIRS = 2_000 if SMOKE else 20_000
WATCHDOG_ROUNDS = 3


def _time_watchdog_thread_pairs(variant: str, pairs: int) -> float:
    """ns per uncontended acquire/release pair under one config."""
    from repro.config import DimmunixConfig
    from repro.runtime.runtime import DimmunixRuntime

    # All variants pin the exact capture path: the watchdog's bus
    # subscription flips ``lifecycle_observed``, which would push only
    # the "on" variant off the no-history fast path and the ratio would
    # compare two different code paths. The fast path has its own gate
    # (bench_fastpath_overhead_gate); this one isolates the
    # subscription tax.
    exact = dict(auto_save=False, position_cache=False, fast_path=False)
    config = {
        "baseline": DimmunixConfig(**exact),
        "off": DimmunixConfig(watchdog=False, **exact),
        # Long scan interval: charge the event-spine subscription, not
        # a mid-measurement scan.
        "on": DimmunixConfig(
            watchdog=True, watchdog_scan_interval=60.0, **exact
        ),
    }[variant]
    runtime = DimmunixRuntime(config, name=f"e1-watchdog-{variant}")
    lock = runtime.lock("hot")
    start = time.perf_counter_ns()
    for _ in range(pairs):
        with lock:
            pass
    elapsed = (time.perf_counter_ns() - start) / pairs
    runtime.core.detach_events()
    return elapsed


def bench_watchdog_overhead_gate(benchmark, record):
    """The watchdog must be absent — not just cheap — when disabled.

    Unlike telemetry (whose off-path is one guard per site), the
    watchdog's off-path is *no code at all*: the engine consults
    ``config.watchdog`` once at construction, so a disabled run must be
    indistinguishable from the default config (≈ 1.00x). Enabled, the
    watchdog rides the event spine as a bus subscriber (one deque
    append per lifecycle event) and must stay under the same 2x bound
    the telemetry gate uses. Interleaved min-of-rounds keeps the ratio
    stable on a noisy shared host.
    """
    variants = ("baseline", "off", "on")

    def measure():
        best = {variant: float("inf") for variant in variants}
        for _ in range(WATCHDOG_ROUNDS):
            for variant in variants:
                best[variant] = min(
                    best[variant],
                    _time_watchdog_thread_pairs(variant, WATCHDOG_PAIRS),
                )
        return best

    best = benchmark.pedantic(measure, rounds=1, iterations=1)
    base_ns = best["baseline"]
    off_ratio = best["off"] / base_ns if base_ns else float("inf")
    on_ratio = best["on"] / base_ns if base_ns else float("inf")

    print()
    print(
        render_table(
            ["Variant", "ns / pair", "Relative"],
            [
                ["baseline (default)", f"{base_ns:,.0f}", "1.00x"],
                ["watchdog off", f"{best['off']:,.0f}", f"{off_ratio:.2f}x"],
                ["watchdog on", f"{best['on']:,.0f}", f"{on_ratio:.2f}x"],
            ],
            title=(
                f"E1 - watchdog overhead gate (min of {WATCHDOG_ROUNDS} "
                f"interleaved rounds x {WATCHDOG_PAIRS:,} pairs)"
            ),
        )
    )
    benchmark.extra_info.update(
        base_ns=round(base_ns, 1),
        off_ratio=round(off_ratio, 3),
        on_ratio=round(on_ratio, 3),
    )
    record(
        ExperimentRecord(
            experiment_id="E1.watchdog",
            description="watchdog on/off overhead gate",
            paper_value=(
                "liveness monitoring must not change the 4-5% overhead "
                "story: off = no code on the lock path, on bounded"
            ),
            measured_value=(
                f"off {off_ratio:.2f}x, on {on_ratio:.2f}x "
                f"(baseline {base_ns:,.0f} ns/pair)"
            ),
            holds=off_ratio < 1.15 and on_ratio < 2.0,
        )
    )
    assert on_ratio < 2.0, f"watchdog-on pair cost {on_ratio:.2f}x baseline"
    if SMOKE:
        return
    assert off_ratio < 1.15, (
        f"watchdog-off pair cost {off_ratio:.2f}x the default config"
    )
