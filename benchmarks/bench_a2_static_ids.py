"""A2 — ablation: compiler-assigned static sync-site ids (§4 future work).

§5 attributes most of the 4–5 % overhead to call-stack retrieval
(``dvmGetCallStack``); §4 sketches the fix — the compiler assigns each
synchronization statement a constant id, passed to lockMonitor for free.

Both halves are measured:

* real threads — ``DimmunixLock.acquire(site_id=...)`` skips the Python
  stack walk; the remaining overhead is pure avoidance bookkeeping;
* virtual time — the same microbenchmark with ``stack_retrieval_cost=0``,
  isolating the stack-walk term of the VM cost model.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentRecord
from repro.dalvik.vm import VMConfig
from repro.workloads.microbench import (
    MODE_DIMMUNIX,
    MODE_VANILLA,
    MicrobenchConfig,
    run_real_microbench,
    run_vm_microbench,
)

REAL_CONFIG = MicrobenchConfig(
    threads=8,
    locks=32,
    sites=8,
    iterations_per_thread=250,
    history_size=128,
    seed=5,
)

VM_BASE = VMConfig(ticks_per_second=200_000, stack_retrieval_cost=3)


def bench_real_static_ids(benchmark, record):
    """The honest CPython result: static ids are *already matched* by the
    runtime's interned call-site capture.

    Our ``capture_stack`` interns stacks by frame key (the analog of the
    paper's reused per-thread stackBuffer), so after the first hit a
    "stack walk" is one ``sys._getframe`` plus a dict probe — within
    noise of the static-id dict probe. The big win §4 projects exists
    where stack retrieval is expensive relative to the rest of Request
    (Dalvik's ``dvmGetCallStack``); that regime is measured precisely on
    the VM cost model in ``bench_vm_stack_cost_term``. Here the claim is
    equivalence: supplying ``site_id`` never *costs* anything.
    """
    import statistics

    def measure():
        rates: dict[str, list[float]] = {"vanilla": [], "walk": [], "static": []}
        for _round in range(3):
            rates["vanilla"].append(
                run_real_microbench(REAL_CONFIG, MODE_VANILLA).syncs_per_sec
            )
            rates["walk"].append(
                run_real_microbench(REAL_CONFIG, MODE_DIMMUNIX).syncs_per_sec
            )
            rates["static"].append(
                run_real_microbench(
                    REAL_CONFIG.scaled(static_ids=True), MODE_DIMMUNIX
                ).syncs_per_sec
            )
        return {key: statistics.median(values) for key, values in rates.items()}

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead_walking = 1 - rates["walk"] / rates["vanilla"]
    overhead_static = 1 - rates["static"] / rates["vanilla"]
    print()
    print(
        f"A2 - real threads (lock-dominated): vanilla "
        f"{rates['vanilla']:,.0f} s/s, interned stack walk "
        f"{rates['walk']:,.0f} s/s ({overhead_walking * 100:.1f}%), "
        f"static ids {rates['static']:,.0f} s/s "
        f"({overhead_static * 100:.1f}%)"
    )
    # Equivalence band: static ids within 5pp of the interned walk.
    holds = overhead_static <= overhead_walking + 0.05
    record(
        ExperimentRecord(
            experiment_id="A2.real",
            description="interned call-site capture already matches static ids",
            paper_value="retrieving the id would not incur any performance penalty",
            measured_value=(
                f"interned walk {overhead_walking * 100:.1f}% vs static ids "
                f"{overhead_static * 100:.1f}% - equivalent on CPython"
            ),
            holds=holds,
            notes=(
                "the stack-walk-dominated regime the paper targets is "
                "measured on the VM cost model (A2.vm)"
            ),
        )
    )
    assert holds


def bench_vm_stack_cost_term(benchmark, record):
    config = MicrobenchConfig(
        threads=32,
        locks=64,
        sites=8,
        iterations_per_thread=24,
        inside_spin=20,
        outside_spin=85,
        history_size=128,
        seed=7,
    )

    def measure():
        vanilla = run_vm_microbench(config, dimmunix=False, vm_config=VM_BASE)
        walking = run_vm_microbench(config, dimmunix=True, vm_config=VM_BASE)
        static_vm = VM_BASE.evolve(stack_retrieval_cost=0)
        static = run_vm_microbench(config, dimmunix=True, vm_config=static_vm)
        return vanilla, walking, static

    vanilla, walking, static = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    overhead_walking = walking.overhead_vs(vanilla)
    overhead_static = static.overhead_vs(vanilla)
    stack_share = (
        (overhead_walking - overhead_static) / overhead_walking
        if overhead_walking > 0
        else 0.0
    )
    print()
    print(
        f"A2 - VM: overhead {overhead_walking * 100:.1f}% with stack walks, "
        f"{overhead_static * 100:.1f}% with static ids "
        f"({stack_share * 100:.0f}% of the overhead was stack retrieval)"
    )
    holds = overhead_static < overhead_walking and stack_share >= 0.4
    record(
        ExperimentRecord(
            experiment_id="A2.vm",
            description="share of overhead due to call-stack retrieval",
            paper_value="most of the overhead is due to dvmGetCallStack",
            measured_value=f"{stack_share * 100:.0f}% of overhead is the stack walk",
            holds=holds,
        )
    )
    assert holds
