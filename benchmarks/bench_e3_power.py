"""E3 — power: the battery screen blames "apps + OS" for 14 % either way.

The paper measures power after intensive usage and finds the attribution
unchanged by Dimmunix: display and radio dominate, and a 4–5 % CPU-time
increase moves the apps' share by well under the battery UI's rounding.

We run the same bursty interactive profile on an immunized and a vanilla
phone and compute the attribution from a standard linear power model.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentRecord
from repro.android.apps.catalog import TABLE1_APPS
from repro.android.phone import POWER_PROFILE, PhoneSimulator


def _run_phone(immunized: bool):
    phone = PhoneSimulator(immunized=immunized)
    for spec in TABLE1_APPS:
        phone.launch_app(spec, phases=POWER_PROFILE)
    return phone.power_attribution()


def bench_power_attribution(benchmark, record):
    def measure():
        return _run_phone(True), _run_phone(False)

    with_dimmunix, vanilla = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print()
    print(
        f"E3 - apps+OS attribution: Dimmunix {with_dimmunix.apps_percent}% "
        f"(duty {with_dimmunix.duty_cycle * 100:.1f}%), vanilla "
        f"{vanilla.apps_percent}% (duty {vanilla.duty_cycle * 100:.1f}%)"
    )
    benchmark.extra_info.update(
        dimmunix_pct=with_dimmunix.apps_percent,
        vanilla_pct=vanilla.apps_percent,
    )
    holds = (
        with_dimmunix.apps_percent == vanilla.apps_percent
        and 10 <= vanilla.apps_percent <= 18
    )
    record(
        ExperimentRecord(
            experiment_id="E3",
            description="power attribution with and without Dimmunix",
            paper_value="14% for apps+OS in both configurations",
            measured_value=(
                f"{with_dimmunix.apps_percent}% with, "
                f"{vanilla.apps_percent}% without"
            ),
            holds=holds,
        )
    )
    assert with_dimmunix.apps_percent == vanilla.apps_percent
    # The small CPU overhead is real but must stay under UI rounding.
    assert with_dimmunix.busy_seconds >= vanilla.busy_seconds
