"""A10 — fleet-scale immunity: shard throughput and antibody latency.

The paper's §5 deployment shares one history per *phone*; the fleet
subsystem shares one pool per *fleet*. Two claims make that scale:

* **Sharded writer throughput** — SQLite serializes writers per
  database file, so one pool file becomes the contention point the
  lock-free hot path worked to avoid. ``shard://`` splits the write
  lock N ways by canonical-key hash. Writers run at
  ``durability=full`` (a fleet pool is authoritative: an antibody the
  server acked must survive a power cut, so every commit fsyncs) —
  that is also the regime where the lock matters, because it is held
  across the fsync. Headline: 8 concurrent writer processes sustain at
  least twice the single-file throughput — *where the hardware can
  overlap durable commits at all*. The bench probes that with an
  ideal-sharding control (8 private per-writer pools, same store
  stack): on a one-core host whose filesystem journal serializes
  fsyncs, the probe itself shows no headroom, the sharding claim is
  vacuous there, and the gate degrades to non-regression (the shard
  layer may cost at most 25%). Both numbers are printed and recorded,
  so a capable host demands the 2x and this host cannot lie about it.
* **Time to propagation** — herd immunity is only as good as its
  latency: the wall-clock from patient zero's ``flush()`` to the
  antibody being *matchable* in a sibling process (via the sync pump's
  periodic pull against ``dimmunix-serve``) must sit near the sync
  period, not pile up behind it.

``DIMMUNIX_BENCH_SMOKE=1`` shrinks the workload and skips the
wall-clock assertions so CI can run this as a regression check without
timing flakes.
"""

from __future__ import annotations

import multiprocessing
import os
import statistics
import time

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.core.events import EventBus
from repro.core.history import open_history
from repro.core.store import open_store
from repro.fleet.pump import SyncPump
from repro.fleet.remote import RemoteStore
from repro.fleet.server import FleetServer
from repro.workloads.synthetic_sigs import make_signature

SMOKE = os.environ.get("DIMMUNIX_BENCH_SMOKE") == "1"

WRITERS = 8
SIGS_PER_WRITER = 25 if SMOKE else 100
THROUGHPUT_ROUNDS = 1 if SMOKE else 3
SYNC_PERIOD = 0.02
PROPAGATION_ROUNDS = 2 if SMOKE else 8


def _writer(dsn: str, worker: int, count: int, barrier) -> None:
    """One writer process: record ``count`` distinct antibodies, each
    flushed individually — per-detection durability, the paper's
    posture, and exactly the write-lock contention pattern. The store
    open and signature construction happen before the barrier, so the
    timed window measures the store, not process spawn."""
    store = open_store(dsn, max_signatures=1_000_000)
    signatures = [
        make_signature(
            (f"w{worker}.java", 10 + 2 * index),
            (f"w{worker}.java", 11 + 2 * index),
            worker,
        )
        for index in range(count)
    ]
    barrier.wait()
    try:
        for signature in signatures:
            store.add(signature)
            store.flush()
    finally:
        store.close()


def _run_writers(dsns: list[str]) -> float:
    """Race one writer process per DSN; returns the contended wall
    time (barrier release to last exit)."""
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(len(dsns) + 1)
    processes = [
        context.Process(
            target=_writer, args=(dsn, worker, SIGS_PER_WRITER, barrier)
        )
        for worker, dsn in enumerate(dsns)
    ]
    for process in processes:
        process.start()
    barrier.wait()
    started = time.perf_counter()
    for process in processes:
        process.join()
    elapsed = time.perf_counter() - started
    assert all(process.exitcode == 0 for process in processes)
    return elapsed


def _best_rate(make_dsns) -> float:
    """Best antibodies/s over THROUGHPUT_ROUNDS runs (fresh pools each
    round — ``make_dsns(round)`` names them). Best-of, not mean-of:
    interference on a shared host only ever *slows* a run, so the
    fastest round is the closest estimate of what the layout can
    actually sustain (the same reasoning ``timeit`` documents for
    reporting ``min``)."""
    rates = [
        WRITERS * SIGS_PER_WRITER / _run_writers(make_dsns(round_index))
        for round_index in range(THROUGHPUT_ROUNDS)
    ]
    return max(rates)


def bench_sharded_writer_throughput(benchmark, record, tmp_path):
    single_rate = _best_rate(
        lambda r: [f"sqlite://{tmp_path / f'single{r}.db'}?durability=full"]
        * WRITERS
    )
    # The ideal-sharding control: 8 private per-writer pools, same
    # store stack. This is the most parallelism durable commits can
    # possibly get on this machine — a one-core host whose filesystem
    # journal serializes fsyncs shows ~1x here no matter the layout,
    # and no directory-sharding scheme can beat its own substrate.
    ideal_rate = _best_rate(
        lambda r: [
            f"sqlite://{tmp_path / f'ideal{r}-{w}.db'}?durability=full"
            for w in range(WRITERS)
        ]
    )
    shard_dsn = None

    def shard_round(round_index: int) -> list[str]:
        nonlocal shard_dsn
        shard_dsn = (
            f"shard://{tmp_path / f'pool{round_index}'}"
            f"?shards={WRITERS}&durability=full"
        )
        return [shard_dsn] * WRITERS

    shard_rate = benchmark.pedantic(
        lambda: _best_rate(shard_round), rounds=1, iterations=1
    )
    expected = WRITERS * SIGS_PER_WRITER
    # The last shard pool holds every antibody from every writer —
    # sharding moved the lock, not the durability story.
    pool = open_store(shard_dsn, max_signatures=1_000_000)
    assert len(pool) == expected, f"{shard_dsn}: {len(pool)} != {expected}"
    pool.close()
    speedup = shard_rate / single_rate
    headroom = ideal_rate / single_rate
    # The honest gate, in two regimes. Where the substrate overlaps
    # durable commits (any real multi-core fleet host, headroom >= 2x),
    # demand the win: 75% of the measured ideal, capped at the 2x
    # headline. Where it cannot (one core, a filesystem journal that
    # serializes fsyncs — this shows up as the *ideal* layout gaining
    # nothing), the sharding claim is vacuous on this machine and the
    # meaningful requirement is non-regression: the shard layer may
    # cost at most 25% against the single file.
    if headroom >= 2.0:
        gate = min(2.0, 0.75 * headroom)
    else:
        gate = 0.75
    print()
    print(
        render_table(
            ["Backend", "Antibodies/s", "vs single"],
            [
                ["sqlite:// (one file)", f"{single_rate:,.0f}", "1.0x"],
                [
                    "ideal (8 private files)",
                    f"{ideal_rate:,.0f}",
                    f"{headroom:.2f}x",
                ],
                [
                    f"shard:// ({WRITERS} shards)",
                    f"{shard_rate:,.0f}",
                    f"{speedup:.2f}x",
                ],
            ],
            title=(
                f"A10 - {WRITERS} writers x {SIGS_PER_WRITER} antibodies, "
                f"durable flush per detection, "
                f"best of {THROUGHPUT_ROUNDS}"
            ),
        )
    )
    print(
        f"      shard speedup {speedup:.2f}x against a "
        f"{headroom:.2f}x substrate ceiling (gate {gate:.2f}x)"
    )
    record(
        ExperimentRecord(
            experiment_id="A10.shard",
            description="Sharded pool writer throughput at 8 writers",
            paper_value=(
                "(extension) >= 2x single-file sqlite where the host "
                "can overlap durable commits; non-regression (>= "
                "0.75x) where even ideal sharding gains nothing"
            ),
            measured_value=(
                f"{speedup:.2f}x ({shard_rate:,.0f}/s vs "
                f"{single_rate:,.0f}/s; ideal-sharding ceiling "
                f"{headroom:.2f}x)"
            ),
            holds=speedup >= gate,
        )
    )
    if not SMOKE:
        assert speedup >= gate, (
            f"shard:// reached {speedup:.2f}x of the single file at "
            f"{WRITERS} writers, under the {gate:.2f}x gate "
            f"(substrate ceiling {headroom:.2f}x)"
        )


def bench_time_to_propagation(benchmark, record, tmp_path, monkeypatch):
    from repro.fleet.remote import SPILL_DIR_ENV

    monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path / "spill"))
    backing = open_store(
        f"sqlite://{tmp_path / 'pool.db'}", max_signatures=65536
    )
    server = FleetServer(backing, port=0)
    host, port = server.start_background()
    member = open_history(f"tcp://{host}:{port}")
    pump = SyncPump(member, EventBus(), interval=SYNC_PERIOD)
    patient_zero = RemoteStore(
        host, port, spill_path=tmp_path / "pz.spill.history"
    )
    latencies_ms = []

    def one_outbreak(round_index: int) -> float:
        signature = make_signature(
            ("outbreak.java", 100 + 2 * round_index),
            ("outbreak.java", 101 + 2 * round_index),
            round_index,
        )
        started = time.perf_counter()
        patient_zero.add(signature)
        patient_zero.flush()
        deadline = started + 30.0
        while time.perf_counter() < deadline:
            if member.contains(signature):
                return (time.perf_counter() - started) * 1000
            time.sleep(0.001)
        raise AssertionError("antibody never propagated")

    def replay():
        for round_index in range(PROPAGATION_ROUNDS):
            latencies_ms.append(one_outbreak(round_index))
        return latencies_ms

    try:
        benchmark.pedantic(replay, rounds=1, iterations=1)
        median_ms = statistics.median(latencies_ms)
        worst_ms = max(latencies_ms)
        print()
        print(
            f"A10 - time to propagation over {PROPAGATION_ROUNDS} "
            f"outbreaks (sync period {SYNC_PERIOD * 1000:.0f} ms): "
            f"median {median_ms:.1f} ms, worst {worst_ms:.1f} ms"
        )
        # The pump's period dominates the latency; transport and
        # indexing must stay in its shadow.
        bound_ms = SYNC_PERIOD * 1000 * 5
        record(
            ExperimentRecord(
                experiment_id="A10.propagation",
                description=(
                    "Antibody flush-to-matchable latency across processes"
                ),
                paper_value=(
                    "(extension) reboot-free; bounded by the sync period"
                ),
                measured_value=(
                    f"median {median_ms:.1f} ms, worst {worst_ms:.1f} ms "
                    f"at a {SYNC_PERIOD * 1000:.0f} ms period"
                ),
                holds=median_ms <= bound_ms,
            )
        )
        if not SMOKE:
            assert median_ms <= bound_ms, (
                f"median propagation {median_ms:.1f} ms blew past "
                f"{bound_ms:.0f} ms"
            )
    finally:
        pump.close()
        patient_zero.close()
        member.close()
        server.stop()
        backing.close()
