"""A1 — ablation: outer-call-stack depth 1 vs 2 (the §3.2 wrapper pathology).

Android Dimmunix keeps only the top frame of each outer call stack,
because deep stack retrieval is too expensive on a phone. §3.2 documents
the cost of that choice: if a program funnels all locking through a
custom wrapper (the paper's ``MyLock``), every acquisition shares one
program position, so the first deadlock through the wrapper puts that
position in the history and avoidance serializes *every* wrapper user.

Two measurements on real threads through the interception runtime:

* the **false-positive probe** (deterministic): after one wrapper
  deadlock, a thread holding wrapper lock A forces a concurrent
  acquisition of *unrelated* wrapper lock B. At depth 1 the acquisition
  is parked by avoidance — independent locks serialized; at depth 2 it
  sails through.
* the **throughput ratio**: wrapper lock/unlock rate before vs after the
  deadlock enters the history (collapse at depth 1, none at depth 2).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.workloads.scenarios import (
    measure_wrapper_false_positive,
    run_wrapper_pathology,
)

WORKERS = 4
ITERATIONS = 400
SPIN = 30


@pytest.fixture(scope="module")
def pathology_runs():
    results = []
    for depth in (1, 2):
        pathology = run_wrapper_pathology(
            stack_depth=depth,
            workers=WORKERS,
            iterations=ITERATIONS,
            spin=SPIN,
        )
        probe = measure_wrapper_false_positive(pathology.runtime)
        results.append((pathology, probe))
    return results


def bench_depth1_serializes_independent_locks(benchmark, record, pathology_runs):
    (depth1, probe1), (_depth2, _probe2) = pathology_runs

    def replay():
        return probe1.stalled

    stalled = benchmark.pedantic(replay, rounds=3, iterations=1)
    stall_ms = (
        probe1.stall_seconds * 1000
        if not math.isnan(probe1.stall_seconds)
        else float("nan")
    )
    print()
    print(
        f"A1 - depth 1: independent wrapper acquisition parked by "
        f"avoidance = {stalled} ({probe1.yields} yield(s), "
        f"stalled {stall_ms:.1f} ms until the holder released)"
    )
    holds = stalled and probe1.yields >= 1
    record(
        ExperimentRecord(
            experiment_id="A1.depth1",
            description="depth-1 signatures serialize independent wrapper locks",
            paper_value="Dimmunix would serialize all MyLock synchronizations",
            measured_value=(
                f"unrelated acquisition parked ({probe1.yields} yields, "
                f"{stall_ms:.1f} ms stall)"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_depth2_differentiates_sites(benchmark, record, pathology_runs):
    (_depth1, _probe1), (depth2, probe2) = pathology_runs

    def replay():
        return probe2.stalled

    stalled = benchmark.pedantic(replay, rounds=3, iterations=1)
    print()
    print(
        f"A1 - depth 2: independent wrapper acquisition parked = "
        f"{stalled} ({probe2.yields} yields); throughput ratio "
        f"{depth2.slowdown:.2f}x"
    )
    holds = not stalled and probe2.yields == 0
    record(
        ExperimentRecord(
            experiment_id="A1.depth2",
            description="depth-2 stacks distinguish wrapper call sites",
            paper_value="deeper stacks trade retrieval cost for fewer false positives",
            measured_value=(
                f"no stall, {probe2.yields} yields, "
                f"{depth2.slowdown:.2f}x throughput ratio"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_throughput_collapse(benchmark, record, pathology_runs):
    (depth1, probe1), (depth2, probe2) = pathology_runs

    def replay():
        return (depth1.slowdown, depth2.slowdown)

    benchmark.pedantic(replay, rounds=1, iterations=1)
    print()
    print(
        render_table(
            [
                "Depth",
                "Clean s/s",
                "After s/s",
                "Slowdown",
                "Independent lock stalled",
            ],
            [
                [
                    result.stack_depth,
                    f"{result.syncs_per_sec_clean:.0f}",
                    f"{result.syncs_per_sec_after_deadlock:.0f}",
                    f"{result.slowdown:.2f}x",
                    str(probe.stalled),
                ]
                for result, probe in ((depth1, probe1), (depth2, probe2))
            ],
            title="A1 - wrapper pathology vs outer-stack depth",
        )
    )
    # The slowdown relation is wall-clock (noisy on shared hosts); the
    # probes are the deterministic ground truth and the hard assertion.
    holds = depth1.slowdown > depth2.slowdown and probe1.stalled and not probe2.stalled
    record(
        ExperimentRecord(
            experiment_id="A1",
            description="outer-stack depth ablation (wrapper pathology)",
            paper_value="depth 1 harmful for wrapper-heavy code; safe for synchronized blocks",
            measured_value=(
                f"depth1 {depth1.slowdown:.2f}x + serialization vs "
                f"depth2 {depth2.slowdown:.2f}x, none"
            ),
            holds=holds,
        )
    )
    assert probe1.stalled and not probe2.stalled
