"""Shared harness for the benchmark suite.

Every bench regenerates one artifact of the paper's evaluation (a table
row, a figure, or an inline §5 number) and registers the paper-vs-measured
comparison as an :class:`~repro.analysis.report.ExperimentRecord`. The
records are printed in a summary block at the end of the run — so the
``pytest benchmarks/ --benchmark-only`` transcript contains the same rows
the paper reports — and appended to ``benchmarks/results/records.jsonl``,
from which EXPERIMENTS.md is refreshed.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis.report import ExperimentRecord

RESULTS_DIR = Path(__file__).parent / "results"
RECORDS_KEY = pytest.StashKey[list]()


def pytest_configure(config):
    config.stash[RECORDS_KEY] = []


@pytest.fixture
def record(request):
    """Register one paper-vs-measured record with the session summary."""

    def _record(experiment_record: ExperimentRecord) -> ExperimentRecord:
        request.config.stash[RECORDS_KEY].append(experiment_record)
        return experiment_record

    return _record


@pytest.fixture
def once(benchmark):
    """Run a scenario exactly once under pytest-benchmark timing.

    Most of our experiments are *scenarios* (boot a phone, run a workload
    pair): repeating them inside the default calibration loop would
    multiply minutes of work for no statistical gain, so they are measured
    with one round. Throughput numbers come from the scenario's own
    clock (virtual or wall), not from the benchmark timer.
    """

    def _once(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _once


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    records = config.stash.get(RECORDS_KEY, [])
    if not records:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper-vs-measured", sep="=")
    ok = sum(1 for record in records if record.holds)
    for experiment_record in records:
        terminalreporter.write_line(experiment_record.render())
    terminalreporter.write_line(
        f"\n{ok}/{len(records)} comparisons hold the paper's claim"
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    out = RESULTS_DIR / "records.jsonl"
    with open(out, "w", encoding="utf-8") as handle:
        import json

        for experiment_record in records:
            data = experiment_record.to_json()
            data["run_at"] = stamp
            handle.write(json.dumps(data) + "\n")
    terminalreporter.write_line(f"records written to {out}")
