"""A5 — extension: instrumentation- vs interception-based Dimmunix (§3.1).

The paper credits instrumentation (Java Dimmunix / AspectJ) with one
advantage — *selectivity*: "instrument only the synchronization
statements previously involved in deadlocks, in order to minimize the
performance overhead and the intrusiveness" — and the Android design
trades it away for coverage, because only VM-level interception sees
lock acquisitions inside runtime code (§3.2's ``Object.wait``).

Three measured points on the AST weaver:

* selectivity: a module's cold synchronization sites pay **zero**
  Dimmunix cost under selective weaving (guards exist only at history
  positions), while full weaving pays on every site;
* throughput: cold-path lock/unlock rate, plain vs fully-woven vs
  selectively-woven;
* blindness: the §3.2 wait() inversion in woven code is never detected —
  the same source under the interception runtime is.
"""

from __future__ import annotations

import textwrap
import threading
import time

from repro.analysis.report import ExperimentRecord
from repro.config import DimmunixConfig
from repro.core.history import History
from repro.errors import DeadlockDetectedError
from repro.instrument.weaver import Weaver
from repro.runtime.patch import immunized
from repro.runtime.runtime import DimmunixRuntime
from repro.workloads.synthetic_sigs import make_signature

COLD_MODULE = textwrap.dedent(
    """
    import threading

    hot = threading.Lock()
    cold = threading.Lock()

    def hot_path():
        with hot:
            pass

    def cold_loop(iterations):
        for _ in range(iterations):
            with cold:
                pass
    """
).strip()

WAIT_INVERSION = textwrap.dedent(
    """
    import threading

    x = threading.Lock()
    y = threading.Lock()
    cond = threading.Condition(x)

    def waiter(parked):
        with x:
            with y:
                parked.set()
                cond.wait(timeout=2)

    def notifier(parked):
        parked.wait(timeout=5)
        with x:
            cond.notify_all()
            with y:
                return "done"
    """
).strip()

ITERATIONS = 30_000


def _cold_rate(module) -> float:
    start = time.perf_counter()
    module.get("cold_loop")(ITERATIONS)
    return ITERATIONS / (time.perf_counter() - start)


def _plain_module():
    namespace: dict = {"__name__": "plain"}
    exec(compile(COLD_MODULE, "cold.py", "exec"), namespace)

    class _Module:
        def get(self, name):
            return namespace[name]

    return _Module()


def _hot_history() -> History:
    """A history naming only the module's hot site (the `with hot:` line)."""
    hot_line = next(
        index + 1
        for index, line in enumerate(COLD_MODULE.splitlines())
        if line.strip() == "with hot:"
    )
    history = History()
    history.add(make_signature(("cold.py", hot_line), ("<other>", 1)))
    return history


def bench_selective_cold_path_is_free(benchmark, record):
    def measure():
        runtime = DimmunixRuntime(
            DimmunixConfig(), history=_hot_history(), name="selective"
        )
        weaver = Weaver(runtime, selective=True)
        module = weaver.instrument(COLD_MODULE, "cold.py")
        rate = _cold_rate(module)
        return weaver, module, rate

    weaver, module, rate = benchmark.pedantic(measure, rounds=1, iterations=1)
    report = module.report
    print()
    print(
        f"A5 - selective: {len(report.sites_instrumented)}/"
        f"{len(report.sites_found)} sites guarded; cold loop made "
        f"{weaver.runtime.stats.requests} core requests over "
        f"{ITERATIONS} acquisitions"
    )
    holds = (
        len(report.sites_instrumented) == 1
        and weaver.runtime.stats.requests == 0
        and weaver.stats.guarded_entries == 0
    )
    record(
        ExperimentRecord(
            experiment_id="A5.selective",
            description="selective weaving leaves cold sites untouched",
            paper_value="instrument only statements previously involved in deadlocks",
            measured_value=(
                f"1/{len(report.sites_found)} sites guarded; 0 Dimmunix "
                f"calls on {ITERATIONS} cold acquisitions"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_full_vs_selective_throughput(benchmark, record):
    def measure():
        plain = _cold_rate(_plain_module())

        full_weaver = Weaver(DimmunixRuntime(DimmunixConfig(), name="full"))
        full = _cold_rate(full_weaver.instrument(COLD_MODULE, "cold.py"))

        sel_runtime = DimmunixRuntime(
            DimmunixConfig(), history=_hot_history(), name="sel"
        )
        selective_weaver = Weaver(sel_runtime, selective=True)
        selective = _cold_rate(
            selective_weaver.instrument(COLD_MODULE, "cold.py")
        )
        return plain, full, selective

    plain, full, selective = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead_full = 1 - full / plain
    overhead_selective = 1 - selective / plain
    print()
    print(
        f"A5 - cold-path rate: plain {plain:,.0f}/s, fully woven "
        f"{full:,.0f}/s ({overhead_full * 100:.0f}% overhead), selectively "
        f"woven {selective:,.0f}/s ({overhead_selective * 100:.0f}%)"
    )
    holds = full < plain and selective > full
    record(
        ExperimentRecord(
            experiment_id="A5.throughput",
            description="selective weaving minimizes overhead (§3.1)",
            paper_value="selectivity minimizes performance overhead and intrusiveness",
            measured_value=(
                f"full weaving {overhead_full * 100:.0f}% overhead vs "
                f"selective {overhead_selective * 100:.0f}%"
            ),
            holds=holds,
            notes="wall-clock; the ordering is the claim, not the magnitudes",
        )
    )
    assert holds


def bench_instrumentation_blindness(benchmark, record):
    def run_inversion(module) -> None:
        parked = threading.Event()

        def quiet(func):
            def run() -> None:
                try:
                    func(parked)
                except DeadlockDetectedError:
                    pass

            return run

        threads = [
            threading.Thread(target=quiet(module.get("waiter")), daemon=True),
            threading.Thread(target=quiet(module.get("notifier")), daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=8)

    def measure():
        woven_runtime = DimmunixRuntime(
            DimmunixConfig(yield_timeout=1.0), name="woven"
        )
        weaver = Weaver(woven_runtime)
        run_inversion(weaver.instrument(WAIT_INVERSION, "inv.py"))

        intercepted_runtime = DimmunixRuntime(
            DimmunixConfig(yield_timeout=1.0), name="intercepted"
        )
        with immunized(intercepted_runtime):
            namespace: dict = {"__name__": "inv"}
            exec(compile(WAIT_INVERSION, "inv.py", "exec"), namespace)

            class _Module:
                def get(self, name):
                    return namespace[name]

            run_inversion(_Module())
        return woven_runtime, intercepted_runtime

    woven, intercepted = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        f"A5 - wait() inversion detections: woven "
        f"{woven.stats.deadlocks_detected}, intercepted "
        f"{intercepted.stats.deadlocks_detected}"
    )
    holds = (
        woven.stats.deadlocks_detected == 0
        and intercepted.stats.deadlocks_detected >= 1
    )
    record(
        ExperimentRecord(
            experiment_id="A5.blindness",
            description="instrumentation cannot see wait() reacquisition (§3.2)",
            paper_value="an instrumentation-based Dimmunix cannot handle such deadlocks",
            measured_value=(
                f"woven: 0 detections (frozen); interception: "
                f"{intercepted.stats.deadlocks_detected} detection(s)"
            ),
            holds=holds,
        )
    )
    assert holds
