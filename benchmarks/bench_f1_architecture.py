"""F1 — Figure 1: per-process Dimmunix instances inside the platform VM.

The figure shows one Dimmunix data block *per application*, inside the
VM, underneath unmodified apps. The measurable content:

* every Zygote fork gets its own Dimmunix core (history, RAG, positions);
* detection and avoidance are application-local — a deadlock in one
  process neither pollutes another process's history nor perturbs its
  scheduling;
* immunity is platform-wide by default: no app opts in, all are covered.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentRecord
from repro.android.apps.catalog import CALENDAR, CAMERA
from repro.android.apps.workload import run_app
from repro.android.issue7986 import PROCESS_NAME, run_once
from repro.core.history import History
from repro.dalvik.vm import VMConfig
from repro.dalvik.zygote import Zygote


def bench_per_process_isolation(benchmark, record, tmp_path):
    """A system_server deadlock leaves app processes untouched."""

    def measure():
        zygote = Zygote(VMConfig(), history_dir=tmp_path / "histories")
        server_vm = zygote.fork(PROCESS_NAME, seed=11)
        server = run_once(server_vm)

        # A clean app forked from the same Zygote, after the freeze.
        app_vm = zygote.fork("com.android.calendar", seed=5)
        program = _small_app_program()
        for index in range(4):
            app_vm.spawn(program, name=f"cal-{index}")
        app_run = app_vm.run()
        return zygote, server, server_vm, app_vm, app_run

    zygote, server, server_vm, app_vm, app_run = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    server_history = server_vm.core.history
    app_history = app_vm.core.history
    holds = (
        server.frozen
        and len(server_history) == 1
        and app_run.status == "completed"
        and len(app_history) == 0
        and server_vm.core is not app_vm.core
    )
    print()
    print(
        f"F1 - system_server: {server.run.status}, "
        f"{len(server_history)} signature(s); calendar app: "
        f"{app_run.status}, {len(app_history)} signature(s)"
    )
    record(
        ExperimentRecord(
            experiment_id="F1.isolation",
            description="deadlock detection/avoidance is application-local",
            paper_value="per-process Dimmunix data; apps isolated",
            measured_value=(
                f"server froze with 1 signature; app completed with 0 — "
                f"distinct cores, distinct histories"
            ),
            holds=holds,
        )
    )
    assert holds

    # Per-process history files on disk, named by process.
    files = sorted(p.name for p in (tmp_path / "histories").glob("*.history"))
    assert files == ["system_server.history"]


def bench_every_fork_is_immunized(benchmark, record, tmp_path):
    """Platform-wide default: every forked process has a live core."""

    def measure():
        zygote = Zygote(VMConfig(), history_dir=tmp_path / "h2")
        vms = [
            zygote.fork(name, seed=index)
            for index, name in enumerate(
                ["com.a", "com.b", "com.c", "system_server", "com.d"]
            )
        ]
        return zygote, vms

    zygote, vms = benchmark.pedantic(measure, rounds=1, iterations=1)
    cores = [vm.core for vm in vms]
    holds = (
        all(core is not None for core in cores)
        and len({id(core) for core in cores}) == len(cores)
        and zygote.fork_count == len(vms)
        and all(
            vm.config.dimmunix.history_path is not None
            and vm.config.dimmunix.history_path.name
            == f"{vm.name.replace('/', '_')}.history"
            for vm in vms
        )
    )
    print()
    print(f"F1 - {len(vms)} forks, {len({id(c) for c in cores})} distinct cores")
    record(
        ExperimentRecord(
            experiment_id="F1.platform-wide",
            description="all forked processes run with their own Dimmunix",
            paper_value="APP1..APPn each with Dimmunix data (Figure 1)",
            measured_value=f"{len(vms)}/{len(vms)} forks immunized, all distinct",
            holds=holds,
        )
    )
    assert holds


def bench_app_mix_with_one_faulty_app(benchmark, record, tmp_path):
    """The platform survives a deadlocking app among healthy ones."""

    def measure():
        healthy = [
            run_app(CAMERA, dimmunix=True),
            run_app(CALENDAR, dimmunix=True),
        ]
        zygote = Zygote(VMConfig(), history_dir=tmp_path / "h3")
        faulty_vm = zygote.fork("com.faulty", seed=3)
        faulty = run_once(faulty_vm)
        return healthy, faulty

    healthy, faulty = benchmark.pedantic(measure, rounds=1, iterations=1)
    clean = sum(1 for result in healthy if result.run.status == "completed")
    holds = clean == len(healthy) and faulty.frozen
    print()
    print(
        f"F1 - {clean}/{len(healthy)} healthy apps completed while "
        f"com.faulty froze (and was immunized for its next start)"
    )
    record(
        ExperimentRecord(
            experiment_id="F1.blast-radius",
            description="one app's deadlock does not stall the others",
            paper_value="platform-wide immunity, app-local failure",
            measured_value=f"{clean}/{len(healthy)} healthy apps unaffected",
            holds=holds,
        )
    )
    assert holds


def _small_app_program():
    from repro.dalvik.program import ProgramBuilder

    builder = ProgramBuilder("Calendar.java")
    builder.set_reg("i", 50)
    builder.label("loop")
    builder.rand("r", 16)
    builder.monitor_enter("cal.obj", reg="r", line=40)
    builder.compute(3, line=41)
    builder.monitor_exit("cal.obj", reg="r", line=42)
    builder.compute(10)
    builder.loop_dec("i", "loop")
    builder.halt()
    return builder.build()
