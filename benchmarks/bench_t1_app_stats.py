"""T1 — Table 1: threads, peak syncs/sec, and memory for 8 Android apps.

The paper profiles eight applications during intensive usage, selects the
30-second window with the highest synchronization throughput, and reports
thread count, syncs/sec, and memory consumption with Dimmunix (52 % of
device RAM overall) vs. vanilla (50 %).

Our substitute: each app is a synthetic workload with the paper's thread
count and a compute budget calibrated to its measured peak rate, run on
both an immunized and a vanilla phone image; the memory columns come from
the measured structure growth of the simulated process on top of the
paper's vanilla baseline.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ExperimentRecord, within_factor
from repro.analysis.tables import render_table
from repro.android.apps.catalog import TABLE1_APPS
from repro.android.phone import run_table1_phone_pair

# Paper Table 1: name -> (threads, syncs/sec, Dimmunix MB, vanilla MB)
PAPER_TABLE1 = {
    "Email": (46, 1952, 15.8, 15.0),
    "Browser": (61, 1411, 38.9, 37.9),
    "Maps": (119, 1143, 23.7, 22.9),
    "Market": (78, 891, 17.9, 17.3),
    "Calendar": (26, 815, 14.4, 14.0),
    "Talk": (33, 527, 11.2, 10.7),
    "Angry Birds": (23, 325, 29.7, 29.3),
    "Camera": (26, 309, 11.8, 11.4),
}


@pytest.fixture(scope="module")
def table1_run():
    """One full 8-app pair run shared by every comparison below."""
    rows, report, immunized, vanilla = run_table1_phone_pair(TABLE1_APPS)
    return rows, report, immunized, vanilla


def bench_table1(benchmark, record, table1_run):
    """Regenerate the whole table and print it next to the paper's."""

    def measure():
        return run_table1_phone_pair(TABLE1_APPS[:2])

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows, report, _immunized, _vanilla = table1_run
    table_rows = []
    all_rates_hold = True
    for row in rows:
        p_threads, p_rate, p_dmb, p_vmb = PAPER_TABLE1[row.name]
        rate_holds = within_factor(row.peak_syncs_per_sec, p_rate, 1.3)
        all_rates_hold = all_rates_hold and rate_holds
        table_rows.append(
            [
                row.name,
                row.threads,
                f"{row.peak_syncs_per_sec:.0f}",
                p_rate,
                f"{row.dimmunix_mb:.1f}",
                p_dmb,
                f"{row.vanilla_mb:.1f}",
                p_vmb,
            ]
        )
    print()
    print(
        render_table(
            [
                "Application",
                "Threads",
                "Syncs/s",
                "(paper)",
                "Dim MB",
                "(paper)",
                "Van MB",
                "(paper)",
            ],
            table_rows,
            title="Table 1 - measured vs paper",
        )
    )
    print(
        f"overall: Dimmunix {report.dimmunix_pct:.0f}% vs "
        f"vanilla {report.vanilla_pct:.0f}% of device RAM "
        f"(paper: 52% vs 50%)"
    )
    record(
        ExperimentRecord(
            experiment_id="T1",
            description="Table 1: 8 apps, threads/syncs/memory",
            paper_value="peak rates 309-1952 s/s; overall memory 52% vs 50%",
            measured_value=(
                f"peak rates {min(r.peak_syncs_per_sec for r in rows):.0f}-"
                f"{max(r.peak_syncs_per_sec for r in rows):.0f} s/s; overall "
                f"{report.dimmunix_pct:.0f}% vs {report.vanilla_pct:.0f}%"
            ),
            holds=all_rates_hold
            and round(report.vanilla_pct) == 50
            and round(report.dimmunix_pct) == 52,
        )
    )
    assert all_rates_hold


@pytest.mark.parametrize("spec", TABLE1_APPS, ids=lambda s: s.package)
def bench_table1_rate_per_app(benchmark, record, table1_run, spec):
    """Each app's measured peak rate lands near its paper row."""
    rows, _report, _immunized, vanilla_phone = table1_run
    row = next(r for r in rows if r.name == spec.name)
    paper_threads, paper_rate, _p_dmb, _p_vmb = PAPER_TABLE1[spec.name]

    result = vanilla_phone.results()[spec.name]

    def replay_peak_selection():
        return result.profiler.peak_window(3.0)

    benchmark.pedantic(replay_peak_selection, rounds=3, iterations=1)
    holds = (
        within_factor(row.peak_syncs_per_sec, paper_rate, 1.3)
        and row.threads == paper_threads
    )
    record(
        ExperimentRecord(
            experiment_id=f"T1.{spec.package}",
            description=f"{spec.name}: threads and peak syncs/sec",
            paper_value=f"{paper_threads} threads, {paper_rate} s/s",
            measured_value=(
                f"{row.threads} threads, {row.peak_syncs_per_sec:.0f} s/s"
            ),
            holds=holds,
        )
    )
    assert holds
