"""E2 — memory overhead: 1.3–5.3 % per app, 4 % overall (52 % vs 50 %).

The paper's memory overhead is structure growth: the fat monitors,
RAG nodes, stack buffers, positions, queue cells, and history signatures
Dimmunix adds inside each process. We run each Table-1 app immunized and
vanilla and measure exactly that growth.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.android.apps.catalog import TABLE1_APPS
from repro.android.phone import run_table1_phone_pair

PAPER_PER_APP_BAND = (1.3, 5.3)   # percent
BAND_SLACK = 1.0                  # our structures are estimates, allow ±1pp


@pytest.fixture(scope="module")
def memory_rows():
    rows, report, _immunized, _vanilla = run_table1_phone_pair(TABLE1_APPS)
    return rows, report


def bench_per_app_memory_overhead(benchmark, record, memory_rows):
    rows, _report = memory_rows

    def recompute():
        return [row.overhead_pct for row in rows]

    overheads = benchmark.pedantic(recompute, rounds=3, iterations=1)
    print()
    print(
        render_table(
            ["Application", "Vanilla MB", "Dimmunix MB", "Overhead"],
            [
                [
                    row.name,
                    f"{row.vanilla_mb:.1f}",
                    f"{row.dimmunix_mb:.1f}",
                    f"{row.overhead_pct:.1f}%",
                ]
                for row in rows
            ],
            title="E2 - per-app memory overhead",
        )
    )
    low = PAPER_PER_APP_BAND[0] - BAND_SLACK
    high = PAPER_PER_APP_BAND[1] + BAND_SLACK
    holds = all(low <= pct <= high for pct in overheads)
    record(
        ExperimentRecord(
            experiment_id="E2.per-app",
            description="per-app memory overhead band",
            paper_value="1.3-5.3% across the 8 apps",
            measured_value=f"{min(overheads):.1f}-{max(overheads):.1f}%",
            holds=holds,
        )
    )
    assert holds


def bench_overall_memory(benchmark, record, memory_rows):
    _rows, report = memory_rows

    def recompute():
        return (
            report.vanilla_pct,
            report.dimmunix_pct,
            report.overall_overhead_pct,
        )

    vanilla_pct, dimmunix_pct, overall = benchmark.pedantic(
        recompute, rounds=3, iterations=1
    )
    print()
    print(
        f"E2 - device-wide: Dimmunix {dimmunix_pct:.1f}% vs vanilla "
        f"{vanilla_pct:.1f}% of RAM; overall overhead {overall:.1f}%"
    )
    holds = (
        round(vanilla_pct) == 50
        and round(dimmunix_pct) == 52
        and 2.0 <= overall <= 6.0
    )
    record(
        ExperimentRecord(
            experiment_id="E2.overall",
            description="device-wide memory consumption",
            paper_value="52% vs 50% of 512 MB; ~4% overall overhead",
            measured_value=(
                f"{dimmunix_pct:.0f}% vs {vanilla_pct:.0f}%; "
                f"{overall:.1f}% overall"
            ),
            holds=holds,
        )
    )
    assert holds


def bench_footprint_breakdown(benchmark, record, memory_rows):
    """Where the bytes go — §4's claim that positions/stacks dominate."""
    rows, _report = memory_rows
    _unused = rows

    from repro.android.apps.catalog import EMAIL
    from repro.android.apps.workload import run_app

    def measure():
        result = run_app(EMAIL, dimmunix=True)
        assert result.vm.core is not None
        return result.vm.core.memory_footprint()

    footprint = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print("E2 - Email process Dimmunix structures:", footprint.as_dict())
    record(
        ExperimentRecord(
            experiment_id="E2.breakdown",
            description="Dimmunix structure census in one app process",
            paper_value="growth dominated by per-object monitors/nodes + per-thread buffers",
            measured_value=(
                f"{footprint.lock_nodes} lock nodes, "
                f"{footprint.thread_nodes} threads, "
                f"{footprint.positions} positions, "
                f"{footprint.bytes_total / 1024:.0f} KiB total"
            ),
            holds=footprint.lock_nodes > footprint.positions,
        )
    )
    assert footprint.bytes_total > 0
