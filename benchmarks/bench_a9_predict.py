"""A9 — the prediction pipeline's own cost.

Predictive immunity only pays off if predicting is cheap relative to
the deadlocks it pre-empts: the static lint must chew through source
fast enough to live in CI, the trace miner must keep up with recorded
event streams, and — the A3 tie-in — seeding hundreds of *predictions*
must not bloat the avoidance hot path once the TTL reaper has swept the
false positives out of the position index.

Wall-clock assertions are relaxed in CI smoke mode
(``DIMMUNIX_BENCH_SMOKE=1``); structural assertions always run.
"""

from __future__ import annotations

import os
import time

from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.core.history import History
from repro.predict.harness import seed_predictions
from repro.predict.staticlint import lint_source
from repro.predict.tracemine import mine_events
from repro.workloads.synthetic_sigs import make_signature

SMOKE = os.environ.get("DIMMUNIX_BENCH_SMOKE") == "1"


# ----------------------------------------------------------------------
# synthetic inputs
# ----------------------------------------------------------------------

def _synthetic_module(functions: int) -> str:
    """A module of ``functions`` lock-using functions, one real cycle."""
    parts = ["def setup(rt):"]
    for index in range(functions):
        parts.append(f"    lk_{index} = rt.lock('bench-{index}')")
    for index in range(functions - 1):
        parts += [
            f"    def fn_{index}():",
            f"        with lk_{index}:",
            f"            with lk_{index + 1}:",
            "                pass",
        ]
    # The one planted reversal (a 2-cycle, within the default search
    # bound) the lint must still find in all that noise.
    parts += [
        "    def fn_back():",
        "        with lk_1:",
        "            with lk_0:",
        "                pass",
    ]
    return "\n".join(parts) + "\n"


def _synthetic_trace(pairs: int) -> list[dict]:
    """``pairs`` consistent-order acquisitions plus one reversal."""
    events: list[dict] = []

    def emit(kind, thread, lock, line=0):
        data = {"kind": kind, "source": "s", "thread": thread, "lock": lock}
        if kind == "request":
            data["position"] = [["bench.py", line]]
        events.append(data)

    def hold(thread, outer, inner, outer_line, inner_line):
        emit("request", thread, outer, outer_line)
        emit("acquired", thread, outer)
        emit("request", thread, inner, inner_line)
        emit("acquired", thread, inner)
        emit("release", thread, inner)
        emit("release", thread, outer)

    for index in range(pairs):
        thread = f"t{index % 8}"
        lock = index % 32
        hold(thread, f"L{lock}", f"L{lock + 1}", 10 + lock, 11 + lock)
    hold("tx", "L1", "L0", 900, 901)  # the reversal to find
    return events


# ----------------------------------------------------------------------
# benches
# ----------------------------------------------------------------------

def bench_lint_throughput(benchmark, record):
    functions = 60 if SMOKE else 400
    source = _synthetic_module(functions)
    kloc = source.count("\n") / 1000

    def run():
        return lint_source(source, "bench_mod.py")

    diagnostics = benchmark.pedantic(run, rounds=1, iterations=1)
    assert diagnostics, "the planted ring cycle must be found"
    started = time.perf_counter()
    lint_source(source, "bench_mod.py")
    per_kloc_ms = (time.perf_counter() - started) / kloc * 1000

    record(
        ExperimentRecord(
            experiment_id="A9.lint",
            description="static lint throughput (CI budget)",
            paper_value="static analysis cheap enough to run per-commit",
            measured_value=f"{per_kloc_ms:.1f} ms/KLoC ({kloc:.1f} KLoC module)",
            holds=SMOKE or per_kloc_ms < 1000,
        )
    )
    if not SMOKE:
        assert per_kloc_ms < 1000, "lint must stay under 1s per KLoC"


def bench_mine_throughput(benchmark, record):
    pairs = 400 if SMOKE else 5000
    events = _synthetic_trace(pairs)

    def run():
        return mine_events(events)

    predictions = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any("L0" in p.cycle and "L1" in p.cycle for p in predictions)
    started = time.perf_counter()
    mine_events(events)
    elapsed = time.perf_counter() - started
    per_10k_ms = elapsed / len(events) * 10_000 * 1000

    record(
        ExperimentRecord(
            experiment_id="A9.mine",
            description="trace mining throughput",
            paper_value="mining an execution trace is offline, not per-sync",
            measured_value=(
                f"{per_10k_ms:.0f} ms per 10k events "
                f"({len(events)} events mined)"
            ),
            holds=SMOKE or per_10k_ms < 5000,
        )
    )
    if not SMOKE:
        assert per_10k_ms < 5000, "mining must stay under 5s per 10k events"


def bench_expiry_unbloats_lookups(benchmark, record):
    """A3 regression: expired predictions leave the hot-path index.

    Seeding N predictions grows the per-position index; the TTL reaper
    must shrink it back so ``contains_position`` probes after expiry
    cost what an empty history costs — not what N signatures cost.
    """
    seeded_count = 64 if SMOKE else 512
    probes = 2_000 if SMOKE else 50_000

    def probe_cost(history: History, keys) -> float:
        started = time.perf_counter()
        for index in range(probes):
            history.contains_position(keys[index % len(keys)])
        return (time.perf_counter() - started) / probes * 1e9

    signatures = [
        make_signature(("pred.py", i * 7 + 1), ("pred.py", i * 7 + 2), i)
        for i in range(seeded_count)
    ]
    keys = [sig.outer_position_keys()[0] for sig in signatures]

    history = History()
    seed_predictions(history, signatures)
    assert len(history) == seeded_count
    cost_seeded = probe_cost(history, keys)

    def expire():
        return history.expire_predictions(1)

    expired = benchmark.pedantic(expire, rounds=1, iterations=1)
    assert expired == seeded_count
    assert len(history) == 0
    # The structural half of the claim: nothing left in the index.
    assert not any(history.contains_position(key) for key in keys)
    cost_after = probe_cost(history, keys)

    print()
    print(
        render_table(
            ["state", "signatures", "contains_position (ns)"],
            [
                ["seeded", seeded_count, f"{cost_seeded:,.0f}"],
                ["expired", 0, f"{cost_after:,.0f}"],
            ],
            title="A9 - index cost before/after prediction expiry",
        )
    )
    record(
        ExperimentRecord(
            experiment_id="A9.expiry",
            description="prediction expiry unbloats the position index",
            paper_value="tuple-indexed history keeps Request cost per-signature",
            measured_value=(
                f"{cost_seeded:,.0f} ns with {seeded_count} predictions, "
                f"{cost_after:,.0f} ns after expiry"
            ),
            holds=True,
        )
    )
    if not SMOKE:
        # Misses on an empty index must not be pricier than hits on a
        # bloated one (generous 4x noise allowance).
        assert cost_after < cost_seeded * 4 + 500
