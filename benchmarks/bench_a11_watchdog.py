"""A11 — the liveness watchdog: detection latency, overhead, precision.

The PR-9 watchdog extends immunity past what the RAG cycle detector can
see: livelocks, yield storms, and cooperative starvation never form a
cycle, so they need llkd-style forward-progress monitoring instead. This
bench holds the three claims that make the watchdog shippable:

* **Time to suspicion** — each scenario in the livelock pack
  (:mod:`repro.workloads.livelock`) must surface a
  ``LivelockSuspectedEvent`` within 3 scan periods of qualifying
  (storm window filled, or stall age reached). Measured wall-clock from
  scenario start and in scan counts.
* **Watchdog-off is free** — with ``watchdog=False`` the engine contains
  no watchdog code on the lock path (no attribute check, no subscriber,
  no thread), so an uncontended E1 acquire/release pair must cost the
  same as the default config: ≈ 1.00x, measured interleaved
  min-of-rounds to kill scheduler noise. Watchdog-on rides the event
  spine (one deque append per lifecycle event) and must stay < 2x.
* **``match_step_budget`` ablation** — on the simulated phone the budget
  trades avoidance precision against worst-case matching latency. A
  too-tight budget (1 step) caps every §2.2 check and silently disables
  immunity (0 avoided instantiations — the deadlocks come back); modest
  budgets reproduce the unbounded matcher's decisions exactly while
  bounding any single check.

``DIMMUNIX_BENCH_SMOKE=1`` shrinks the sweeps and skips the wall-clock
assertions so CI can run this without timing flakes.
"""

from __future__ import annotations

import asyncio
import os
import time

import repro
from repro.analysis.report import ExperimentRecord
from repro.analysis.tables import render_table
from repro.config import DetectionPolicy, DimmunixConfig
from repro.dalvik.vm import VMConfig
from repro.workloads.livelock import (
    run_aio_greedy_holder,
    run_pingpong_yield_storm,
    run_trylock_spin_pair,
)
from repro.workloads.microbench import MicrobenchConfig, run_vm_microbench
from repro.workloads.synthetic_sigs import HOT

SMOKE = os.environ.get("DIMMUNIX_BENCH_SMOKE") == "1"

# The watchdog operating point used by every scenario: fast scans so the
# bench finishes in seconds, thresholds proportioned like the defaults.
SCAN_INTERVAL = 0.05
STALL_AGE = 0.15
STORM_WINDOW = 0.5
STORM_RATIO = 4


def _session(**overrides) -> "repro.Dimmunix":
    defaults = dict(
        watchdog=True,
        watchdog_scan_interval=SCAN_INTERVAL,
        watchdog_stall_age=STALL_AGE,
        watchdog_storm_window=STORM_WINDOW,
        watchdog_storm_ratio=STORM_RATIO,
        yield_timeout=None,
        auto_save=False,
    )
    defaults.update(overrides)
    return repro.Dimmunix(config=DimmunixConfig(**defaults))


class _FirstSuspicion:
    """Stamps the wall-clock arrival of the first suspicion event."""

    def __init__(self):
        self.event = None
        self.at_ns = None

    def __call__(self, event):
        if self.event is None:
            self.event = event
            self.at_ns = time.monotonic_ns()

    def seen(self) -> bool:
        return self.event is not None


def _measure_pingpong() -> dict:
    dx = _session()
    first = _FirstSuspicion()
    dx.events.subscribe(first, kinds=("livelock-suspected",))
    runtime = dx.runtime()
    scans_before = runtime.core.watchdog.scans
    start_ns = time.monotonic_ns()
    outcome = run_pingpong_yield_storm(
        runtime, until=first.seen, duration=15.0
    )
    dx.close()
    assert outcome.seeded, "phase 1 never earned the AB/BA antibody"
    assert first.event is not None, "ping-pong storm never suspected"
    return {
        "scenario": "pingpong-yield-storm",
        "reason": first.event.reason,
        "wall_ms": (first.at_ns - start_ns) / 1e6,
        "scans_used": first.event.scan - scans_before,
        # The storm window must fill before the node can qualify.
        "budget_scans": STORM_WINDOW / SCAN_INTERVAL,
        "note": "wall incl. antibody seeding",
    }


def _measure_trylock() -> dict:
    # Stall age pushed out so the window detector (not the stall
    # detector) is the one on trial, as in the unit suite.
    dx = _session(watchdog_stall_age=5.0)
    first = _FirstSuspicion()
    dx.events.subscribe(first, kinds=("livelock-suspected",))
    runtime = dx.runtime()
    scans_before = runtime.core.watchdog.scans
    start_ns = time.monotonic_ns()
    outcome = run_trylock_spin_pair(
        runtime, until=first.seen, duration=15.0
    )
    dx.close()
    assert outcome.completed
    assert first.event is not None, "try-lock spin never suspected"
    return {
        "scenario": "trylock-spin-pair",
        "reason": first.event.reason,
        "wall_ms": (first.at_ns - start_ns) / 1e6,
        "scans_used": first.event.scan - scans_before,
        "budget_scans": STORM_WINDOW / SCAN_INTERVAL,
        "note": "",
    }


def _measure_aio_greedy() -> dict:
    dx = _session()
    first = _FirstSuspicion()
    dx.events.subscribe(first, kinds=("livelock-suspected",))
    aio = dx.aio()

    async def main():
        start_ns = time.monotonic_ns()
        outcome = await run_aio_greedy_holder(
            aio, until=first.seen, duration=15.0
        )
        return start_ns, outcome

    start_ns, outcome = asyncio.run(main())
    scans_total = dx.health()["scans"]
    dx.close()
    assert outcome.starved_completed
    assert first.event is not None, "greedy holder never suspected"
    return {
        "scenario": "aio-greedy-holder",
        "reason": first.event.reason,
        "wall_ms": (first.at_ns - start_ns) / 1e6,
        # The aio core's watchdog starts with the scenario, so the
        # event's own scan index is the count used.
        "scans_used": min(first.event.scan, scans_total),
        "budget_scans": STALL_AGE / SCAN_INTERVAL,
        "note": "stall detector",
    }


def bench_watchdog_time_to_suspicion(benchmark, record):
    """First ``LivelockSuspectedEvent`` latency across the livelock pack."""

    def sweep():
        return [
            _measure_pingpong(),
            _measure_trylock(),
            _measure_aio_greedy(),
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["Scenario", "Reason", "Wall", "Scans", "Budget"],
            [
                [
                    r["scenario"],
                    r["reason"],
                    f"{r['wall_ms']:.0f} ms",
                    f"{r['scans_used']:.0f}",
                    f"{r['budget_scans']:.0f}+3",
                ]
                for r in results
            ],
            title=(
                f"A11 - time to suspicion (scan {SCAN_INTERVAL * 1000:.0f} ms,"
                f" stall {STALL_AGE * 1000:.0f} ms,"
                f" window {STORM_WINDOW * 1000:.0f} ms)"
            ),
        )
    )
    worst_ms = max(r["wall_ms"] for r in results)
    within = all(
        r["scans_used"] <= r["budget_scans"] + 3 for r in results
    )
    record(
        ExperimentRecord(
            experiment_id="A11.suspicion",
            description="watchdog time-to-suspicion on the livelock pack",
            paper_value=(
                "llkd ladder: suspicion within 3 scan periods of a node "
                "qualifying (none of these form a RAG cycle)"
            ),
            measured_value=(
                "; ".join(
                    f"{r['scenario']} {r['wall_ms']:.0f} ms "
                    f"({r['scans_used']:.0f} scans, {r['reason']})"
                    for r in results
                )
            ),
            holds=within,
            details={
                "scenarios": [
                    {k: v for k, v in r.items() if k != "note"}
                    for r in results
                ]
            },
        )
    )
    assert worst_ms < 15_000
    if SMOKE:
        return
    assert within, "a scenario exceeded its 3-scan detection budget"


# ----------------------------------------------------------------------
# watchdog-off overhead on the E1 uncontended pair
# ----------------------------------------------------------------------

OVERHEAD_PAIRS = 2_000 if SMOKE else 20_000
OVERHEAD_ROUNDS = 3


def _pair_cost_ns(variant: str, pairs: int) -> float:
    """ns per uncontended acquire/release pair for one config variant."""
    from repro.runtime.runtime import DimmunixRuntime

    # Exact capture path for every variant: watchdog-on's bus
    # subscription flips ``lifecycle_observed``, which would demote
    # only that variant off the no-history fast path and turn the
    # ratio into a fast-vs-exact comparison. The fast path is gated
    # separately (E1/A7 fastpath gates); this bench isolates the
    # watchdog subscription tax.
    exact = dict(auto_save=False, position_cache=False, fast_path=False)
    config = {
        "default": DimmunixConfig(**exact),
        "watchdog-off": DimmunixConfig(watchdog=False, **exact),
        # Long scan interval: measure the event-spine tax, not scans.
        "watchdog-on": DimmunixConfig(
            watchdog=True, watchdog_scan_interval=60.0, **exact
        ),
    }[variant]
    runtime = DimmunixRuntime(config, name=f"a11-{variant}")
    lock = runtime.lock("hot")
    start = time.perf_counter_ns()
    for _ in range(pairs):
        with lock:
            pass
    elapsed = (time.perf_counter_ns() - start) / pairs
    runtime.core.detach_events()
    return elapsed


def bench_watchdog_off_overhead(benchmark, record):
    """Watchdog-off must be indistinguishable from the default config.

    Off is not "one attribute check per acquisition" — it is *zero*
    watchdog code on the lock path (the engine only consults
    ``config.watchdog`` at construction), so the off/default ratio is
    pure measurement noise around 1.00x. Interleaved rounds with
    min-of-rounds make that comparison stable on a shared host.
    """
    variants = ("default", "watchdog-off", "watchdog-on")

    def measure():
        best = {variant: float("inf") for variant in variants}
        for _ in range(OVERHEAD_ROUNDS):
            for variant in variants:
                best[variant] = min(
                    best[variant],
                    _pair_cost_ns(variant, OVERHEAD_PAIRS),
                )
        return best

    best = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = best["default"]
    off_ratio = best["watchdog-off"] / base if base else float("inf")
    on_ratio = best["watchdog-on"] / base if base else float("inf")

    print()
    print(
        render_table(
            ["Variant", "ns / pair", "Relative"],
            [
                ["default (no watchdog)", f"{base:,.0f}", "1.00x"],
                [
                    "watchdog off",
                    f"{best['watchdog-off']:,.0f}",
                    f"{off_ratio:.2f}x",
                ],
                [
                    "watchdog on",
                    f"{best['watchdog-on']:,.0f}",
                    f"{on_ratio:.2f}x",
                ],
            ],
            title=(
                f"A11 - E1 uncontended pair, min of {OVERHEAD_ROUNDS} "
                f"interleaved rounds x {OVERHEAD_PAIRS:,} pairs"
            ),
        )
    )
    benchmark.extra_info.update(
        base_ns=round(base, 1),
        off_ratio=round(off_ratio, 3),
        on_ratio=round(on_ratio, 3),
    )
    record(
        ExperimentRecord(
            experiment_id="A11.overhead",
            description="watchdog overhead on the E1 uncontended pair",
            paper_value=(
                "observability must not move the 4-5% story: "
                "off = no code on the lock path, on < 2x"
            ),
            measured_value=(
                f"off {off_ratio:.2f}x, on {on_ratio:.2f}x "
                f"(base {base:,.0f} ns/pair)"
            ),
            holds=off_ratio < 1.15 and on_ratio < 2.0,
        )
    )
    if SMOKE:
        return
    assert off_ratio < 1.15, f"watchdog-off pair cost {off_ratio:.2f}x"
    assert on_ratio < 2.0, f"watchdog-on pair cost {on_ratio:.2f}x"


# ----------------------------------------------------------------------
# match_step_budget ablation on the simulated phone
# ----------------------------------------------------------------------

# 0 = unbounded; 1 caps every check (total blindness under the grant
# policy); 4 and 16 bracket the knee where precision returns.
BUDGET_SWEEP = (1, 16, 0) if SMOKE else (1, 4, 16, 0)
ABLATION_ITERATIONS = 8 if SMOKE else 32


def _run_ablation(budget: int) -> dict:
    vm_config = VMConfig(
        ticks_per_second=200_000,
        stack_retrieval_cost=3,
        dimmunix=DimmunixConfig(
            detection_policy=DetectionPolicy.BLOCK,
            yield_timeout=None,
            match_step_budget=budget,
        ),
    )
    # HOT mode: every signature's partner is live, so checks do real
    # matching work against occupied queues and avoidance has real
    # deadlocks to prevent — the workload the budget can actually hurt.
    config = MicrobenchConfig(
        threads=32,
        locks=8,
        sites=8,
        iterations_per_thread=ABLATION_ITERATIONS,
        inside_spin=20,
        outside_spin=85,
        history_size=128,
        history_mode=HOT,
        seed=7,
    )
    result = run_vm_microbench(config, dimmunix=True, vm_config=vm_config)
    stats = result.stats
    return {
        "budget": budget,
        "rate": result.syncs_per_sec,
        "caps": stats.match_caps,
        "avoided": stats.avoided_instantiations,
        "steps": stats.matching_steps,
    }


def bench_match_budget_ablation(benchmark, record):
    """Avoidance precision vs worst-case matching latency, §2.2."""

    def sweep():
        return [_run_ablation(budget) for budget in BUDGET_SWEEP]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_budget = {r["budget"]: r for r in results}
    unbounded = by_budget[0]

    print()
    print(
        render_table(
            ["Budget", "Syncs/s", "Caps", "Avoided", "Match steps"],
            [
                [
                    "unbounded" if r["budget"] == 0 else str(r["budget"]),
                    f"{r['rate']:.0f}",
                    f"{r['caps']:,}",
                    f"{r['avoided']:,}",
                    f"{r['steps']:,}",
                ]
                for r in results
            ],
            title=(
                "A11 - match_step_budget ablation "
                "(simulated phone, hot 128-signature history)"
            ),
        )
    )
    tightest = by_budget[1]
    # The knee: the largest bounded budget must reproduce the unbounded
    # matcher's avoidance decisions exactly (the VM is deterministic).
    knee = by_budget[max(b for b in BUDGET_SWEEP if b != 0)]
    record(
        ExperimentRecord(
            experiment_id="A11.budget",
            description="match_step_budget precision/latency ablation",
            paper_value=(
                "§2.2 checks must be cheap on every monitorenter without "
                "silently disabling avoidance"
            ),
            measured_value=(
                f"budget=1: {tightest['avoided']} avoided, "
                f"{tightest['caps']:,} caps (immunity off); "
                f"budget={knee['budget']}: {knee['avoided']} avoided "
                f"== unbounded {unbounded['avoided']} at "
                f"{knee['steps']:,} vs {unbounded['steps']:,} steps"
            ),
            holds=(
                tightest["avoided"] == 0
                and tightest["caps"] > 0
                and unbounded["caps"] == 0
                and knee["avoided"] == unbounded["avoided"]
            ),
            details={"sweep": results},
        )
    )
    assert tightest["caps"] > 0, "budget=1 must cap"
    assert tightest["avoided"] == 0, (
        "a 1-step budget under the grant policy must disable avoidance"
    )
    assert unbounded["caps"] == 0
    assert knee["avoided"] == unbounded["avoided"], (
        "the knee budget diverged from the unbounded matcher"
    )
