"""Unit tests for static sync-site discovery and selectors."""

import textwrap

from repro.core.history import History
from repro.instrument.sites import (
    SyncSite,
    discover_sites,
    make_selector,
    select_all,
    selector_from_history,
    selector_from_keys,
)
from repro.workloads.synthetic_sigs import make_signature

MODULE = textwrap.dedent(
    """
    import threading

    lock_a = threading.Lock()
    lock_b = threading.Lock()

    def one():
        with lock_a:
            return 1

    def two():
        with lock_a:
            with lock_b:
                return 2

    class Service:
        def both(self):
            with lock_a, lock_b:
                return 3
    """
).strip()


class TestDiscoverSites:
    def test_finds_every_with_item(self):
        sites = discover_sites(MODULE, "mod.py")
        # one: 1, two: 2 (nested), Service.both: 2 (one line, two items)
        assert len(sites) == 5

    def test_multi_item_with_shares_line(self):
        sites = discover_sites(MODULE, "mod.py")
        both = [site for site in sites if site.function == "both"]
        assert len(both) == 2
        assert both[0].line == both[1].line
        assert {site.expression for site in both} == {"lock_a", "lock_b"}

    def test_function_attribution(self):
        sites = discover_sites(MODULE, "mod.py")
        functions = {site.function for site in sites}
        assert functions == {"one", "two", "both"}

    def test_sites_ordered_by_line(self):
        sites = discover_sites(MODULE, "mod.py")
        lines = [site.line for site in sites]
        assert lines == sorted(lines)

    def test_position_key_is_depth1(self):
        site = SyncSite("f.py", 12, "lock")
        assert site.position_key() == (("f.py", 12),)

    def test_empty_module(self):
        assert discover_sites("x = 1", "m.py") == []


class TestSelectors:
    def test_select_all(self):
        assert select_all(SyncSite("f.py", 1, "l"))

    def test_selector_from_keys(self):
        selector = selector_from_keys([("f.py", 10)])
        assert selector(SyncSite("f.py", 10, "l"))
        assert not selector(SyncSite("f.py", 11, "l"))
        assert not selector(SyncSite("g.py", 10, "l"))

    def test_selector_from_history(self):
        history = History()
        history.add(make_signature(("mod.py", 8), ("mod.py", 12)))
        selector = selector_from_history(history)
        assert selector(SyncSite("mod.py", 8, "l"))
        assert selector(SyncSite("mod.py", 12, "l"))
        assert not selector(SyncSite("mod.py", 9, "l"))

    def test_make_selector_precedence(self):
        history = History()
        history.add(make_signature(("m.py", 1), ("m.py", 2)))
        by_keys = make_selector(history=history, keys=[("m.py", 99)])
        assert by_keys(SyncSite("m.py", 99, "l"))
        assert not by_keys(SyncSite("m.py", 1, "l"))
        by_history = make_selector(history=history)
        assert by_history(SyncSite("m.py", 1, "l"))
        default = make_selector()
        assert default(SyncSite("anything.py", 1234, "l"))
