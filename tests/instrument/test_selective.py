"""Selective instrumentation (§3.1) and its documented blindness (§3.2)."""

import textwrap
import threading

import pytest

from repro.config import DimmunixConfig
from repro.errors import DeadlockDetectedError
from repro.instrument.weaver import Weaver
from repro.runtime.patch import immunized
from repro.runtime.runtime import DimmunixRuntime

HOT_AND_COLD = textwrap.dedent(
    """
    import threading

    hot_a = threading.Lock()
    hot_b = threading.Lock()
    cold = threading.Lock()

    def hot_ab(ready, go):
        with hot_a:
            ready.set()
            go.wait(timeout=0.5)
            with hot_b:
                return "ab"

    def hot_ba(ready, go):
        with hot_b:
            ready.set()
            go.wait(timeout=0.5)
            with hot_a:
                return "ba"

    def cold_path(iterations):
        for _ in range(iterations):
            with cold:
                pass
        return iterations
    """
).strip()

# The §3.2 wait() inversion, written with stdlib primitives. The waiter
# holds monitor x (the condition's lock) plus y, then waits: the
# reacquisition of x happens *inside* threading.Condition.wait — runtime
# code that no source rewrite can see.
WAIT_INVERSION = textwrap.dedent(
    """
    import threading

    x = threading.Lock()
    y = threading.Lock()
    cond = threading.Condition(x)

    def waiter(parked):
        with x:
            with y:
                parked.set()
                cond.wait(timeout=2)   # releases x; y stays held

    def notifier(parked):
        parked.wait(timeout=5)
        with x:
            cond.notify_all()
            with y:
                return "done"
    """
).strip()


def _runtime() -> DimmunixRuntime:
    return DimmunixRuntime(DimmunixConfig(yield_timeout=1.0), name="sel")


def _provoke(module) -> list:
    ready_a, ready_b, go = (
        threading.Event(),
        threading.Event(),
        threading.Event(),
    )
    log: list = []

    def call(func, ready):
        try:
            log.append(func(ready, go))
        except DeadlockDetectedError:
            log.append("detected")

    threads = [
        threading.Thread(target=call, args=(module.get("hot_ab"), ready_a)),
        threading.Thread(target=call, args=(module.get("hot_ba"), ready_b)),
    ]
    for thread in threads:
        thread.start()
    assert ready_a.wait(5) and ready_b.wait(5)
    go.set()
    for thread in threads:
        thread.join(10)
        assert not thread.is_alive()
    return log


class TestSelectiveMode:
    def _history_from_full_run(self):
        """First deployment: full instrumentation learns the signature."""
        weaver = Weaver(_runtime())
        module = weaver.instrument(HOT_AND_COLD, "app.py")
        log = _provoke(module)
        assert "detected" in log
        return weaver.runtime.history

    def test_selective_guards_only_history_positions(self):
        history = self._history_from_full_run()
        runtime = DimmunixRuntime(
            DimmunixConfig(yield_timeout=1.0), history=history, name="redeploy"
        )
        weaver = Weaver(runtime, selective=True)
        module = weaver.instrument(HOT_AND_COLD, "app.py")
        report = module.report
        # Only the hot positions (the recorded outer positions) guarded.
        assert 0 < len(report.sites_instrumented) < len(report.sites_found)
        instrumented_keys = {s.key() for s in report.sites_instrumented}
        for signature in history:
            for key in signature.outer_position_keys():
                assert (key[0][0], key[0][1]) in instrumented_keys

    def test_cold_path_pays_nothing(self):
        history = self._history_from_full_run()
        runtime = DimmunixRuntime(
            DimmunixConfig(yield_timeout=1.0), history=history, name="redeploy"
        )
        weaver = Weaver(runtime, selective=True)
        module = weaver.instrument(HOT_AND_COLD, "app.py")
        module.get("cold_path")(100)
        # The cold lock's with-statement was not rewritten: zero requests.
        assert runtime.stats.requests == 0
        assert weaver.stats.guarded_entries == 0

    def test_selective_still_immunizes_the_hot_deadlock(self):
        history = self._history_from_full_run()
        runtime = DimmunixRuntime(
            DimmunixConfig(yield_timeout=1.0), history=history, name="redeploy"
        )
        weaver = Weaver(runtime, selective=True)
        module = weaver.instrument(HOT_AND_COLD, "app.py")
        log = _provoke(module)
        assert "detected" not in log
        assert sorted(log) == ["ab", "ba"]
        assert runtime.stats.yields >= 1

    def test_empty_history_selects_nothing(self):
        weaver = Weaver(_runtime(), selective=True)
        module = weaver.instrument(HOT_AND_COLD, "app.py")
        assert module.report.sites_instrumented == ()


class TestInstrumentationBlindness:
    """§3.2: only VM/runtime-level interception sees wait() reacquisition."""

    def _run_inversion(self, module) -> None:
        parked = threading.Event()

        def quiet(func):
            def run() -> None:
                try:
                    func(parked)
                except DeadlockDetectedError:
                    pass  # the interception variant raises, by design

            return run

        threads = [
            threading.Thread(target=quiet(module.get("waiter")), daemon=True),
            threading.Thread(target=quiet(module.get("notifier")), daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=8)

    def test_woven_code_misses_wait_reacquisition(self):
        """The weaver instruments all five with-statements, yet the
        deadlock closes inside Condition.wait — and is never detected."""
        weaver = Weaver(_runtime())
        module = weaver.instrument(WAIT_INVERSION, "inv.py")
        self._run_inversion(module)
        assert weaver.runtime.stats.deadlocks_detected == 0

    def test_interception_runtime_sees_it(self):
        """The same source under the platform-wide patch: the patched
        Condition routes the reacquisition through Dimmunix, and the
        cycle is detected."""
        runtime = _runtime()
        with immunized(runtime):
            namespace: dict = {"__name__": "inv-patched"}
            exec(compile(WAIT_INVERSION, "inv.py", "exec"), namespace)

            class _Module:
                def get(self, name):
                    return namespace[name]

            self._run_inversion(_Module())
        assert runtime.stats.deadlocks_detected >= 1
        signature = runtime.detections[0]
        assert len(signature.entries) >= 2
