"""Integration tests for the weaver: woven modules get real immunity."""

import textwrap
import threading

import pytest

from repro.config import DimmunixConfig
from repro.errors import DeadlockDetectedError
from repro.instrument.weaver import Weaver
from repro.runtime.runtime import DimmunixRuntime

COUNTER_MODULE = textwrap.dedent(
    """
    import threading

    lock = threading.Lock()
    count = 0

    def bump():
        global count
        with lock:
            count += 1
        return count

    def read_file_sites(path):
        with open(path) as handle:
            return handle.read()
    """
).strip()

DEADLOCK_MODULE = textwrap.dedent(
    """
    import threading

    lock_a = threading.Lock()
    lock_b = threading.Lock()

    def ab(ready, go):
        with lock_a:
            ready.set()
            go.wait(timeout=0.5)
            with lock_b:
                return "ab"

    def ba(ready, go):
        with lock_b:
            ready.set()
            go.wait(timeout=0.5)
            with lock_a:
                return "ba"
    """
).strip()


def _make_runtime() -> DimmunixRuntime:
    return DimmunixRuntime(
        DimmunixConfig(yield_timeout=1.0), name="weaver-test"
    )


def _race(module, log):
    """Drive ab() and ba() into the AB/BA window deterministically."""
    ready_ab, ready_ba = threading.Event(), threading.Event()
    go = threading.Event()

    def call(func, ready):
        try:
            log.append(func(ready, go))
        except DeadlockDetectedError:
            log.append("detected")

    threads = [
        threading.Thread(target=call, args=(module.get("ab"), ready_ab)),
        threading.Thread(target=call, args=(module.get("ba"), ready_ba)),
    ]
    for thread in threads:
        thread.start()
    assert ready_ab.wait(5) and ready_ba.wait(5)
    go.set()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestBasicWeaving:
    def test_woven_module_runs(self):
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(COUNTER_MODULE, "counter.py")
        assert module.get("bump")() == 1
        assert module.get("bump")() == 2

    def test_lock_acquisitions_reach_the_core(self):
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(COUNTER_MODULE, "counter.py")
        module.get("bump")()
        stats = weaver.runtime.stats
        assert stats.requests == 1
        assert stats.acquisitions == 1
        assert stats.releases == 1
        assert weaver.stats.guarded_entries == 1
        assert weaver.tracked_locks == 1

    def test_non_lock_context_managers_pass_through(self, tmp_path):
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(COUNTER_MODULE, "counter.py")
        path = tmp_path / "data.txt"
        path.write_text("payload")
        assert module.get("read_file_sites")(str(path)) == "payload"
        assert weaver.stats.passthrough_entries == 1
        assert weaver.runtime.stats.requests == 0

    def test_positions_are_static_source_lines(self):
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(COUNTER_MODULE, "counter.py")
        module.get("bump")()
        # Exactly one position, at counter.py's `with lock:` line.
        positions = list(weaver.runtime.core.positions)
        assert len(positions) == 1
        (file, line), = positions[0].key
        assert file == "counter.py"
        assert COUNTER_MODULE.splitlines()[line - 1].strip() == "with lock:"

    def test_attribute_access_helpers(self):
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(COUNTER_MODULE, "counter.py")
        assert module.bump is module.get("bump")
        with pytest.raises(AttributeError):
            module.get("missing")

    def test_rlock_reentrancy_is_free(self):
        source = textwrap.dedent(
            """
            import threading
            rlock = threading.RLock()

            def nested():
                with rlock:
                    with rlock:
                        return "ok"
            """
        ).strip()
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(source, "re.py")
        assert module.get("nested")() == "ok"
        assert weaver.stats.guarded_entries == 1
        assert weaver.stats.reentrant_entries == 1
        assert weaver.runtime.stats.requests == 1


class TestWovenImmunity:
    def test_deadlock_detected_then_avoided(self):
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(DEADLOCK_MODULE, "dead.py")

        log: list = []
        _race(module, log)
        assert "detected" in log
        assert weaver.runtime.stats.deadlocks_detected == 1
        assert len(weaver.runtime.history) == 1

        # Same process, same (static) positions: round 2 avoids.
        log = []
        _race(module, log)
        assert "detected" not in log
        assert sorted(log) == ["ab", "ba"]
        assert weaver.runtime.stats.deadlocks_detected == 1
        assert weaver.runtime.stats.yields >= 1

    def test_signature_names_original_lines(self):
        weaver = Weaver(_make_runtime())
        module = weaver.instrument(DEADLOCK_MODULE, "dead.py")
        _race(module, [])
        signature = next(iter(weaver.runtime.history))
        inner_lines = {
            key[0][1] for key in signature.outer_position_keys()
        }
        outer_with_lines = {
            index + 1
            for index, line in enumerate(DEADLOCK_MODULE.splitlines())
            if line.strip() in ("with lock_a:", "with lock_b:")
        }
        assert inner_lines <= outer_with_lines


class TestMultiModuleWeaving:
    def test_two_modules_share_one_runtime(self):
        weaver = Weaver(_make_runtime())
        first = weaver.instrument(COUNTER_MODULE, "first.py")
        second = weaver.instrument(COUNTER_MODULE, "second.py")
        first.get("bump")()
        second.get("bump")()
        assert weaver.runtime.stats.acquisitions == 2
        assert weaver.site_count == 4  # 2 sites per module copy
        files = {key[0][0] for key in
                 (pos.key for pos in weaver.runtime.core.positions)}
        assert files == {"first.py", "second.py"}
