"""Unit tests for the AST guard injection."""

import ast
import textwrap

from repro.instrument.rewriter import (
    GUARD_NAME,
    instrument_source,
)
from repro.instrument.sites import selector_from_keys

SOURCE = textwrap.dedent(
    """
    import threading

    lock = threading.Lock()
    other = threading.Lock()

    def use_lock():
        with lock:
            return "locked"

    def use_other():
        with other as token:
            return token

    def use_file(path):
        with open(path) as handle:
            return handle.read()
    """
).strip()


def _guard_calls(tree: ast.Module) -> list[ast.Call]:
    calls = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == GUARD_NAME
        ):
            calls.append(node)
    return calls


class TestInstrumentSource:
    def test_full_instrumentation_guards_every_with(self):
        tree, report = instrument_source(SOURCE, "m.py")
        assert len(_guard_calls(tree)) == 3
        assert len(report.sites_found) == 3
        assert len(report.sites_instrumented) == 3
        assert report.selectivity == 1.0

    def test_site_indices_are_sequential(self):
        tree, _report = instrument_source(SOURCE, "m.py")
        indices = sorted(
            call.args[1].value for call in _guard_calls(tree)
        )
        assert indices == [0, 1, 2]

    def test_selective_leaves_other_sites_untouched(self):
        sites = instrument_source(SOURCE, "m.py")[1].sites_found
        lock_site = next(s for s in sites if s.expression == "lock")
        tree, report = instrument_source(
            SOURCE, "m.py", selector_from_keys([lock_site.key()])
        )
        assert len(_guard_calls(tree)) == 1
        assert len(report.sites_instrumented) == 1
        assert report.sites_instrumented[0].expression == "lock"
        assert 0 < report.selectivity < 1

    def test_original_expression_preserved_as_argument(self):
        tree, _report = instrument_source(SOURCE, "m.py")
        wrapped = {ast.unparse(call.args[0]) for call in _guard_calls(tree)}
        assert wrapped == {"lock", "other", "open(path)"}

    def test_optional_vars_kept(self):
        tree, _report = instrument_source(SOURCE, "m.py")
        as_names = [
            item.optional_vars.id
            for node in ast.walk(tree)
            if isinstance(node, ast.With)
            for item in node.items
            if item.optional_vars is not None
        ]
        assert sorted(as_names) == ["handle", "token"]

    def test_line_numbers_survive(self):
        """Positions in signatures must match the original source."""
        original = ast.parse(SOURCE, "m.py")
        original_lines = [
            item.context_expr.lineno
            for node in ast.walk(original)
            if isinstance(node, ast.With)
            for item in node.items
        ]
        _tree, report = instrument_source(SOURCE, "m.py")
        assert sorted(s.line for s in report.sites_instrumented) == sorted(
            original_lines
        )

    def test_rewritten_tree_compiles(self):
        tree, _report = instrument_source(SOURCE, "m.py")
        compile(tree, "m.py", "exec")

    def test_report_summary_readable(self):
        _tree, report = instrument_source(SOURCE, "m.py")
        assert "3/3 sites" in report.summary()
