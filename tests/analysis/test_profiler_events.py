"""SyncProfiler as an event-stream subscriber (no VM hook needed)."""

from __future__ import annotations

import pytest

from repro.analysis.profiler import SyncProfiler
from repro.api import immunity
from repro.dalvik.program import ProgramBuilder


def looping_program(iterations: int) -> object:
    builder = ProgramBuilder("Loop.java")
    builder.set_reg("i", iterations)
    builder.label("loop")
    builder.monitor_enter("obj", line=10)
    builder.compute(3, line=11)
    builder.monitor_exit("obj", line=12)
    builder.loop_dec("i", "loop")
    builder.halt()
    return builder.build()


class TestProfilerOnEventStream:
    def test_acquired_events_land_in_virtual_time_buckets(self):
        with immunity(yield_timeout=None, name="prof") as dx:
            vm = dx.vm(name="app", ticks_per_second=1000)
            profiler = SyncProfiler(ticks_per_second=1000, bucket_seconds=0.1)
            handle = profiler.attach_events(dx.events, source="app")
            vm.spawn(looping_program(40), "worker")
            vm.run()
            assert profiler.total_events == 40
            assert profiler.total_events == vm.core.stats.acquisitions
            assert sum(profiler.bucket_counts) == 40
            assert profiler.busiest_threads() == [("worker", 40)]
            assert profiler.peak_window(0.2).total_events > 0
            dx.events.unsubscribe(handle)

    def test_source_filter_separates_adapters(self):
        with immunity(yield_timeout=None, name="prof2") as dx:
            vm_a = dx.vm(name="a", ticks_per_second=1000)
            vm_b = dx.vm(name="b", ticks_per_second=1000)
            only_a = SyncProfiler(ticks_per_second=1000, bucket_seconds=0.1)
            both = SyncProfiler(ticks_per_second=1000, bucket_seconds=0.1)
            only_a.attach_events(dx.events, source="a")
            both.attach_events(dx.events)
            vm_a.spawn(looping_program(10), "wa")
            vm_b.spawn(looping_program(5), "wb")
            vm_a.run()
            vm_b.run()
            assert only_a.total_events == 10
            assert both.total_events == 15

    def test_wall_clock_source_is_normalized_to_first_event(self):
        """A runtime stamps time.monotonic(): buckets must start at the
        first event, not allocate back to the machine's boot time."""
        from tests.conftest import make_runtime

        runtime = make_runtime()
        profiler = SyncProfiler(ticks_per_second=1, bucket_seconds=1.0)
        profiler.attach_events(runtime.events)
        lock = runtime.lock("l")
        for _ in range(3):
            with lock:
                pass
        assert profiler.total_events == 3
        # All three land within seconds of the origin — a handful of
        # buckets, not millions of empty leading ones.
        assert len(profiler.bucket_counts) <= 2
        assert sum(profiler.bucket_counts) == 3

    def test_sub_second_buckets_keep_wall_clock_resolution(self):
        """Fractional ts deltas must not collapse into 1 s buckets."""
        from repro.core.events import AcquiredEvent, EventBus

        bus = EventBus()
        profiler = SyncProfiler(ticks_per_second=1, bucket_seconds=0.5)
        profiler.attach_events(bus)
        for ts in (100.0, 100.6, 101.2):  # origin-normalized: 0, 0.6, 1.2
            bus.publish(AcquiredEvent(source="rt", ts=ts, thread="t", lock="l"))
        assert profiler.bucket_counts == (1, 1, 1)
        assert profiler.duration_seconds() == pytest.approx(1.5)
        assert profiler.overall_rate() == pytest.approx(2.0)

    def test_legacy_vm_hook_still_works(self):
        with immunity(yield_timeout=None, name="prof3") as dx:
            vm = dx.vm(name="legacy", ticks_per_second=1000)
            profiler = SyncProfiler(
                ticks_per_second=1000, bucket_seconds=0.1
            ).attach(vm)
            vm.spawn(looping_program(7), "worker")
            vm.run()
            assert profiler.total_events == 7
