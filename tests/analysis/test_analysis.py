"""Tests for windows, profiler, tables, and experiment records."""

import json

import pytest

from repro.analysis.profiler import SyncProfiler
from repro.analysis.report import ExperimentRecord, emit, within_factor
from repro.analysis.tables import format_mb, format_pct, render_table
from repro.analysis.windows import peak_window


class TestPeakWindow:
    def test_picks_densest_interval(self):
        counts = [1, 1, 10, 10, 10, 1, 1]
        window = peak_window(counts, bucket_seconds=1.0, window_seconds=3.0)
        assert (window.start_index, window.end_index) == (2, 5)
        assert window.rate == pytest.approx(10.0)

    def test_short_trace_uses_everything(self):
        counts = [5, 5]
        window = peak_window(counts, 1.0, 30.0)
        assert window.total_events == 10
        assert window.seconds == 2.0

    def test_empty_counts(self):
        window = peak_window([], 1.0, 3.0)
        assert window.total_events == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_window([1], 0, 3)
        with pytest.raises(ValueError):
            peak_window([1], 1, 0)

    def test_tie_prefers_earliest(self):
        counts = [5, 5, 0, 5, 5]
        window = peak_window(counts, 1.0, 2.0)
        assert window.start_index == 0


class TestSyncProfiler:
    def test_bucketing(self):
        profiler = SyncProfiler(ticks_per_second=100, bucket_seconds=1.0)

        class FakeThread:
            name = "w"

        thread = FakeThread()
        for tick in (0, 10, 150, 250, 260):
            profiler.on_sync(tick, thread)
        assert profiler.bucket_counts == (2, 1, 2)
        assert profiler.total_events == 5
        assert profiler.overall_rate() == pytest.approx(5 / 3)

    def test_peak_window_from_profile(self):
        profiler = SyncProfiler(ticks_per_second=100, bucket_seconds=1.0)

        class FakeThread:
            name = "w"

        for tick in range(100, 200, 10):
            profiler.on_sync(tick, FakeThread())
        window = profiler.peak_window(1.0)
        assert window.rate == pytest.approx(10.0)

    def test_attach_to_vm(self):
        from repro.dalvik.program import ProgramBuilder
        from repro.dalvik.vm import DalvikVM, VMConfig

        builder = ProgramBuilder("P.java")
        builder.set_reg("i", 5)
        builder.label("l")
        builder.monitor_enter("x", line=3)
        builder.monitor_exit("x", line=4)
        builder.loop_dec("i", "l")
        builder.halt()
        vm = DalvikVM(VMConfig().vanilla())
        profiler = SyncProfiler(vm.config.ticks_per_second).attach(vm)
        vm.spawn(builder.build())
        vm.run()
        assert profiler.total_events == 5
        assert profiler.busiest_threads()[0][1] == 5


class TestTables:
    def test_render_alignment(self):
        table = render_table(
            ["App", "Rate"], [["Email", 1952], ["Camera", 309]], title="T1"
        )
        lines = table.splitlines()
        assert lines[0] == "T1"
        assert set(lines[2]) <= {"-", " "}  # separator under the header
        assert "Email" in lines[3]
        assert lines[3].index("1952") == lines[4].index(" 309")

    def test_format_helpers(self):
        assert format_mb(1024 * 1024) == "1.0 MB"
        assert format_pct(0.0453) == "4.5%"


class TestExperimentRecord:
    def test_render_marks_status(self):
        record = ExperimentRecord("E1", "overhead", "4-5%", "4.4%", True)
        assert "[OK ]" in record.render()
        bad = ExperimentRecord("E1", "overhead", "4-5%", "40%", False)
        assert "[DIFF]" in bad.render()

    def test_emit_appends_jsonl(self, tmp_path, capsys):
        path = tmp_path / "results.jsonl"
        emit(ExperimentRecord("T1", "row", "a", "b", True), path)
        emit(ExperimentRecord("T2", "row", "c", "d", False), path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["experiment_id"] == "T1"
        captured = capsys.readouterr()
        assert "T1" in captured.out

    def test_within_factor(self):
        assert within_factor(10, 10, 1.5)
        assert within_factor(14, 10, 1.5)
        assert not within_factor(16, 10, 1.5)
        assert within_factor(7, 10, 1.5)
        assert not within_factor(6, 10, 1.5)
        assert within_factor(0, 0, 2)
        assert not within_factor(-1, 10, 2)
