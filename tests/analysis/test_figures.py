"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.figures import Series, render_figure


class TestSeries:
    def test_of_builds_points(self):
        series = Series.of("s", [1, 2, 3], [10, 20, 30])
        assert series.points == ((1, 10), (2, 20), (3, 30))

    def test_of_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="2 x-values vs 3"):
            Series.of("s", [1, 2], [1, 2, 3])


class TestRenderFigure:
    def test_contains_markers_and_bounds(self):
        figure = render_figure(
            [Series.of("overhead", [2, 8, 32], [4.3, 4.4, 4.6])],
            title="E1",
            height=8,
        )
        lines = figure.splitlines()
        assert lines[0] == "E1"
        assert "4.60" in figure and "4.30" in figure
        assert figure.count("*") == 3

    def test_flat_series_does_not_divide_by_zero(self):
        figure = render_figure([Series.of("flat", [1, 2], [5, 5])])
        assert "*" in figure

    def test_two_series_get_distinct_markers_and_legend(self):
        figure = render_figure(
            [
                Series.of("vanilla", [1, 2], [100, 100]),
                Series.of("dimmunix", [1, 2], [95, 94]),
            ]
        )
        assert "*" in figure and "o" in figure
        assert "vanilla" in figure and "dimmunix" in figure

    def test_monotone_series_rows_are_ordered(self):
        """Higher y must land on an earlier (higher) row."""
        figure = render_figure(
            [Series.of("s", [1, 2, 3], [1.0, 2.0, 3.0])], height=9, width=30
        )
        rows = [
            index
            for index, line in enumerate(figure.splitlines())
            if "*" in line
        ]
        assert rows == sorted(rows)
        first_line = figure.splitlines()[rows[0]]
        last_line = figure.splitlines()[rows[-1]]
        # y=3 (max) is plotted on the top-most marked row, at the right.
        assert first_line.rindex("*") > last_line.rindex("*")

    def test_x_ticks_rendered(self):
        figure = render_figure(
            [Series.of("s", [2, 8, 512], [1, 2, 3])], width=40
        )
        assert "2" in figure.splitlines()[-1]
        assert "512" in figure.splitlines()[-1]

    def test_empty_series(self):
        assert "(no data)" in render_figure([], title="empty")

    def test_explicit_y_bounds(self):
        figure = render_figure(
            [Series.of("s", [1, 2], [4.0, 5.0])], y_min=0.0, y_max=10.0
        )
        assert "10.00" in figure and "0.00" in figure
