"""Fast-path exit coverage: a position that goes hot mid-run demotes.

Three ways a fast-path-certified position can become history-hot while
the process runs — a local detection recording its signature, a fleet
pull through the SyncPump, and a predictive-immunity seed — and in every
case the very next acquire at that site must abandon the fast path and
take the exact glock'd avoidance section.
"""

from __future__ import annotations

import threading
import time

from repro.core.callstack import CallStack
from repro.core.history import open_history
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.errors import DeadlockDetectedError
from repro.fleet.pump import SyncPump
from tests.conftest import make_runtime


def _hold_a(lock_a, inner=None):
    """The instrumented site under test: its ``with`` line is the outer
    position both for warm-up grabs and for the deadlock's signature."""
    with lock_a:
        if inner is not None:
            inner()


def _capture_one_position(runtime, grab) -> tuple:
    """The position key the runtime records for ``grab()``'s acquire."""
    keys: list[tuple] = []
    subscription = runtime.subscribe(
        lambda event: keys.append(event.position), kinds=("request",)
    )
    grab()
    runtime.unsubscribe(subscription)
    assert len(keys) == 1
    return keys[0]


def _signature_over(key: tuple) -> DeadlockSignature:
    """An AB/BA-shaped signature whose first outer position is ``key``."""
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single(*key[0]), CallStack.single("peer.py", 2)
            ),
            SignatureEntry(
                CallStack.single("peer.py", 10),
                CallStack.single("peer.py", 11),
            ),
        ]
    )


def test_detection_demotes_and_run_two_avoids():
    runtime = make_runtime()
    lock_a = runtime.lock("A")
    lock_b = runtime.lock("B")

    # Warm the site: uncontended, history-cold, so the fast path books it.
    _hold_a(lock_a)
    assert runtime.stats.fastpath_acquires > 0
    assert runtime.stats.fastpath_demotions == 0

    def _run_pair(rt, a, b) -> dict:
        outcome = {"finished": [], "detected": 0}

        def ab() -> None:
            def inner() -> None:
                time.sleep(0.05)
                with b:
                    outcome["finished"].append("ab")

            try:
                _hold_a(a, inner)
            except DeadlockDetectedError:
                outcome["detected"] += 1

        def ba() -> None:
            try:
                time.sleep(0.02)
                with b:
                    time.sleep(0.06)
                    with a:
                        outcome["finished"].append("ba")
            except DeadlockDetectedError:
                outcome["detected"] += 1

        threads = [
            threading.Thread(target=ab),
            threading.Thread(target=ba),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert all(not thread.is_alive() for thread in threads)
        return outcome

    outcome_one = _run_pair(runtime, lock_a, lock_b)
    assert outcome_one["detected"] == 1
    # Recording the signature demoted the warm outer position on the spot.
    assert runtime.stats.fastpath_demotions >= 1

    # The next grab at the demoted site takes the exact path.
    taken_before = runtime.stats.fastpath_acquires
    _hold_a(lock_a)
    assert runtime.stats.fastpath_acquires == taken_before

    # Run 2 on the shared history: the antibody avoids the deadlock.
    run_two = make_runtime(history=runtime.history)
    outcome_two = _run_pair(run_two, run_two.lock("A"), run_two.lock("B"))
    assert outcome_two["detected"] == 0
    assert sorted(outcome_two["finished"]) == ["ab", "ba"]
    assert run_two.stats.avoided_instantiations >= 1


def test_fleet_pull_demotes_warm_position(tmp_path):
    db = tmp_path / "pool.db"
    follower = make_runtime(open_history(f"sqlite://{db}"))
    lock = follower.lock("A")

    key = _capture_one_position(follower, lambda: _hold_a(lock))
    assert follower.stats.fastpath_acquires == 1
    assert not follower.history.contains_position(key)

    # A sibling process earns the antibody and flushes it to the pool.
    sibling = open_history(f"sqlite://{db}")
    sibling.add(_signature_over(key))
    sibling.flush()

    pump = SyncPump(follower.history, follower.events)
    try:
        assert pump.sync_now() >= 1
    finally:
        pump.close()

    # The pull bumped the index epoch: the next fast-path attempt
    # revalidates, finds the position hot, and falls back.
    _hold_a(lock)
    assert follower.stats.fastpath_demotions == 1
    assert follower.stats.fastpath_acquires == 1  # no new fast takes
    assert follower.history.contains_position(key)

    # And the demotion is sticky: further grabs stay on the exact path.
    _hold_a(lock)
    assert follower.stats.fastpath_acquires == 1
    assert follower.stats.fastpath_demotions == 1  # ticked once only

    sibling.close()
    follower.history.close()


def test_predicted_seed_demotes_warm_position():
    runtime = make_runtime()
    lock = runtime.lock("A")

    key = _capture_one_position(runtime, lambda: _hold_a(lock))
    assert runtime.stats.fastpath_acquires == 1

    # The static lint / trace miner seeds the same site predictively.
    assert runtime.history.add_predicted(
        _signature_over(key), origin="lint"
    )

    _hold_a(lock)
    assert runtime.stats.fastpath_demotions == 1
    assert runtime.stats.fastpath_acquires == 1
    assert runtime.history.contains_position(key)
