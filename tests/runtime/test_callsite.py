"""Unit tests for call-site capture and static ids."""

from repro.core.callstack import CallStack
from repro.runtime.callsite import (
    StaticSiteRegistry,
    capture_stack,
    resolve_stack,
)


def _capture_here(depth=1):
    return capture_stack(depth)


class TestCaptureStack:
    def test_position_is_caller_line(self):
        stack = _capture_here()
        frame = stack.top()
        assert frame.file.endswith("test_callsite.py")
        # The position is the call line inside _capture_here's caller's
        # callee — i.e. the `capture_stack(depth)` line.
        assert frame.function == "_capture_here"

    def test_two_sites_differ(self):
        first = _capture_here()
        second = capture_stack(1)
        assert first.key() != second.key()

    def test_same_site_interned(self):
        stacks = [_capture_here() for _ in range(3)]
        assert stacks[0] is stacks[1] is stacks[2]

    def test_depth_two_includes_caller(self):
        def outer():
            return _capture_here(depth=2)

        stack = outer()
        assert stack.depth == 2
        assert stack.frames[1].function == "outer"

    def test_depth_one_single_frame(self):
        assert _capture_here(depth=1).depth == 1


class TestStaticSiteRegistry:
    def test_stable_stack_per_id(self):
        registry = StaticSiteRegistry()
        a = registry.stack_for(7)
        b = registry.stack_for(7)
        assert a is b
        assert len(registry) == 1

    def test_distinct_ids_distinct_positions(self):
        registry = StaticSiteRegistry()
        assert registry.stack_for(1).key() != registry.stack_for(2).key()

    def test_namespace_in_key(self):
        registry = StaticSiteRegistry(namespace="appx")
        file, _line = registry.stack_for(3).top().key()
        assert file == "<appx>"


class TestResolveStack:
    def test_prefers_static_id(self):
        registry = StaticSiteRegistry()
        stack = resolve_stack(1, site_id=5, registry=registry)
        assert stack is registry.stack_for(5)

    def test_falls_back_to_capture(self):
        stack = resolve_stack(1, site_id=None, registry=None)
        assert isinstance(stack, CallStack)
        assert stack.top().file.endswith("test_callsite.py")
