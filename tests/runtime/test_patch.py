"""Unit tests for the platform-wide monkey-patch."""

import queue
import threading

from repro.runtime import patch
from repro.runtime.condition import DimmunixCondition
from repro.runtime.locks import DimmunixLock, DimmunixRLock
from repro.runtime.runtime import DimmunixRuntime
from tests.conftest import make_runtime


class TestInstallUninstall:
    def test_install_replaces_primitives(self):
        runtime = make_runtime()
        try:
            patch.install(runtime)
            assert isinstance(threading.Lock(), DimmunixLock)
            assert isinstance(threading.RLock(), DimmunixRLock)
            assert isinstance(threading.Condition(), DimmunixCondition)
        finally:
            patch.uninstall()
        assert not isinstance(threading.Lock(), DimmunixLock)

    def test_uninstall_idempotent(self):
        patch.uninstall()
        patch.uninstall()
        assert not patch.is_installed()

    def test_installed_runtime_visible(self):
        runtime = make_runtime()
        try:
            patch.install(runtime)
            assert patch.installed_runtime() is runtime
        finally:
            patch.uninstall()
        assert patch.installed_runtime() is None

    def test_reinstall_rebinds(self):
        first = make_runtime()
        second = make_runtime()
        try:
            patch.install(first)
            patch.install(second)
            lock = threading.Lock()
            assert lock.node is not None
            assert second.core.rag.lock_by_id(lock.node.node_id) is lock.node
        finally:
            patch.uninstall()

    def test_immunized_context_manager(self):
        runtime = make_runtime()
        with patch.immunized(runtime) as active:
            assert active is runtime
            assert patch.is_installed()
        assert not patch.is_installed()

    def test_immunized_nesting_restores_previous(self):
        outer_rt = make_runtime()
        inner_rt = make_runtime()
        with patch.immunized(outer_rt):
            with patch.immunized(inner_rt):
                assert patch.installed_runtime() is inner_rt
            assert patch.installed_runtime() is outer_rt
        assert not patch.is_installed()


class TestPlatformWideBehaviour:
    def test_stdlib_queue_becomes_immunized(self):
        """queue.Queue allocates Lock+Condition at construction; under
        the patch it transparently runs on Dimmunix primitives — the
        platform-wide property, no app change required."""
        runtime = make_runtime()
        with patch.immunized(runtime):
            q = queue.Queue()
            assert isinstance(q.mutex, DimmunixLock)
            results = []

            def consumer():
                results.append(q.get(timeout=5))

            thread = threading.Thread(target=consumer)
            thread.start()
            q.put("payload")
            thread.join(5)
            assert results == ["payload"]
            assert runtime.stats.requests > 0

    def test_unmodified_application_code_gets_immunity(self):
        """Simulates a third-party library creating its own locks."""
        runtime = make_runtime()

        def third_party_library():
            lock_a, lock_b = threading.Lock(), threading.Lock()
            with lock_a:
                with lock_b:
                    return "worked"

        with patch.immunized(runtime):
            assert third_party_library() == "worked"
        assert runtime.stats.acquisitions >= 2

    def test_dimmunix_internals_do_not_recurse(self):
        """Creating runtimes and locks while patched must not loop."""
        with patch.immunized(make_runtime()):
            inner = DimmunixRuntime(name="inner")
            lock = inner.lock("inner-lock")
            with lock:
                pass
