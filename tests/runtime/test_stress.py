"""Concurrency stress on the real-thread runtime.

These are liveness-and-sanity hammers: many threads, nested locks, lock
churn, and histories loaded with live signatures — asserting that the
runtime neither deadlocks itself (its global lock + signature conditions
are internal, and must stay invisible) nor corrupts engine state.
"""

from __future__ import annotations

import random
import threading

from repro.config import DimmunixConfig
from repro.core.history import History
from repro.runtime.runtime import DimmunixRuntime
from repro.workloads.synthetic_sigs import generate_history

JOIN_TIMEOUT = 30.0


def _join_all(threads) -> bool:
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
    return all(not thread.is_alive() for thread in threads)


class TestOrderedNesting:
    def test_many_threads_nested_ordered_locks(self):
        """Ordered nesting can never deadlock; immunity must not break it."""
        runtime = DimmunixRuntime(DimmunixConfig(yield_timeout=1.0))
        locks = [runtime.lock(f"ordered-{i}") for i in range(4)]
        errors: list = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(50):
                    start = rng.randrange(len(locks) - 1)
                    with locks[start]:
                        with locks[start + 1]:
                            pass
            except Exception as error:  # noqa: BLE001 - recorded for assert
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        assert _join_all(threads)
        assert errors == []
        assert runtime.stats.deadlocks_detected == 0
        assert runtime.stats.acquisitions == runtime.stats.releases

    def test_hammer_with_live_history(self):
        """A history whose signatures target the live sites: avoidance
        runs constantly, occasionally parks, and everything still ends."""
        # Build sites whose positions we know, then target them.
        from repro.workloads.microbench import make_acquire_sites

        sites, keys = make_acquire_sites(4)
        history = generate_history(keys, count=16, mode="hot")
        runtime = DimmunixRuntime(
            DimmunixConfig(yield_timeout=0.2), history=history
        )
        locks = [runtime.lock(f"hammer-{i}") for i in range(8)]
        errors: list = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for iteration in range(40):
                    lock = locks[rng.randrange(len(locks))]
                    sites[iteration % len(sites)](lock, 5)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(6)
        ]
        for thread in threads:
            thread.start()
        assert _join_all(threads)
        assert errors == []
        # The hot history made avoidance do real work.
        assert runtime.stats.instantiation_checks > 0
        assert runtime.stats.acquisitions == 6 * 40

    def test_trylock_never_blocks(self):
        runtime = DimmunixRuntime(DimmunixConfig(yield_timeout=5.0))
        lock = runtime.lock("try")
        lock_b = runtime.lock("try-b")
        results: list = []

        def holder() -> None:
            with lock:
                barrier.wait(timeout=5)
                release_gate.wait(timeout=10)

        def trier() -> None:
            barrier.wait(timeout=5)
            results.append(lock.acquire(blocking=False))
            results.append(lock_b.acquire(blocking=False))
            if results[-1]:
                lock_b.release()
            tried.set()

        barrier = threading.Barrier(2)
        release_gate = threading.Event()
        tried = threading.Event()
        threads = [
            threading.Thread(target=holder),
            threading.Thread(target=trier),
        ]
        for thread in threads:
            thread.start()
        # The holder keeps the lock until the trier has tried.
        assert tried.wait(10)
        release_gate.set()
        assert _join_all(threads)
        assert results[0] is False   # held elsewhere: would block
        assert results[1] is True    # free lock: granted immediately


class TestChurn:
    def test_lock_creation_and_discard_churn(self):
        """Creating thousands of short-lived locks must stay bounded."""
        runtime = DimmunixRuntime(DimmunixConfig())
        for round_index in range(20):
            locks = [runtime.lock(f"churn-{round_index}-{i}") for i in range(50)]
            for lock in locks:
                with lock:
                    pass
                runtime.core.lock_destroyed(lock.node)
        snapshot = runtime.core.snapshot()
        assert snapshot.locks == 0
        assert runtime.stats.acquisitions == 20 * 50

    def test_thread_churn_registers_and_forgets(self):
        runtime = DimmunixRuntime(DimmunixConfig())
        lock = runtime.lock("shared")

        def tiny_worker() -> None:
            with lock:
                pass

        for _round in range(10):
            threads = [threading.Thread(target=tiny_worker) for _ in range(10)]
            for thread in threads:
                thread.start()
            assert _join_all(threads)
        # The adapter prunes dead threads opportunistically; at minimum
        # the engine must still be structurally consistent.
        runtime.core.rag.check_invariants()
        assert runtime.stats.acquisitions == 100
