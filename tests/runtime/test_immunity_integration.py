"""Integration tests: the deadlock-once-then-immune property with real
threads, persistence across (simulated) process restarts, and avoidance
liveness."""

import threading
import time

import pytest

from repro.core.history import History
from repro.errors import DeadlockDetectedError
from repro.workloads.scenarios import run_dining_philosophers
from tests.conftest import make_runtime


def opposite_order_workers(runtime, hold_seconds=0.05):
    """Two functions taking two locks in opposite orders.

    Defined once so every runtime run executes the same code positions —
    the property signatures rely on.
    """
    lock_a = runtime.lock("A")
    lock_b = runtime.lock("B")
    outcome = []

    def ab():
        try:
            with lock_a:
                time.sleep(hold_seconds)
                with lock_b:
                    outcome.append("ab")
        except DeadlockDetectedError as error:
            outcome.append(error)

    def ba():
        try:
            with lock_b:
                time.sleep(hold_seconds)
                with lock_a:
                    outcome.append("ba")
        except DeadlockDetectedError as error:
            outcome.append(error)

    return ab, ba, outcome


def run_pair(runtime):
    ab, ba, outcome = opposite_order_workers(runtime)
    threads = [threading.Thread(target=ab), threading.Thread(target=ba)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)
    return outcome


class TestImmunityStory:
    def test_deadlock_once_then_immune(self):
        first_runtime = make_runtime()
        first = run_pair(first_runtime)
        assert any(isinstance(item, DeadlockDetectedError) for item in first)
        assert len(first_runtime.history) == 1

        # "Reboot": same program, fresh runtime, inherited history.
        second_runtime = make_runtime(history=first_runtime.history)
        second = run_pair(second_runtime)
        assert sorted(x for x in second if isinstance(x, str)) == ["ab", "ba"]
        assert len(second_runtime.detections) == 0
        assert second_runtime.stats.yields >= 1

    def test_immunity_survives_disk_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first_runtime = make_runtime(history_path=path)
        run_pair(first_runtime)
        # The write-behind worker persists in the background; the
        # explicit flush is the deterministic shutdown barrier.
        first_runtime.flush_history()
        assert path.exists()

        reloaded = History.load(path)
        second_runtime = make_runtime(history=reloaded)
        second = run_pair(second_runtime)
        assert sorted(x for x in second if isinstance(x, str)) == ["ab", "ba"]
        assert len(second_runtime.detections) == 0

    def test_third_run_still_immune(self):
        runtime_one = make_runtime()
        run_pair(runtime_one)
        history = runtime_one.history
        for _ in range(2):
            runtime_next = make_runtime(history=history)
            outcome = run_pair(runtime_next)
            assert sorted(x for x in outcome if isinstance(x, str)) == [
                "ab",
                "ba",
            ]
            assert len(runtime_next.detections) == 0


class TestDiningPhilosophers:
    def test_table_completes_with_immunity(self):
        runtime = make_runtime(yield_timeout=0.5)
        outcome = run_dining_philosophers(
            runtime, philosophers=4, meals=2, think_seconds=0.002
        )
        assert outcome.completed
        assert outcome.meals_eaten == 8

    def test_second_dinner_avoids_known_deadlocks(self):
        runtime_one = make_runtime(yield_timeout=0.5)
        first = run_dining_philosophers(
            runtime_one, philosophers=4, meals=2, think_seconds=0.002
        )
        assert first.completed
        runtime_two = make_runtime(
            history=runtime_one.history, yield_timeout=0.5
        )
        second = run_dining_philosophers(
            runtime_two, philosophers=4, meals=2, think_seconds=0.002
        )
        assert second.completed
        # With the signatures known up front, dinner #2 never detects the
        # same deadlock again (avoidance may yield, detection stays 0 or
        # finds only *new* cycles not seen in dinner #1).
        repeats = [
            sig
            for sig in runtime_two.detections
            if runtime_one.history.contains(sig)
        ]
        assert repeats == []


class TestAvoidanceLiveness:
    def test_yielding_thread_eventually_proceeds(self):
        """A parked thread is woken by the release and completes."""
        runtime_one = make_runtime()
        run_pair(runtime_one)

        runtime_two = make_runtime(history=runtime_one.history)
        ab, ba, outcome = opposite_order_workers(runtime_two, hold_seconds=0.2)
        threads = [threading.Thread(target=ab), threading.Thread(target=ba)]
        start = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        elapsed = time.monotonic() - start
        assert sorted(x for x in outcome if isinstance(x, str)) == ["ab", "ba"]
        assert elapsed < 8, "avoidance must not stall the workload"
