"""Cap-policy parity on the real-thread scenario pack.

Real signatures have 2–3 entries and match (or refute) in a handful of
steps, so the ``match_step_budget`` must never engage on the existing
scenarios — and therefore ``grant`` and ``weak`` must be
indistinguishable on them: same detections, same immunity, same
counters, zero caps. This is the safety half of the budgeted-matcher
story; the adversarial half (the budget engaging) lives in
tests/core/test_avoidance.py.
"""

from __future__ import annotations

import pytest

from repro.config import MatchCapPolicy
from repro.workloads.scenarios import run_dining_philosophers
from tests.conftest import make_runtime

POLICIES = [MatchCapPolicy.GRANT, MatchCapPolicy.WEAK]


def dine_twice(policy: MatchCapPolicy):
    """One detection run, one immunized run, under the given policy."""
    first = make_runtime(match_cap_policy=policy)
    outcome_one = run_dining_philosophers(first, philosophers=4, meals=2)
    second = make_runtime(
        history=first.history, match_cap_policy=policy
    )
    outcome_two = run_dining_philosophers(second, philosophers=4, meals=2)
    return first, second, outcome_one, outcome_two


@pytest.mark.parametrize("policy", POLICIES)
def test_philosophers_detect_then_avoid_under_either_policy(policy):
    first, second, outcome_one, outcome_two = dine_twice(policy)
    assert outcome_one.completed and outcome_two.completed
    assert outcome_one.deadlocks_detected >= 1
    assert outcome_two.deadlocks_detected == 0
    assert len(second.history) >= 1
    # Real 2-entry signatures never approach the budget.
    assert first.stats.match_caps == 0
    assert second.stats.match_caps == 0
    assert second.stats.weak_fallbacks == 0


def test_policies_give_identical_verdicts_on_real_signatures():
    runs = {
        policy: dine_twice(policy) for policy in POLICIES
    }
    verdicts = {
        policy: (
            outcome_one.completed,
            outcome_one.deadlocks_detected >= 1,
            outcome_two.completed,
            outcome_two.deadlocks_detected,
            sorted(
                signature.canonical_key()
                for signature in second.history
                if signature.kind == "deadlock"
            ),
        )
        for policy, (first, second, outcome_one, outcome_two) in runs.items()
    }
    assert verdicts[MatchCapPolicy.GRANT] == verdicts[MatchCapPolicy.WEAK]
