"""Differential harness: the capture fast path is behavior-invisible.

The fast path (position cache + no-history trylock booking) skips the
glock'd avoidance section for history-cold positions, so its soundness
envelope is pinned the way Weak Deadlock Sets pins the budgeted matcher:
run the same scenario packs with the fast path forced ON and forced OFF
and assert the observable outputs are identical, kind for kind —

* the typed event streams carry the same kind sequence;
* verdicts agree (who finished, who detected, who avoided);
* the recorded signatures have the same shape;
* the lifecycle counters agree exactly (including with *no* subscriber,
  where the fast path elides event construction and bumps counters
  directly).

Both execution domains run the same packs: the threaded runtime and the
asyncio layer.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.errors import DeadlockDetectedError
from tests.aio.conftest import make_aio_runtime
from tests.conftest import make_runtime

LIFECYCLE_KINDS = (
    "request",
    "acquired",
    "release",
    "yield",
    "resume",
    "detection",
)


def _collect_kinds(runtime) -> list:
    kinds: list[str] = []
    runtime.subscribe(
        lambda event: kinds.append(event.kind), kinds=LIFECYCLE_KINDS
    )
    return kinds


def _signature_shape(signature) -> tuple:
    return (
        signature.kind,
        len(signature.entries),
        tuple(
            (len(entry.outer), len(entry.inner))
            for entry in signature.entries
        ),
    )


def _fast_overrides(fast: bool) -> dict:
    return {"position_cache": fast, "fast_path": fast}


# ----------------------------------------------------------------------
# scenario packs
# ----------------------------------------------------------------------

def _run_threaded_pair(runtime) -> dict:
    """The AB/BA opposite-order pair with a sleep-pinned interleaving."""
    lock_a = runtime.lock("A")
    lock_b = runtime.lock("B")
    outcome = {"finished": [], "detected": 0}

    def ab() -> None:
        try:
            with lock_a:
                time.sleep(0.05)
                with lock_b:
                    outcome["finished"].append("ab")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    def ba() -> None:
        try:
            time.sleep(0.02)
            with lock_b:
                time.sleep(0.06)
                with lock_a:
                    outcome["finished"].append("ba")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    threads = [
        threading.Thread(target=ab, name="pair-ab"),
        threading.Thread(target=ba, name="pair-ba"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)
    assert all(not thread.is_alive() for thread in threads)
    return outcome


def _run_threaded_uncontended(runtime, iterations: int = 10) -> None:
    """Single-threaded hot loop: helper nesting, with-blocks, reentrant
    RLock — every acquisition is uncontended and history-cold."""
    lock = runtime.lock("U")
    rlock = runtime.rlock("R")

    def leaf() -> None:
        with lock:
            pass

    def mid() -> None:
        leaf()
        with rlock:
            with rlock:  # recursive: must not re-enter Dimmunix
                pass

    for _ in range(iterations):
        mid()
        lock.acquire()
        lock.release()


def _run_aio_pair(runtime) -> dict:
    lock_a = runtime.lock("A")
    lock_b = runtime.lock("B")
    outcome = {"finished": [], "detected": 0}

    async def ab() -> None:
        try:
            async with lock_a:
                await asyncio.sleep(0)
                async with lock_b:
                    outcome["finished"].append("ab")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    async def ba() -> None:
        try:
            async with lock_b:
                await asyncio.sleep(0)
                async with lock_a:
                    outcome["finished"].append("ba")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    async def drive() -> None:
        await asyncio.gather(
            asyncio.ensure_future(ab()), asyncio.ensure_future(ba())
        )

    asyncio.run(drive())
    return outcome


def _run_aio_uncontended(runtime, iterations: int = 10) -> None:
    async def drive() -> None:
        lock = runtime.lock("U")
        rlock = runtime.rlock("R")

        async def leaf() -> None:
            async with lock:
                pass

        for _ in range(iterations):
            await leaf()
            async with rlock:
                async with rlock:
                    pass
            await lock.acquire()
            lock.release()

    asyncio.run(drive())


# ----------------------------------------------------------------------
# one differential run = the full pack under one fast-path setting
# ----------------------------------------------------------------------

def _threaded_pack(fast: bool) -> dict:
    overrides = _fast_overrides(fast)
    run_one = make_runtime(**overrides)
    kinds_one = _collect_kinds(run_one)
    outcome_one = _run_threaded_pair(run_one)

    run_two = make_runtime(history=run_one.history, **overrides)
    kinds_two = _collect_kinds(run_two)
    outcome_two = _run_threaded_pair(run_two)

    quiet = make_runtime(**overrides)
    kinds_quiet = _collect_kinds(quiet)
    _run_threaded_uncontended(quiet)

    return {
        "kinds": (kinds_one, kinds_two, kinds_quiet),
        "outcomes": (outcome_one, outcome_two),
        "signatures": sorted(
            _signature_shape(sig) for sig in run_one.history
        ),
        "stats": (
            run_one.stats.snapshot(),
            run_two.stats.snapshot(),
            quiet.stats.snapshot(),
        ),
    }


def _aio_pack(fast: bool) -> dict:
    overrides = _fast_overrides(fast)
    run_one = make_aio_runtime(**overrides)
    kinds_one = _collect_kinds(run_one)
    outcome_one = _run_aio_pair(run_one)

    run_two = make_aio_runtime(history=run_one.history, **overrides)
    kinds_two = _collect_kinds(run_two)
    outcome_two = _run_aio_pair(run_two)

    quiet = make_aio_runtime(**overrides)
    kinds_quiet = _collect_kinds(quiet)
    _run_aio_uncontended(quiet)

    return {
        "kinds": (kinds_one, kinds_two, kinds_quiet),
        "outcomes": (outcome_one, outcome_two),
        "signatures": sorted(
            _signature_shape(sig) for sig in run_one.history
        ),
        "stats": (
            run_one.stats.snapshot(),
            run_two.stats.snapshot(),
            quiet.stats.snapshot(),
        ),
    }


# Counters that must agree between fast-on and fast-off runs. The
# fast-path tallies themselves (fastpath_acquires/demotions) and the
# capture-cost timings are *expected* to differ — that is the point.
_PARITY_COUNTERS = (
    "requests",
    "acquisitions",
    "releases",
    "yields",
    "yield_wakeups",
    "deadlocks_detected",
    "starvations_detected",
    "signatures_added",
    "avoided_instantiations",
)


def _assert_pack_parity(fast: dict, slow: dict) -> None:
    assert fast["kinds"] == slow["kinds"]
    assert fast["outcomes"] == slow["outcomes"]
    assert fast["signatures"] == slow["signatures"]
    for fast_stats, slow_stats in zip(fast["stats"], slow["stats"]):
        for counter in _PARITY_COUNTERS:
            assert fast_stats[counter] == slow_stats[counter], counter
    # The differential is meaningful only if the fast side actually
    # took the fast path — and the slow side never did.
    assert fast["stats"][2]["fastpath_acquires"] > 0
    assert all(s["fastpath_acquires"] == 0 for s in slow["stats"])


class TestThreadedFastPathParity:
    def test_pack_parity(self):
        _assert_pack_parity(_threaded_pack(True), _threaded_pack(False))

    def test_pair_verdicts(self):
        pack = _threaded_pack(True)
        outcome_one, outcome_two = pack["outcomes"]
        assert outcome_one["detected"] == 1
        assert outcome_one["finished"] == ["ab"]
        assert outcome_two["detected"] == 0
        assert sorted(outcome_two["finished"]) == ["ab", "ba"]
        # Run 1's detection demoted the fast-path-certified outer
        # positions on the spot; run 2's avoidance ran the exact path.
        assert pack["stats"][0]["fastpath_demotions"] > 0
        assert pack["stats"][1]["yields"] > 0


class TestAioFastPathParity:
    def test_pack_parity(self):
        _assert_pack_parity(_aio_pack(True), _aio_pack(False))

    def test_pair_verdicts(self):
        pack = _aio_pack(True)
        outcome_one, outcome_two = pack["outcomes"]
        assert outcome_one["detected"] == 1
        assert outcome_one["finished"] == ["ab"]
        assert outcome_two["detected"] == 0
        assert sorted(outcome_two["finished"]) == ["ab", "ba"]
        assert pack["stats"][0]["fastpath_demotions"] > 0
        assert pack["stats"][1]["yields"] > 0


class TestUnobservedCounters:
    """With no external subscriber the fast path elides event
    construction entirely; the counters must stay exact anyway."""

    def test_threaded_counters_exact_without_subscriber(self):
        fast = make_runtime(position_cache=True, fast_path=True)
        _run_threaded_uncontended(fast)
        slow = make_runtime(position_cache=False, fast_path=False)
        _run_threaded_uncontended(slow)
        for counter in ("requests", "acquisitions", "releases"):
            assert fast.stats.snapshot()[counter] == (
                slow.stats.snapshot()[counter]
            ), counter
        assert fast.stats.fastpath_acquires > 0
        assert not fast.events.lifecycle_observed

    def test_aio_counters_exact_without_subscriber(self):
        fast = make_aio_runtime(position_cache=True, fast_path=True)
        _run_aio_uncontended(fast)
        slow = make_aio_runtime(position_cache=False, fast_path=False)
        _run_aio_uncontended(slow)
        for counter in ("requests", "acquisitions", "releases"):
            assert fast.stats.snapshot()[counter] == (
                slow.stats.snapshot()[counter]
            ), counter
        assert fast.stats.fastpath_acquires > 0

    def test_subscribing_midway_restores_events(self):
        """The observed flag flips live: events appear from the moment
        a lifecycle subscriber lands, and counters never double-count."""
        runtime = make_runtime(position_cache=True, fast_path=True)
        lock = runtime.lock("L")
        with lock:
            pass
        assert runtime.stats.acquisitions == 1
        kinds = _collect_kinds(runtime)
        assert runtime.events.lifecycle_observed
        with lock:
            pass
        assert kinds == ["request", "acquired", "release"]
        assert runtime.stats.acquisitions == 2
        assert runtime.stats.releases == 2
