"""Unit tests for synchronized blocks/methods and Object.wait helpers."""

import threading
import time

from repro.runtime.runtime import init_runtime
from repro.runtime.synchronized import (
    notify_all_obj,
    synchronized,
    synchronized_method,
    wait_on,
)


class Account:
    def __init__(self):
        self.balance = 0

    @synchronized_method
    def deposit(self, amount):
        current = self.balance
        self.balance = current + amount

    @synchronized_method
    def snapshot(self):
        return self.balance


class TestSynchronizedBlock:
    def test_mutual_exclusion(self, raise_config):
        runtime = init_runtime(raise_config)
        target = object()
        counter = {"value": 0}

        def bump():
            for _ in range(200):
                with synchronized(target, runtime):
                    counter["value"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert counter["value"] == 800

    def test_reentrant_block(self, raise_config):
        runtime = init_runtime(raise_config)
        target = object()
        with synchronized(target, runtime):
            with synchronized(target, runtime):
                pass  # monitors are reentrant, like Java

    def test_monitor_reused_per_object(self, raise_config):
        runtime = init_runtime(raise_config)
        target = object()
        with synchronized(target, runtime) as monitor_a:
            pass
        with synchronized(target, runtime) as monitor_b:
            pass
        assert monitor_a is monitor_b


class TestSynchronizedMethod:
    def test_atomic_deposits(self, raise_config):
        init_runtime(raise_config)
        account = Account()

        def run():
            for _ in range(300):
                account.deposit(1)

        threads = [threading.Thread(target=run) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        assert account.snapshot() == 1200

    def test_static_position_attached(self):
        assert hasattr(Account.deposit, "__dimmunix_position__")
        position = Account.deposit.__dimmunix_position__
        assert position.top().function == "deposit"

    def test_methods_have_distinct_positions(self):
        deposit_pos = Account.deposit.__dimmunix_position__
        snapshot_pos = Account.snapshot.__dimmunix_position__
        assert deposit_pos.key() != snapshot_pos.key()


class TestObjectWait:
    def test_wait_notify_roundtrip(self, raise_config):
        runtime = init_runtime(raise_config)
        mailbox = object()
        received = []

        def consumer():
            with synchronized(mailbox, runtime):
                wait_on(mailbox, timeout=5, runtime=runtime)
                received.append("got it")

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.1)
        with synchronized(mailbox, runtime):
            notify_all_obj(mailbox, runtime)
        thread.join(5)
        assert received == ["got it"]

    def test_wait_timeout(self, raise_config):
        runtime = init_runtime(raise_config)
        thing = object()
        with synchronized(thing, runtime):
            assert wait_on(thing, timeout=0.05, runtime=runtime) is False
