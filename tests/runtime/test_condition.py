"""Unit tests for DimmunixCondition (wait/notify with immunized
reacquisition)."""

import threading
import time

import pytest

from tests.conftest import make_runtime


class TestConditionBasics:
    def test_wait_notify(self, runtime):
        condition = runtime.condition()
        data = []

        def consumer():
            with condition:
                while not data:
                    condition.wait(timeout=2)
                data.append("consumed")

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        with condition:
            data.append("produced")
            condition.notify()
        thread.join(5)
        assert data == ["produced", "consumed"]

    def test_wait_timeout_returns_false(self, runtime):
        condition = runtime.condition()
        with condition:
            assert condition.wait(timeout=0.05) is False

    def test_wait_without_lock_raises(self, runtime):
        condition = runtime.condition()
        with pytest.raises(RuntimeError):
            condition.wait(timeout=0.1)

    def test_notify_without_lock_raises(self, runtime):
        condition = runtime.condition()
        with pytest.raises(RuntimeError):
            condition.notify()

    def test_notify_all_wakes_everyone(self, runtime):
        condition = runtime.condition()
        woken = []
        started = threading.Barrier(4)

        def waiter(index):
            started.wait(timeout=5)
            with condition:
                if condition.wait(timeout=5):
                    woken.append(index)

        threads = [
            threading.Thread(target=waiter, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        started.wait(timeout=5)
        time.sleep(0.1)
        with condition:
            condition.notify_all()
        for thread in threads:
            thread.join(5)
        assert sorted(woken) == [0, 1, 2]

    def test_wait_for_predicate(self, runtime):
        condition = runtime.condition()
        state = {"ready": False}

        def setter():
            time.sleep(0.05)
            with condition:
                state["ready"] = True
                condition.notify()

        thread = threading.Thread(target=setter)
        thread.start()
        with condition:
            assert condition.wait_for(lambda: state["ready"], timeout=5)
        thread.join(5)

    def test_wait_on_rlock_restores_recursion(self, runtime):
        rlock = runtime.rlock("mon")
        condition = runtime.condition(rlock)
        events = []

        def notifier():
            time.sleep(0.05)
            with rlock:
                condition.notify()

        thread = threading.Thread(target=notifier)
        with rlock:
            with rlock:  # recursion depth 2
                thread.start()
                assert condition.wait(timeout=5)
                assert rlock._count == 2
                events.append("done")
        thread.join(5)
        assert events == ["done"]

    def test_needs_lock_or_runtime(self):
        from repro.runtime.condition import DimmunixCondition

        with pytest.raises(ValueError):
            DimmunixCondition()

    def test_reacquisition_goes_through_engine(self, runtime):
        """The §3.2 point: the post-wait reacquire is a Dimmunix request."""
        condition = runtime.condition()
        requests_during_wait = []

        def waiter():
            with condition:
                before = runtime.stats.requests
                condition.wait(timeout=0.05)  # times out, reacquires
                requests_during_wait.append(runtime.stats.requests - before)

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(5)
        assert requests_during_wait == [1]


class TestDetectionDuringReacquire:
    def test_detection_at_reacquisition_propagates_cleanly(self, runtime):
        """§3.2 under RAISE: an inversion detected at wait()'s monitor
        reacquisition surfaces as DeadlockDetectedError — the enclosing
        ``with`` must not mask it by releasing the unheld monitor."""
        from repro.errors import DeadlockDetectedError

        outer = runtime.lock("outer-L")
        condition = runtime.condition()
        outcome = {}
        monitor_taken = threading.Event()

        def waiter():
            outer.acquire()
            try:
                with condition:
                    # Release the monitor, park until the timeout, then
                    # reacquire — closing the cycle with peer.
                    condition.wait(timeout=0.3)
            except DeadlockDetectedError:
                outcome["waiter"] = "detected"
            finally:
                outer.release()

        def peer():
            with condition:
                monitor_taken.set()
                with outer:
                    outcome["peer"] = "ok"

        waiter_thread = threading.Thread(target=waiter, name="inv-waiter")
        peer_thread = threading.Thread(target=peer, name="inv-peer")
        waiter_thread.start()
        time.sleep(0.1)  # waiter is parked in wait(), monitor free
        peer_thread.start()
        assert monitor_taken.wait(5)
        waiter_thread.join(10)
        peer_thread.join(10)
        assert not waiter_thread.is_alive() and not peer_thread.is_alive()
        assert outcome == {"waiter": "detected", "peer": "ok"}
        assert len(runtime.history) == 1


class TestLockSpellingReacquireLoss:
    def test_with_lock_spelling_also_skips_phantom_release(self, runtime):
        """The lost-monitor marker lives on the *lock*, so the
        ``with x:`` + ``Condition(x)`` spelling surfaces the detection
        too — not a RuntimeError from releasing the unheld monitor."""
        from repro.errors import DeadlockDetectedError

        outer = runtime.lock("outer-L")
        monitor = runtime.rlock("monitor-x")
        condition = runtime.condition(monitor)
        outcome = {}
        monitor_taken = threading.Event()

        def waiter():
            outer.acquire()
            try:
                with monitor:  # the lock's own context manager
                    condition.wait(timeout=0.3)
            except DeadlockDetectedError:
                outcome["waiter"] = "detected"
            finally:
                outer.release()

        def peer():
            with monitor:
                monitor_taken.set()
                with outer:
                    outcome["peer"] = "ok"

        waiter_thread = threading.Thread(target=waiter, name="spell-waiter")
        peer_thread = threading.Thread(target=peer, name="spell-peer")
        waiter_thread.start()
        time.sleep(0.1)
        peer_thread.start()
        assert monitor_taken.wait(5)
        waiter_thread.join(10)
        peer_thread.join(10)
        assert not waiter_thread.is_alive() and not peer_thread.is_alive()
        assert outcome == {"waiter": "detected", "peer": "ok"}


class TestBreakPolicyReacquireDenial:
    def test_break_denial_surfaces_instead_of_corrupting(self):
        """Under BREAK a denied reacquisition cannot return normally
        (the monitor would be unheld behind wait()'s back): it surfaces
        as DeadlockDetectedError and the monitor is marked lost."""
        from repro.config import DetectionPolicy
        from repro.errors import DeadlockDetectedError

        runtime = make_runtime(detection_policy=DetectionPolicy.BREAK)
        outer = runtime.lock("outer-L")
        condition = runtime.condition()
        outcome = {}

        def waiter():
            outer.acquire()
            try:
                with condition:
                    condition.wait(timeout=0.3)
                    outcome["waiter"] = "returned"
            except DeadlockDetectedError as error:
                outcome["waiter"] = "denied"
                assert "reacquisition denied" in str(error)
            finally:
                outer.release()

        def peer():
            with condition:
                with outer:
                    outcome["peer"] = "ok"

        waiter_thread = threading.Thread(target=waiter, name="brk-waiter")
        peer_thread = threading.Thread(target=peer, name="brk-peer")
        waiter_thread.start()
        time.sleep(0.1)
        peer_thread.start()
        waiter_thread.join(10)
        peer_thread.join(10)
        assert not waiter_thread.is_alive() and not peer_thread.is_alive()
        assert outcome == {"waiter": "denied", "peer": "ok"}


class TestLostRestoreMarker:
    def test_direct_acquire_clears_stale_marker(self, runtime):
        """A thread recovering from a lost reacquisition by calling
        acquire() directly must get normal release semantics back —
        the stale marker must not make a later exit skip a release."""
        import threading as _threading

        for lock in (runtime.lock("m1"), runtime.rlock("m2")):
            lock._lost_restore.mark(_threading.get_ident())
            assert lock.acquire()
            lock.__exit__(None, None, None)  # must release, not skip
            assert not lock.locked()

    def test_raw_lock_rejected_as_monitor(self, runtime):
        import threading as _threading

        with pytest.raises(TypeError, match="immunized monitor"):
            runtime.condition(_threading.Lock())

    def test_nested_monitor_exits_all_skip_after_lost_reacquire(
        self, runtime
    ):
        """One lost reacquisition must make *every* nested ``with`` exit
        skip its release — the marker is sticky until the next acquire,
        or the outer exit raises RuntimeError and masks the detection."""
        from repro.errors import DeadlockDetectedError

        outer = runtime.lock("outer-L")
        monitor = runtime.rlock("nested-monitor")
        condition = runtime.condition(monitor)
        outcome = {}
        monitor_taken = threading.Event()

        def waiter():
            outer.acquire()
            try:
                with monitor:
                    with monitor:  # depth 2: two exits will unwind
                        condition.wait(timeout=0.3)
            except DeadlockDetectedError:
                outcome["waiter"] = "detected"
            except RuntimeError as error:  # pragma: no cover - regression
                outcome["waiter"] = f"masked: {error}"
            finally:
                outer.release()

        def peer():
            with monitor:
                monitor_taken.set()
                with outer:
                    outcome["peer"] = "ok"

        waiter_thread = threading.Thread(target=waiter, name="nest-waiter")
        peer_thread = threading.Thread(target=peer, name="nest-peer")
        waiter_thread.start()
        time.sleep(0.1)
        peer_thread.start()
        assert monitor_taken.wait(5)
        waiter_thread.join(10)
        peer_thread.join(10)
        assert not waiter_thread.is_alive() and not peer_thread.is_alive()
        assert outcome == {"waiter": "detected", "peer": "ok"}


class TestNegativeTimeoutClamp:
    """Regression: a non-positive timeout must poll, never park.

    A ``wait_for`` loop computes ``wait_time = deadline - now``; once the
    deadline slips past, the remainder is negative. Passed raw into
    ``lock.acquire(True, timeout)`` a ``-1`` means *wait forever* (and
    other negatives raise), so ``wait`` must clamp to one non-blocking
    try — CPython's own semantics.
    """

    def test_negative_timeout_returns_promptly(self, runtime):
        condition = runtime.condition()
        with condition:
            started = time.monotonic()
            assert condition.wait(timeout=-1) is False
            assert condition.wait(timeout=-0.5) is False
            assert condition.wait(timeout=0) is False
            assert time.monotonic() - started < 1.0

    def test_negative_timeout_consumes_pending_notify(self, runtime):
        """The poll still observes a notify that already arrived."""
        condition = runtime.condition()
        woken = []

        def waiter():
            with condition:
                woken.append(condition.wait(timeout=5))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        with condition:
            condition.notify()
        thread.join(5)
        assert woken == [True]

    def test_wait_for_with_expired_deadline(self, runtime):
        condition = runtime.condition()
        with condition:
            assert condition.wait_for(lambda: True, timeout=-5) is True
            started = time.monotonic()
            assert condition.wait_for(lambda: False, timeout=-5) is False
            assert time.monotonic() - started < 1.0
