"""Unit tests for DimmunixCondition (wait/notify with immunized
reacquisition)."""

import threading
import time

import pytest

from tests.conftest import make_runtime


class TestConditionBasics:
    def test_wait_notify(self, runtime):
        condition = runtime.condition()
        data = []

        def consumer():
            with condition:
                while not data:
                    condition.wait(timeout=2)
                data.append("consumed")

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        with condition:
            data.append("produced")
            condition.notify()
        thread.join(5)
        assert data == ["produced", "consumed"]

    def test_wait_timeout_returns_false(self, runtime):
        condition = runtime.condition()
        with condition:
            assert condition.wait(timeout=0.05) is False

    def test_wait_without_lock_raises(self, runtime):
        condition = runtime.condition()
        with pytest.raises(RuntimeError):
            condition.wait(timeout=0.1)

    def test_notify_without_lock_raises(self, runtime):
        condition = runtime.condition()
        with pytest.raises(RuntimeError):
            condition.notify()

    def test_notify_all_wakes_everyone(self, runtime):
        condition = runtime.condition()
        woken = []
        started = threading.Barrier(4)

        def waiter(index):
            started.wait(timeout=5)
            with condition:
                if condition.wait(timeout=5):
                    woken.append(index)

        threads = [
            threading.Thread(target=waiter, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        started.wait(timeout=5)
        time.sleep(0.1)
        with condition:
            condition.notify_all()
        for thread in threads:
            thread.join(5)
        assert sorted(woken) == [0, 1, 2]

    def test_wait_for_predicate(self, runtime):
        condition = runtime.condition()
        state = {"ready": False}

        def setter():
            time.sleep(0.05)
            with condition:
                state["ready"] = True
                condition.notify()

        thread = threading.Thread(target=setter)
        thread.start()
        with condition:
            assert condition.wait_for(lambda: state["ready"], timeout=5)
        thread.join(5)

    def test_wait_on_rlock_restores_recursion(self, runtime):
        rlock = runtime.rlock("mon")
        condition = runtime.condition(rlock)
        events = []

        def notifier():
            time.sleep(0.05)
            with rlock:
                condition.notify()

        thread = threading.Thread(target=notifier)
        with rlock:
            with rlock:  # recursion depth 2
                thread.start()
                assert condition.wait(timeout=5)
                assert rlock._count == 2
                events.append("done")
        thread.join(5)
        assert events == ["done"]

    def test_needs_lock_or_runtime(self):
        from repro.runtime.condition import DimmunixCondition

        with pytest.raises(ValueError):
            DimmunixCondition()

    def test_reacquisition_goes_through_engine(self, runtime):
        """The §3.2 point: the post-wait reacquire is a Dimmunix request."""
        condition = runtime.condition()
        requests_during_wait = []

        def waiter():
            with condition:
                before = runtime.stats.requests
                condition.wait(timeout=0.05)  # times out, reacquires
                requests_during_wait.append(runtime.stats.requests - before)

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(5)
        assert requests_during_wait == [1]
