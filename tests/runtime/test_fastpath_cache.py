"""Property tests for the (code, lasti) position cache.

The cache must be a pure memo: for every call shape the cached capture
resolves exactly the position the uncached frame walk resolves, and a
dead (or recycled) code object can never serve a stale entry.
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import os
import sys
import textwrap

from hypothesis import given, settings, strategies as st

from repro.runtime import callsite
from tests.aio.conftest import make_aio_runtime
from tests.conftest import make_runtime


def _acquired_positions(runtime) -> list:
    # AcquiredEvent carries no position; the request event of an
    # uncontended acquire does, and fires exactly once per acquisition
    # in these single-thread programs.
    keys: list[tuple] = []
    runtime.subscribe(
        lambda event: keys.append(event.position), kinds=("request",)
    )
    return keys


# ----------------------------------------------------------------------
# the randomized call shapes (threaded)
# ----------------------------------------------------------------------

def _op_direct(runtime, locks) -> None:
    locks["plain"].acquire()
    locks["plain"].release()


def _op_with(runtime, locks) -> None:
    with locks["plain"]:
        pass


def _op_helper(runtime, locks) -> None:
    def leaf() -> None:
        with locks["plain"]:
            pass

    def mid() -> None:
        leaf()

    mid()


def _op_rlock(runtime, locks) -> None:
    with locks["rlock"]:
        with locks["rlock"]:
            pass


def _op_cond_wait(runtime, locks) -> None:
    cond = locks["cond"]
    with cond:
        # Timed wait with no notifier: releases, times out, reacquires —
        # the reacquire is a capture the cache must get right too.
        cond.wait(timeout=0.01)


@contextlib.contextmanager
def _managed(lock):
    with lock:
        yield


def _op_contextmanager(runtime, locks) -> None:
    with _managed(locks["plain"]):
        pass


_OPS = {
    "direct": _op_direct,
    "with": _op_with,
    "helper": _op_helper,
    "rlock": _op_rlock,
    "cond_wait": _op_cond_wait,
    "contextmanager": _op_contextmanager,
}


def _run_program(runtime, program) -> list:
    locks = {
        "plain": runtime.lock("P"),
        "rlock": runtime.rlock("R"),
        "cond": runtime.condition(),
    }
    keys = _acquired_positions(runtime)
    for op in program:
        _OPS[op](runtime, locks)
    return keys


@given(
    program=st.lists(
        st.sampled_from(sorted(_OPS)), min_size=1, max_size=8
    )
)
@settings(max_examples=25, deadline=None)
def test_cached_capture_equals_uncached_walk(program):
    cached = make_runtime(position_cache=True, fast_path=False)
    uncached = make_runtime(position_cache=False, fast_path=False)
    assert cached.position_cache is not None
    assert uncached.position_cache is None
    cached_keys = _run_program(cached, program)
    uncached_keys = _run_program(uncached, program)
    assert cached_keys == uncached_keys
    assert cached_keys  # every program acquires at least once
    # The differential is real: the cached side actually used the cache.
    assert cached.position_cache.entry_count() > 0


# ----------------------------------------------------------------------
# the randomized call shapes (aio)
# ----------------------------------------------------------------------

async def _aio_op_direct(locks) -> None:
    await locks["plain"].acquire()
    locks["plain"].release()


async def _aio_op_with(locks) -> None:
    async with locks["plain"]:
        pass


async def _aio_op_helper(locks) -> None:
    async def leaf() -> None:
        async with locks["plain"]:
            pass

    await leaf()


async def _aio_op_rlock(locks) -> None:
    async with locks["rlock"]:
        async with locks["rlock"]:
            pass


_AIO_OPS = {
    "direct": _aio_op_direct,
    "with": _aio_op_with,
    "helper": _aio_op_helper,
    "rlock": _aio_op_rlock,
}


def _run_aio_program(runtime, program) -> list:
    keys = _acquired_positions(runtime)

    async def drive() -> None:
        locks = {
            "plain": runtime.lock("P"),
            "rlock": runtime.rlock("R"),
        }
        for op in program:
            await _AIO_OPS[op](locks)

    asyncio.run(drive())
    return keys


@given(
    program=st.lists(
        st.sampled_from(sorted(_AIO_OPS)), min_size=1, max_size=6
    )
)
@settings(max_examples=15, deadline=None)
def test_aio_cached_capture_equals_uncached_walk(program):
    cached = make_aio_runtime(position_cache=True, fast_path=False)
    uncached = make_aio_runtime(position_cache=False, fast_path=False)
    assert cached.position_cache is not None
    assert uncached.position_cache is None
    cached_keys = _run_aio_program(cached, program)
    uncached_keys = _run_aio_program(uncached, program)
    assert cached_keys == uncached_keys
    assert cached_keys
    assert cached.position_cache.entry_count() > 0


# ----------------------------------------------------------------------
# invalidation: code-object death must flush, id recycling must not hit
# ----------------------------------------------------------------------

_GRAB_SOURCE = textwrap.dedent(
    """
    def grab(lock):
        with lock:
            pass
    """
)


def _make_grab():
    namespace: dict = {}
    exec(compile(_GRAB_SOURCE, "<fastpath-cache-test>", "exec"), namespace)
    return namespace["grab"]


def test_code_object_death_flushes_cache():
    runtime = make_runtime(position_cache=True, fast_path=False)
    cache = runtime.position_cache
    lock = runtime.lock("G")

    grab = _make_grab()
    grab(lock)
    assert cache.entry_count() >= 1
    generation = callsite._code_generation

    del grab
    gc.collect()
    assert callsite._code_generation > generation
    assert cache.entry_count() == 0

    # A fresh code object — plausibly recycling the dead one's id() —
    # must resolve through the walk again, not hit a stale entry, and
    # land on the same interned position (same synthetic file:line).
    keys = _acquired_positions(runtime)
    grab2 = _make_grab()
    grab2(lock)
    assert cache.entry_count() >= 1
    assert keys == [(("<fastpath-cache-test>", 3),)]


def test_unrelated_code_death_only_costs_a_rebuild():
    """Generation flushes are coarse but self-healing: the next lookup
    repopulates and subsequent hits serve from the cache again."""
    runtime = make_runtime(position_cache=True, fast_path=False)
    cache = runtime.position_cache
    lock = runtime.lock("G")
    with lock:
        pass
    before = cache.entry_count()
    assert before >= 1

    doomed = _make_grab()
    doomed(lock)
    del doomed
    gc.collect()
    assert cache.entry_count() == 0
    with lock:
        pass
    assert cache.entry_count() >= 1


def test_contextlib_boundary_is_internal():
    """Regression for the contextlib classification: the file must be
    resolved robustly (importlib spec, not a hand-built path) and
    classified internal so ``with``-wrapped acquires attribute to the
    application frame."""
    assert callsite._CONTEXTLIB_FILE == os.path.abspath(
        contextlib.__file__
    )
    assert callsite._is_internal(callsite._CONTEXTLIB_FILE)

    runtime = make_runtime(position_cache=True, fast_path=False)
    keys = _acquired_positions(runtime)
    with _managed(runtime.lock("C")):
        pass
    assert len(keys) == 1
    ((filename, _lineno),) = keys[0]
    assert os.path.abspath(filename) == os.path.abspath(__file__)


def test_cache_disabled_for_deep_capture_and_static_ids():
    """The cache's soundness envelope is depth-1 dynamic capture only."""
    assert make_runtime(stack_depth=2).position_cache is None
    assert make_runtime(static_ids=True).position_cache is None
    assert make_runtime(enabled=False).position_cache is None
    assert make_runtime().position_cache is not None
