"""Unit tests for DimmunixLock / DimmunixRLock."""

import threading
import time

import pytest

from repro.errors import DeadlockDetectedError
from tests.conftest import make_runtime


class TestDimmunixLock:
    def test_acquire_release(self, runtime):
        lock = runtime.lock("a")
        assert lock.acquire()
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_context_manager(self, runtime):
        lock = runtime.lock("a")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_try_acquire_contended_returns_false(self, runtime):
        lock = runtime.lock("a")
        lock.acquire()
        grabbed = []

        def try_it():
            grabbed.append(lock.acquire(blocking=False))

        thread = threading.Thread(target=try_it)
        thread.start()
        thread.join(5)
        assert grabbed == [False]
        lock.release()

    def test_timeout_expires(self, runtime):
        lock = runtime.lock("a")
        lock.acquire()
        results = []

        def try_it():
            results.append(lock.acquire(timeout=0.05))

        thread = threading.Thread(target=try_it)
        thread.start()
        thread.join(5)
        assert results == [False]
        lock.release()
        # The abandoned acquisition left no request edge behind.
        assert lock.node.owner is not None or True
        assert runtime.core.rag.blocked_threads() == []

    def test_self_deadlock_detected(self, runtime):
        """A non-reentrant lock re-acquired by its owner is a 1-cycle."""
        lock = runtime.lock("a")
        lock.acquire()
        with pytest.raises(DeadlockDetectedError):
            lock.acquire()
        lock.release()
        assert len(runtime.history) == 1
        assert runtime.history.deadlock_count() == 1

    def test_counts_stats(self, runtime):
        lock = runtime.lock("a")
        before = runtime.stats.requests
        with lock:
            pass
        assert runtime.stats.requests == before + 1
        assert runtime.stats.releases >= 1

    def test_disabled_runtime_passthrough(self):
        runtime = make_runtime(enabled=False)
        lock = runtime.lock("a")
        with lock:
            assert lock.locked()
        assert runtime.stats.requests == 0

    def test_two_runtimes_are_isolated(self):
        """Figure 1: one Dimmunix instance per process; no shared state."""
        rt_a = make_runtime()
        rt_b = make_runtime()
        lock_a = rt_a.lock("a")
        with lock_a:
            assert rt_a.core.snapshot().locks == 1
            assert rt_b.core.snapshot().locks == 0


class TestDimmunixRLock:
    def test_reentrant_acquire(self, runtime):
        rlock = runtime.rlock("r")
        with rlock:
            with rlock:
                with rlock:
                    assert rlock._count == 3
        assert rlock._count == 0
        assert not rlock.locked()

    def test_recursive_acquire_skips_engine(self, runtime):
        rlock = runtime.rlock("r")
        with rlock:
            before = runtime.stats.requests
            with rlock:
                pass
            assert runtime.stats.requests == before

    def test_release_by_non_owner_raises(self, runtime):
        rlock = runtime.rlock("r")
        rlock.acquire()
        errors = []

        def bad_release():
            try:
                rlock.release()
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=bad_release)
        thread.start()
        thread.join(5)
        assert len(errors) == 1
        rlock.release()

    def test_release_unowned_raises(self, runtime):
        rlock = runtime.rlock("r")
        with pytest.raises(RuntimeError):
            rlock.release()

    def test_is_owned_protocol(self, runtime):
        rlock = runtime.rlock("r")
        assert not rlock._is_owned()
        with rlock:
            assert rlock._is_owned()

    def test_release_save_restores_recursion(self, runtime):
        rlock = runtime.rlock("r")
        rlock.acquire()
        rlock.acquire()
        state = rlock._release_save()
        assert state == 2
        assert not rlock.locked()
        rlock._acquire_restore(state)
        assert rlock._count == 2
        rlock.release()
        rlock.release()


class TestCrossThreadBlocking:
    def test_blocking_handoff(self, runtime):
        lock = runtime.lock("handoff")
        order = []

        def worker():
            with lock:
                order.append("worker")

        with lock:
            thread = threading.Thread(target=worker)
            thread.start()
            time.sleep(0.05)
            order.append("main")
        thread.join(5)
        assert order == ["main", "worker"]
