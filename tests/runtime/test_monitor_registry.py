"""Unit tests for the per-object monitor registry (lock fattening)."""

import gc

from repro.runtime.monitor_registry import MonitorRegistry


class Plain:
    pass


class TestMonitorRegistry:
    def test_monitor_created_on_first_use(self, runtime):
        registry = MonitorRegistry(runtime)
        obj = Plain()
        assert len(registry) == 0
        monitor = registry.monitor_for(obj)
        assert len(registry) == 1
        assert monitor is registry.monitor_for(obj)

    def test_distinct_objects_distinct_monitors(self, runtime):
        registry = MonitorRegistry(runtime)
        a, b = Plain(), Plain()
        assert registry.monitor_for(a) is not registry.monitor_for(b)

    def test_condition_shares_monitor(self, runtime):
        registry = MonitorRegistry(runtime)
        obj = Plain()
        condition = registry.condition_for(obj)
        assert condition.lock is registry.monitor_for(obj)
        assert condition is registry.condition_for(obj)

    def test_collected_object_leaves_registry(self, runtime):
        registry = MonitorRegistry(runtime)
        obj = Plain()
        registry.monitor_for(obj)
        assert len(registry) == 1
        del obj
        gc.collect()
        assert len(registry) == 0

    def test_monitor_node_registered_in_rag(self, runtime):
        registry = MonitorRegistry(runtime)
        obj = Plain()
        monitor = registry.monitor_for(obj)
        assert monitor.node is not None
        assert runtime.core.rag.lock_by_id(monitor.node.node_id) is monitor.node

    def test_collected_object_removes_rag_node(self, runtime):
        registry = MonitorRegistry(runtime)
        obj = Plain()
        node_id = registry.monitor_for(obj).node.node_id
        del obj
        gc.collect()
        assert runtime.core.rag.lock_by_id(node_id) is None

    def test_non_weakref_object_keeps_monitor(self, runtime):
        registry = MonitorRegistry(runtime)
        value = 12345678901234  # ints are not weakref-able
        monitor = registry.monitor_for(value)
        assert monitor is registry.monitor_for(value)
