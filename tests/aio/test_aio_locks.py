"""Semantics of the immunized asyncio lock types."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio.locks import AioDimmunixLock, AioDimmunixRLock
from repro.config import DimmunixConfig
from repro.aio.runtime import AsyncioDimmunixRuntime


class TestAioLockBasics:
    def test_acquire_release(self, aio_runtime):
        async def scenario():
            lock = aio_runtime.lock("basic")
            assert not lock.locked()
            assert await lock.acquire()
            assert lock.locked()
            lock.release()
            assert not lock.locked()

        asyncio.run(scenario())

    def test_async_context_manager(self, aio_runtime):
        async def scenario():
            lock = aio_runtime.lock("ctx")
            async with lock:
                assert lock.locked()
            assert not lock.locked()

        asyncio.run(scenario())

    def test_contended_acquire_waits(self, aio_runtime):
        """A second task suspends until the first releases."""

        async def scenario():
            lock = aio_runtime.lock("contended")
            order = []

            async def holder():
                async with lock:
                    order.append("held")
                    await asyncio.sleep(0.01)
                order.append("released")

            async def waiter():
                await asyncio.sleep(0.001)
                async with lock:
                    order.append("second")

            await asyncio.gather(holder(), waiter())
            assert order == ["held", "released", "second"]

        asyncio.run(scenario())

    def test_try_lock_reports_would_block(self, aio_runtime):
        async def scenario():
            lock = aio_runtime.lock("try")

            async def holder(started: asyncio.Event, release: asyncio.Event):
                async with lock:
                    started.set()
                    await release.wait()

            started, release = asyncio.Event(), asyncio.Event()
            task = asyncio.ensure_future(holder(started, release))
            await started.wait()
            assert await lock.acquire(blocking=False) is False
            release.set()
            await task
            assert await lock.acquire(blocking=False) is True
            lock.release()

        asyncio.run(scenario())

    def test_requires_task_context(self, aio_runtime):
        """Driving the coroutine outside a loop/task is rejected."""
        lock = aio_runtime.lock("no-task")
        coroutine = _bare_acquire(lock)
        with pytest.raises(RuntimeError):
            coroutine.send(None)
        coroutine.close()

    def test_disabled_config_passes_through(self):
        runtime = AsyncioDimmunixRuntime(
            DimmunixConfig.disabled(), name="aio-disabled"
        )

        async def scenario():
            lock = runtime.lock("plain")
            assert lock.node is None
            async with lock:
                assert lock.locked()

        asyncio.run(scenario())
        assert runtime.stats.requests == 0

    def test_two_event_loops_rebind_cleanly(self, aio_runtime):
        """A fresh asyncio.run must not inherit stale loop state."""

        async def use_lock():
            async with aio_runtime.lock("across-loops"):
                await asyncio.sleep(0)

        asyncio.run(use_lock())
        first_tasks = aio_runtime.stats.tasks_registered
        asyncio.run(use_lock())
        assert aio_runtime.stats.tasks_registered == first_tasks + 1
        snap = aio_runtime.core.snapshot()
        assert snap.blocked == 0
        assert snap.yielding == 0


async def _bare_acquire(lock):
    # Driven by hand (coroutine.send) — no loop, no task; the adapter
    # must reject this explicitly instead of corrupting its node maps.
    await lock.acquire()


class TestAioRLock:
    def test_reentrant_acquire(self, aio_runtime):
        async def scenario():
            rlock = aio_runtime.rlock("re")
            async with rlock:
                async with rlock:
                    assert rlock.locked()
                assert rlock.locked()
            assert not rlock.locked()

        asyncio.run(scenario())

    def test_recursive_pairs_skip_engine(self, aio_runtime):
        async def scenario():
            rlock = aio_runtime.rlock("skip")
            async with rlock:
                before = aio_runtime.stats.requests
                async with rlock:
                    pass
                assert aio_runtime.stats.requests == before

        asyncio.run(scenario())

    def test_release_by_non_owner_raises(self, aio_runtime):
        async def scenario():
            rlock = aio_runtime.rlock("owner")

            async def other():
                with pytest.raises(RuntimeError):
                    rlock.release()

            async with rlock:
                await asyncio.ensure_future(other())

        asyncio.run(scenario())


class TestEngineBookkeeping:
    def test_requests_match_acquisitions(self, aio_runtime):
        async def scenario():
            lock = aio_runtime.lock("counted")
            for _ in range(5):
                async with lock:
                    pass

        asyncio.run(scenario())
        assert aio_runtime.stats.requests == 5
        assert aio_runtime.stats.acquisitions == 5
        assert aio_runtime.stats.releases == 5

    def test_cross_task_release_charges_the_holder(self, aio_runtime):
        """Acquire in task A, release in task B — a legal asyncio.Lock
        handoff. The engine must charge the release to the holder's
        node, or A keeps a phantom hold edge that later produces
        spurious detections."""

        async def scenario():
            lock = aio_runtime.lock("handoff")
            handed_off = asyncio.Event()

            async def acquirer():
                await lock.acquire()
                handed_off.set()

            async def releaser():
                await handed_off.wait()
                lock.release()

            await asyncio.gather(acquirer(), releaser())
            assert not lock.locked()
            # The hold edge is gone: the node-level RAG shows no owner.
            assert lock.node.owner is None
            # And the lock stays fully usable afterwards.
            async with lock:
                pass

        asyncio.run(scenario())
        assert len(aio_runtime.detections) == 0

    def test_task_exit_cleans_rag(self, aio_runtime):
        """A task that dies holding a lock must not pin RAG state."""

        async def scenario():
            lock = aio_runtime.lock("leaky")

            async def crasher():
                await lock.acquire()
                raise RuntimeError("died holding the lock")

            task = asyncio.ensure_future(crasher())
            with pytest.raises(RuntimeError, match="died"):
                await task
            # The done callback ran thread_exit: no held edges remain.
            await asyncio.sleep(0)

        asyncio.run(scenario())
        assert aio_runtime.core.snapshot().blocked == 0
        assert aio_runtime.adapter.registered_tasks == 0
