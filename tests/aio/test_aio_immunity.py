"""Integration: the deadlock-once-then-immune property for tasks.

The acceptance story of the aio layer: an ``asyncio.Lock`` cycle between
tasks is detected, recorded to the history, and avoided on re-run (the
antibody round-trip, including a disk round-trip), and a *mixed*
thread+task cycle through one shared engine is likewise detected and
avoided — the cross-domain case no per-domain detector sees.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

import repro
from repro.aio import AsyncioDimmunixRuntime, CrossDomainLock
from repro.aio.scenarios import (
    run_async_dining_philosophers,
    run_looper_inversion,
    run_opposite_order_pair,
)
from repro.config import DetectionPolicy
from repro.core.history import History
from repro.errors import DeadlockDetectedError
from tests.aio.conftest import make_aio_runtime
from tests.conftest import make_runtime


class TestAntibodyRoundTrip:
    def test_deadlock_once_then_immune(self):
        first = make_aio_runtime()
        outcome_one = asyncio.run(run_opposite_order_pair(first))
        assert outcome_one.deadlocks_detected == 1
        assert len(first.history) == 1
        assert list(first.history)[0].kind == "deadlock"

        # "Reboot": same program, fresh runtime, inherited history.
        second = make_aio_runtime(history=first.history)
        outcome_two = asyncio.run(run_opposite_order_pair(second))
        assert sorted(outcome_two.finished) == ["ab", "ba"]
        assert outcome_two.deadlocks_detected == 0
        assert len(second.detections) == 0
        assert second.stats.yields >= 1
        assert second.stats.yield_wakeups >= 1

    def test_immunity_survives_disk_roundtrip(self, tmp_path):
        path = tmp_path / "aio.history"
        first = make_aio_runtime(history_path=path)
        asyncio.run(run_opposite_order_pair(first))
        first.flush_history()
        assert path.exists()

        reloaded = History.load(path)
        second = make_aio_runtime(history=reloaded)
        outcome = asyncio.run(run_opposite_order_pair(second))
        assert sorted(outcome.finished) == ["ab", "ba"]
        assert len(second.detections) == 0

    def test_third_run_still_immune(self):
        runtime_one = make_aio_runtime()
        asyncio.run(run_opposite_order_pair(runtime_one))
        history = runtime_one.history
        for _ in range(2):
            runtime_next = make_aio_runtime(history=history)
            outcome = asyncio.run(run_opposite_order_pair(runtime_next))
            assert sorted(outcome.finished) == ["ab", "ba"]
            assert len(runtime_next.detections) == 0


class TestAsyncDiningPhilosophers:
    def test_table_completes_with_immunity(self):
        runtime = make_aio_runtime(yield_timeout=0.5)
        outcome = asyncio.run(
            run_async_dining_philosophers(runtime, philosophers=5, meals=2)
        )
        assert outcome.completed
        assert outcome.meals_eaten == 10
        assert outcome.errors == []

    def test_second_dinner_avoids_known_deadlocks(self):
        runtime_one = make_aio_runtime(yield_timeout=0.5)
        first = asyncio.run(
            run_async_dining_philosophers(runtime_one, philosophers=5, meals=2)
        )
        assert first.completed
        assert first.deadlocks_detected >= 1

        runtime_two = make_aio_runtime(
            history=runtime_one.history, yield_timeout=0.5
        )
        second = asyncio.run(
            run_async_dining_philosophers(runtime_two, philosophers=5, meals=2)
        )
        assert second.completed
        assert second.deadlocks_detected == 0
        assert runtime_two.stats.yields >= 1


class TestLooperInversion:
    def test_cross_sending_handlers_deadlock_once(self):
        runtime = make_aio_runtime()
        outcome = asyncio.run(run_looper_inversion(runtime))
        assert outcome.completed
        assert outcome.deadlocks_detected == 1
        assert outcome.handled == 4

        rerun = make_aio_runtime(history=runtime.history)
        immune = asyncio.run(run_looper_inversion(rerun))
        assert immune.completed
        assert immune.deadlocks_detected == 0
        assert rerun.stats.yields >= 1


def _mixed_cycle_run(history=None):
    """Task holds X awaits Y; worker thread holds Y requests X."""
    runtime = make_runtime(history=history)
    aio_runtime = AsyncioDimmunixRuntime.attached(runtime)
    lock_x = CrossDomainLock(runtime, aio_runtime, "X")
    lock_y = CrossDomainLock(runtime, aio_runtime, "Y")
    outcome = {}

    def worker():
        try:
            with lock_y:
                time.sleep(0.05)
                with lock_x:
                    outcome["thread"] = "ok"
        except DeadlockDetectedError:
            outcome["thread"] = "detected"

    async def task_side():
        thread = threading.Thread(target=worker, name="mixed-worker")
        thread.start()
        try:
            async with lock_x:
                await asyncio.sleep(0.05)
                async with lock_y:
                    outcome["task"] = "ok"
        except DeadlockDetectedError:
            outcome["task"] = "detected"
        while thread.is_alive():
            await asyncio.sleep(0.005)

    asyncio.run(task_side())
    return runtime, outcome


class TestMixedDomainCycle:
    def test_thread_task_cycle_detected_through_shared_engine(self):
        runtime, outcome = _mixed_cycle_run()
        assert "detected" in outcome.values()
        assert len(runtime.history) == 1
        # One RAG: the cycle crossed domains, so no per-domain detector
        # could have seen it; the shared engine recorded one signature.
        assert list(runtime.history)[0].kind == "deadlock"

    def test_mixed_cycle_avoided_on_rerun(self):
        first, _ = _mixed_cycle_run()
        second, outcome = _mixed_cycle_run(history=first.history)
        assert outcome == {"task": "ok", "thread": "ok"}
        assert len(second.detections) == 0
        assert second.stats.yields >= 1

    def test_cross_lock_requires_shared_engine(self):
        runtime = make_runtime()
        foreign = make_aio_runtime()
        with pytest.raises(ValueError, match="shared engine"):
            CrossDomainLock(runtime, foreign, "bad")

    def test_joining_an_engine_requires_its_glock(self):
        """core= without the host adapter's lock would un-serialize the
        engine; the constructor refuses and points at attached()."""
        runtime = make_runtime()
        with pytest.raises(ValueError, match="attached"):
            AsyncioDimmunixRuntime(core=runtime.core)


class TestFacadeIntegration:
    def test_session_aio_layer_round_trip(self):
        events = []
        with repro.immunity(
            detection_policy=DetectionPolicy.RAISE,
            yield_timeout=1.0,
            name="aio-session",
        ) as session:
            session.subscribe(
                lambda event: events.append((event.source, event.kind))
            )
            outcome = asyncio.run(run_opposite_order_pair(session.aio()))
            assert outcome.deadlocks_detected == 1
            assert len(session.history) == 1
            # Layer-6 events are tagged with the session's aio source.
            assert {source for source, _ in events} == {"aio-session/aio"}
            assert session.stats.tasks_registered == 2
            assert "aio-session/aio" in session.components

    def test_cross_layer_immunity_thread_history_heals_tasks(self):
        """A signature detected by *threads* immunizes the aio layer.

        Both layers run the same program positions (the shared scenario
        helper), so the history recorded under one adapter steers the
        other — the platform-wide property across domains.
        """
        first = make_aio_runtime()
        asyncio.run(run_opposite_order_pair(first))

        second = make_aio_runtime(history=first.history)
        outcome = asyncio.run(run_opposite_order_pair(second))
        assert outcome.deadlocks_detected == 0

    def test_facade_cross_lock(self):
        with repro.immunity(
            detection_policy=DetectionPolicy.RAISE,
            yield_timeout=1.0,
            name="xd-session",
        ) as session:
            xlock = session.cross_lock("shared-resource")

            async def use_from_task():
                async with xlock:
                    await asyncio.sleep(0)

            with xlock:
                pass
            asyncio.run(use_from_task())
            assert session.runtime().stats.acquisitions == 2
