"""Shared fixtures for the asyncio adapter-layer suite."""

from __future__ import annotations

import pytest

from repro.aio.runtime import AsyncioDimmunixRuntime, reset_aio_runtime
from repro.config import DetectionPolicy, DimmunixConfig


@pytest.fixture(autouse=True)
def _fresh_default_aio_runtime():
    """Isolate tests that touch the process-default aio runtime."""
    reset_aio_runtime()
    yield
    reset_aio_runtime()


@pytest.fixture
def aio_runtime(raise_config) -> AsyncioDimmunixRuntime:
    return AsyncioDimmunixRuntime(raise_config, name="aio-test")


def make_aio_runtime(history=None, **overrides) -> AsyncioDimmunixRuntime:
    """Helper for tests needing several aio runtimes sharing a history."""
    config = DimmunixConfig(
        detection_policy=DetectionPolicy.RAISE, yield_timeout=1.0
    ).evolve(**overrides)
    return AsyncioDimmunixRuntime(config, history=history, name="aio-test")
