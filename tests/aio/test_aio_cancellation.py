"""Task cancellation must always cancel the pending engine request.

A cancelled ``await`` is routine in asyncio (timeouts, shutdown,
``wait_for``); if cancellation leaked a request or yield edge, the RAG
would accumulate phantom waits and later detections would report cycles
that do not exist. These tests drive cancellation through every await
point of the acquire path and assert the engine is left clean.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.events import ResumeEvent
from tests.aio.conftest import make_aio_runtime


def _pair_workers(runtime):
    """AB/BA workers defined once so runs share program positions."""
    lock_a = runtime.lock("A")
    lock_b = runtime.lock("B")
    finished = []

    async def ab(hold: asyncio.Event = None):
        async with lock_a:
            if hold is not None:
                await hold.wait()
            else:
                await asyncio.sleep(0)
            async with lock_b:
                finished.append("ab")

    async def ba():
        async with lock_b:
            await asyncio.sleep(0)
            async with lock_a:
                finished.append("ba")

    return ab, ba, finished


def _seed_history(runtime):
    """Run the pair once so the deadlock signature is recorded."""
    ab, ba, _ = _pair_workers(runtime)

    async def provoke():
        results = await asyncio.gather(
            ab(), ba(), return_exceptions=True
        )
        return results

    asyncio.run(provoke())
    assert len(runtime.history) == 1
    return runtime.history


class TestCancelDuringPhysicalAcquire:
    def test_request_edge_is_cancelled(self, aio_runtime):
        async def scenario():
            lock = aio_runtime.lock("phys")
            release = asyncio.Event()

            async def holder():
                async with lock:
                    await release.wait()

            async def contender():
                await lock.acquire()

            holder_task = asyncio.ensure_future(holder())
            await asyncio.sleep(0.01)
            contender_task = asyncio.ensure_future(contender())
            await asyncio.sleep(0.01)
            # The contender passed the engine (PROCEED) and is suspended
            # in the raw acquire: one blocked thread in the RAG.
            assert aio_runtime.core.snapshot().blocked == 1
            contender_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await contender_task
            assert aio_runtime.core.snapshot().blocked == 0
            assert aio_runtime.stats.requests_cancelled >= 1
            release.set()
            await holder_task

        asyncio.run(scenario())

    def test_wait_for_timeout_cancels_request(self, aio_runtime):
        """``asyncio.wait_for`` cancellation is the common real caller."""

        async def scenario():
            lock = aio_runtime.lock("timed")
            release = asyncio.Event()

            async def holder():
                async with lock:
                    await release.wait()

            holder_task = asyncio.ensure_future(holder())
            await asyncio.sleep(0.01)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(lock.acquire(), timeout=0.05)
            assert aio_runtime.core.snapshot().blocked == 0
            release.set()
            await holder_task

        asyncio.run(scenario())


class TestCancelWhileParkedOnSignature:
    def test_yield_edge_is_dropped(self):
        first = make_aio_runtime()
        history = _seed_history(first)

        runtime = make_aio_runtime(history=history)
        ab, ba, finished = _pair_workers(runtime)

        async def scenario():
            hold = asyncio.Event()
            ab_task = asyncio.ensure_future(ab(hold))
            await asyncio.sleep(0.01)
            ba_task = asyncio.ensure_future(ba())
            await asyncio.sleep(0.02)
            # ba reached its outer acquisition and parked on the
            # signature (avoidance), cooperatively.
            assert runtime.core.yielding_threads == 1
            ba_task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await ba_task
            assert runtime.core.yielding_threads == 0
            assert runtime.core.snapshot().blocked == 0
            hold.set()
            await ab_task

        asyncio.run(scenario())
        assert finished == ["ab"]
        assert len(runtime.detections) == 0


class TestDeadTaskWakesParkedUnits:
    def test_thread_exit_release_notifies_parked_task(self):
        """A task dying while holding an antibody-position lock must
        wake the units parked on that signature — with no safety net
        (``yield_timeout=None``) the wake can only come from the
        ``thread_exit`` release path."""
        lines = {}

        def workers(runtime):
            lock_a = runtime.lock("A")
            lock_b = runtime.lock("B")

            async def ab(hold: asyncio.Event = None, leak: bool = False):
                await lock_a.acquire()  # shared position P1
                try:
                    if hold is not None:
                        await hold.wait()
                    if leak:
                        raise RuntimeError("died holding A")
                    await asyncio.sleep(0)
                    await lock_b.acquire()
                    lines.setdefault("finished", []).append("ab")
                    lock_b.release()
                finally:
                    if not leak:
                        lock_a.release()

            async def ba():
                await lock_b.acquire()  # shared position P2
                try:
                    await asyncio.sleep(0)
                    await lock_a.acquire()
                    lines.setdefault("finished", []).append("ba")
                    lock_a.release()
                finally:
                    lock_b.release()

            return ab, ba

        first = make_aio_runtime()
        ab, ba = workers(first)

        async def provoke():
            await asyncio.gather(ab(), ba(), return_exceptions=True)

        asyncio.run(provoke())
        assert len(first.history) == 1

        runtime = make_aio_runtime(history=first.history, yield_timeout=None)
        ab, ba = workers(runtime)

        async def scenario():
            hold = asyncio.Event()
            leaker = asyncio.ensure_future(ab(hold, leak=True))
            await asyncio.sleep(0.01)
            parked = asyncio.ensure_future(ba())
            await asyncio.sleep(0.02)
            assert runtime.core.yielding_threads == 1
            assert runtime.stats.yield_wakeups == 0
            hold.set()  # the leaker dies still holding A
            with pytest.raises(RuntimeError, match="died holding A"):
                await leaker
            # thread_exit's forced release must wake the parked task:
            # its resume (re-request) is the wake-up observable. The
            # physical asyncio lock stays orphaned by the dead task —
            # thread_exit is RAG bookkeeping, not a physical unlock, in
            # both domains — so completion is not the signal here.
            deadline = asyncio.get_running_loop().time() + 2.0
            while runtime.stats.yield_wakeups == 0:
                assert asyncio.get_running_loop().time() < deadline, (
                    "parked task was never woken by the forced release"
                )
                await asyncio.sleep(0.005)
            assert runtime.core.yielding_threads == 0
            parked.cancel()
            await asyncio.gather(parked, return_exceptions=True)

        asyncio.run(scenario())
        assert runtime.stats.yield_wakeups >= 1
        assert runtime.stats.starvations_detected == 0


class TestConcurrentLoopsRejected:
    def test_second_running_loop_is_refused(self, aio_runtime):
        import threading

        bound = threading.Event()
        release = threading.Event()

        def foreign_loop():
            async def hold():
                async with aio_runtime.lock("foreign"):
                    bound.set()
                    await asyncio.get_running_loop().run_in_executor(
                        None, release.wait
                    )

            asyncio.run(hold())

        thread = threading.Thread(target=foreign_loop)
        thread.start()
        assert bound.wait(5)

        async def competing():
            async with aio_runtime.lock("local"):
                pass

        try:
            with pytest.raises(RuntimeError, match="per event loop"):
                asyncio.run(competing())
        finally:
            release.set()
            thread.join(5)
        assert not thread.is_alive()


class TestYieldPoll:
    def test_parked_task_repolls_without_bypass(self):
        """``aio_yield_poll`` re-runs avoidance on a cadence, without
        burning starvation bypasses."""
        first = make_aio_runtime()
        history = _seed_history(first)

        runtime = make_aio_runtime(
            history=history, aio_yield_poll=0.01, yield_timeout=5.0
        )
        resumes = []
        runtime.subscribe(lambda event: resumes.append(event), kinds=(ResumeEvent,))
        ab, ba, finished = _pair_workers(runtime)

        async def scenario():
            hold = asyncio.Event()
            ab_task = asyncio.ensure_future(ab(hold))
            await asyncio.sleep(0.01)
            ba_task = asyncio.ensure_future(ba())
            # Stay parked across several poll ticks.
            await asyncio.sleep(0.06)
            hold.set()
            await asyncio.gather(ab_task, ba_task)

        asyncio.run(scenario())
        assert sorted(finished) == ["ab", "ba"]
        # Each poll tick re-requests (one resume per retry), yet no
        # starvation was recorded and no bypass granted.
        assert len(resumes) >= 2
        assert runtime.stats.starvations_detected == 0
        assert runtime.stats.bypasses_granted == 0
