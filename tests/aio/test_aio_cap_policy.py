"""Cap-policy parity on the asyncio scenario pack.

The mirror of tests/runtime/test_cap_policy_parity.py for coroutine
tasks: on real 2–3-entry signatures the budget never engages, so
``grant`` and ``weak`` must produce identical verdicts — detection on
run 1, avoidance-only completion on run 2, zero caps.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio.scenarios import (
    run_async_dining_philosophers,
    run_opposite_order_pair,
)
from repro.config import MatchCapPolicy
from tests.aio.conftest import make_aio_runtime

POLICIES = [MatchCapPolicy.GRANT, MatchCapPolicy.WEAK]


def pair_twice(policy: MatchCapPolicy):
    first = make_aio_runtime(match_cap_policy=policy)
    outcome_one = asyncio.run(run_opposite_order_pair(first))
    second = make_aio_runtime(
        history=first.history, match_cap_policy=policy
    )
    outcome_two = asyncio.run(run_opposite_order_pair(second))
    return first, second, outcome_one, outcome_two


@pytest.mark.parametrize("policy", POLICIES)
def test_pair_detects_then_avoids_under_either_policy(policy):
    first, second, outcome_one, outcome_two = pair_twice(policy)
    assert outcome_one.deadlocks_detected == 1
    assert sorted(outcome_two.finished) == ["ab", "ba"]
    assert outcome_two.deadlocks_detected == 0
    assert first.stats.match_caps == 0
    assert second.stats.match_caps == 0
    assert second.stats.weak_fallbacks == 0


@pytest.mark.parametrize("policy", POLICIES)
def test_async_philosophers_complete_under_either_policy(policy):
    first = make_aio_runtime(match_cap_policy=policy)
    outcome_one = asyncio.run(
        run_async_dining_philosophers(first, philosophers=4, meals=2)
    )
    second = make_aio_runtime(
        history=first.history, match_cap_policy=policy
    )
    outcome_two = asyncio.run(
        run_async_dining_philosophers(second, philosophers=4, meals=2)
    )
    assert outcome_one.completed and outcome_two.completed
    assert outcome_two.deadlocks_detected == 0
    assert second.stats.match_caps == 0


def test_policies_give_identical_verdicts_on_real_signatures():
    verdicts = {}
    for policy in POLICIES:
        first, second, outcome_one, outcome_two = pair_twice(policy)
        verdicts[policy] = (
            outcome_one.deadlocks_detected,
            sorted(outcome_two.finished),
            outcome_two.deadlocks_detected,
            sorted(
                signature.canonical_key() for signature in second.history
            ),
        )
    assert verdicts[MatchCapPolicy.GRANT] == verdicts[MatchCapPolicy.WEAK]
