"""Cross-adapter parity: the aio layer behaves like the thread layer.

One scenario — the AB/BA opposite-order pair with a pinned interleaving —
runs on the threaded runtime and on the aio layer. The two domains must
produce *equivalent* results, kind-for-kind:

* run 1 detects exactly one deadlock and records one two-entry signature
  in both domains;
* run 2 completes on avoidance alone (zero detections, one yield) in
  both domains;
* the typed event streams carry the same kind sequence, event for event.

The threaded side pins the interleaving with sleeps, the aio side gets
the same order for free from cooperative scheduling; both sides follow
the same schedule: AB takes A, BA takes B, AB requests B (blocks), BA
requests A (closes the cycle / parks on the antibody).
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.errors import DeadlockDetectedError
from tests.aio.conftest import make_aio_runtime
from tests.conftest import make_runtime

LIFECYCLE_KINDS = (
    "request",
    "acquired",
    "release",
    "yield",
    "resume",
    "detection",
)


def _collect_kinds(runtime) -> list:
    kinds: list[str] = []
    runtime.subscribe(
        lambda event: kinds.append(event.kind), kinds=LIFECYCLE_KINDS
    )
    return kinds


# ----------------------------------------------------------------------
# the two scripted domains
# ----------------------------------------------------------------------

def _run_threaded_pair(runtime) -> dict:
    lock_a = runtime.lock("A")
    lock_b = runtime.lock("B")
    outcome = {"finished": [], "detected": 0}

    def ab() -> None:
        try:
            with lock_a:
                time.sleep(0.05)
                with lock_b:
                    outcome["finished"].append("ab")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    def ba() -> None:
        try:
            time.sleep(0.02)
            with lock_b:
                time.sleep(0.06)
                with lock_a:
                    outcome["finished"].append("ba")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    threads = [
        threading.Thread(target=ab, name="pair-ab"),
        threading.Thread(target=ba, name="pair-ba"),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(10)
    assert all(not thread.is_alive() for thread in threads)
    return outcome


def _run_aio_pair(runtime) -> dict:
    lock_a = runtime.lock("A")
    lock_b = runtime.lock("B")
    outcome = {"finished": [], "detected": 0}

    async def ab() -> None:
        try:
            async with lock_a:
                await asyncio.sleep(0)
                async with lock_b:
                    outcome["finished"].append("ab")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    async def ba() -> None:
        try:
            async with lock_b:
                await asyncio.sleep(0)
                async with lock_a:
                    outcome["finished"].append("ba")
        except DeadlockDetectedError:
            outcome["detected"] += 1

    async def drive() -> None:
        await asyncio.gather(
            asyncio.ensure_future(ab()), asyncio.ensure_future(ba())
        )

    asyncio.run(drive())
    return outcome


def _signature_shape(signature) -> tuple:
    return (
        signature.kind,
        len(signature.entries),
        tuple(
            (len(entry.outer), len(entry.inner))
            for entry in signature.entries
        ),
    )


class TestCrossAdapterParity:
    def test_pair_scenario_parity(self):
        # --- threaded domain ------------------------------------------
        threaded_one = make_runtime()
        threaded_kinds_one = _collect_kinds(threaded_one)
        outcome_t1 = _run_threaded_pair(threaded_one)

        threaded_two = make_runtime(history=threaded_one.history)
        threaded_kinds_two = _collect_kinds(threaded_two)
        outcome_t2 = _run_threaded_pair(threaded_two)

        # --- aio domain ------------------------------------------------
        aio_one = make_aio_runtime()
        aio_kinds_one = _collect_kinds(aio_one)
        outcome_a1 = _run_aio_pair(aio_one)

        aio_two = make_aio_runtime(history=aio_one.history)
        aio_kinds_two = _collect_kinds(aio_two)
        outcome_a2 = _run_aio_pair(aio_two)

        # --- verdict parity -------------------------------------------
        assert outcome_t1["detected"] == outcome_a1["detected"] == 1
        assert outcome_t1["finished"] == outcome_a1["finished"] == ["ab"]
        assert outcome_t2["detected"] == outcome_a2["detected"] == 0
        assert (
            sorted(outcome_t2["finished"])
            == sorted(outcome_a2["finished"])
            == ["ab", "ba"]
        )

        # --- signature parity -----------------------------------------
        assert len(threaded_one.history) == len(aio_one.history) == 1
        threaded_sig = next(iter(threaded_one.history))
        aio_sig = next(iter(aio_one.history))
        assert _signature_shape(threaded_sig) == _signature_shape(aio_sig)

        # --- stats parity ---------------------------------------------
        assert threaded_one.stats.deadlocks_detected == 1
        assert aio_one.stats.deadlocks_detected == 1
        assert threaded_two.stats.yields == aio_two.stats.yields == 1
        assert (
            threaded_two.stats.yield_wakeups
            == aio_two.stats.yield_wakeups
            >= 1
        )

        # --- event-stream parity (kind for kind) ----------------------
        assert threaded_kinds_one == aio_kinds_one
        assert threaded_kinds_two == aio_kinds_two

    def test_histories_are_interchangeable_in_shape(self):
        """Both domains' antibodies deduplicate against each other when
        the program positions coincide (one shared scenario module)."""
        from repro.aio.scenarios import run_opposite_order_pair

        first = make_aio_runtime()
        asyncio.run(run_opposite_order_pair(first))
        second = make_aio_runtime(history=first.history)
        asyncio.run(run_opposite_order_pair(second))
        # Re-running with the shared history adds nothing new.
        assert len(second.history) == 1
