"""The opt-in asyncio patch: process-wide immunity for asyncio.Lock."""

from __future__ import annotations

import asyncio

from repro.aio import patch
from repro.aio.locks import AioDimmunixLock
from repro.aio.condition import AioDimmunixCondition
from repro.errors import DeadlockDetectedError
from tests.aio.conftest import make_aio_runtime


class TestPatchMechanics:
    def test_install_uninstall_round_trip(self):
        original_lock = asyncio.Lock
        original_condition = asyncio.Condition
        runtime = make_aio_runtime()
        try:
            patch.install(runtime)
            assert patch.is_installed()
            assert patch.installed_runtime() is runtime
            assert isinstance(asyncio.Lock(), AioDimmunixLock)
            assert isinstance(asyncio.Condition(), AioDimmunixCondition)
            assert isinstance(asyncio.locks.Lock(), AioDimmunixLock)
        finally:
            patch.uninstall()
        assert asyncio.Lock is original_lock
        assert asyncio.Condition is original_condition
        assert not patch.is_installed()

    def test_patched_names_are_classes(self):
        """isinstance() and subclassing keep working under the patch —
        asyncio.Lock is a real class in the stdlib, so the patched name
        must be one too (unlike the threading patch, whose stdlib
        counterpart is already a factory function)."""
        runtime = make_aio_runtime()
        with patch.immunized(runtime):
            lock = asyncio.Lock()
            assert isinstance(lock, asyncio.Lock)
            assert isinstance(asyncio.Condition(), asyncio.Condition)

            class AppLock(asyncio.Lock):
                pass

            assert isinstance(AppLock(), AioDimmunixLock)

    def test_immunized_context_manager_restores(self):
        original_lock = asyncio.Lock
        runtime = make_aio_runtime()
        with patch.immunized(runtime) as active:
            assert active is runtime
            assert asyncio.Lock is not original_lock
        assert asyncio.Lock is original_lock

    def test_internals_do_not_recurse(self):
        """Immunized wrappers keep working while the patch is active."""
        runtime = make_aio_runtime()

        async def scenario():
            lock = asyncio.Lock()  # patched: an AioDimmunixLock
            async with lock:
                assert lock.locked()

        with patch.immunized(runtime):
            asyncio.run(scenario())
        assert runtime.stats.acquisitions == 1


class TestPatchedDeadlock:
    def test_plain_asyncio_code_gets_immunity(self):
        """Unmodified asyncio.Lock code: deadlock detected, then avoided."""

        def pair_via_stdlib_names(runtime):
            outcome = {"finished": [], "detected": 0}

            async def drive():
                lock_a = asyncio.Lock()
                lock_b = asyncio.Lock()

                async def ab():
                    try:
                        async with lock_a:
                            await asyncio.sleep(0)
                            async with lock_b:
                                outcome["finished"].append("ab")
                    except DeadlockDetectedError:
                        outcome["detected"] += 1

                async def ba():
                    try:
                        async with lock_b:
                            await asyncio.sleep(0)
                            async with lock_a:
                                outcome["finished"].append("ba")
                    except DeadlockDetectedError:
                        outcome["detected"] += 1

                await asyncio.gather(
                    asyncio.ensure_future(ab()), asyncio.ensure_future(ba())
                )

            with patch.immunized(runtime):
                asyncio.run(drive())
            return outcome

        first_runtime = make_aio_runtime()
        first = pair_via_stdlib_names(first_runtime)
        assert first["detected"] == 1
        assert len(first_runtime.history) == 1

        second_runtime = make_aio_runtime(history=first_runtime.history)
        second = pair_via_stdlib_names(second_runtime)
        assert second["detected"] == 0
        assert sorted(second["finished"]) == ["ab", "ba"]
        assert second_runtime.stats.yields >= 1

    def test_default_runtime_binding(self):
        """install() without a runtime binds the process default."""
        from repro.aio.runtime import get_aio_runtime

        try:
            active = patch.install()
            assert active is get_aio_runtime()
        finally:
            patch.uninstall()
