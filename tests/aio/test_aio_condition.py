"""AioDimmunixCondition: waiter semantics + immunized reacquisition."""

from __future__ import annotations

import asyncio

import pytest

from tests.aio.conftest import make_aio_runtime


class TestConditionBasics:
    def test_wait_notify(self, aio_runtime):
        async def scenario():
            condition = aio_runtime.condition()
            state = []

            async def consumer():
                async with condition:
                    while not state:
                        await condition.wait()
                    return state[0]

            async def producer():
                await asyncio.sleep(0.01)
                async with condition:
                    state.append("ready")
                    condition.notify()

            result, _ = await asyncio.gather(consumer(), producer())
            assert result == "ready"

        asyncio.run(scenario())

    def test_wait_timeout_returns_false(self, aio_runtime):
        async def scenario():
            condition = aio_runtime.condition()
            async with condition:
                assert await condition.wait(timeout=0.02) is False

        asyncio.run(scenario())

    def test_non_positive_timeout_polls_without_suspending(self, aio_runtime):
        """The clamp: an expired deadline is one non-suspending poll."""

        async def scenario():
            condition = aio_runtime.condition()
            async with condition:
                started = asyncio.get_running_loop().time()
                assert await condition.wait(timeout=0.0) is False
                assert await condition.wait(timeout=-1.0) is False
                elapsed = asyncio.get_running_loop().time() - started
                assert elapsed < 0.5

        asyncio.run(scenario())

    def test_wait_for_expired_deadline_still_polls_predicate(
        self, aio_runtime
    ):
        async def scenario():
            condition = aio_runtime.condition()
            async with condition:
                assert await condition.wait_for(lambda: True, timeout=-5) is True
                assert (
                    await condition.wait_for(lambda: False, timeout=-5) is False
                )

        asyncio.run(scenario())

    def test_notify_all_wakes_everyone(self, aio_runtime):
        async def scenario():
            condition = aio_runtime.condition()
            woken = []

            async def waiter(tag: str):
                async with condition:
                    await condition.wait()
                    woken.append(tag)

            waiters = [
                asyncio.ensure_future(waiter(f"w{i}")) for i in range(3)
            ]
            await asyncio.sleep(0.01)
            async with condition:
                condition.notify_all()
            await asyncio.gather(*waiters)
            assert sorted(woken) == ["w0", "w1", "w2"]

        asyncio.run(scenario())

    def test_cancelled_notified_waiter_redispatches_the_notify(
        self, aio_runtime
    ):
        """A waiter cancelled in the same tick it was notified must pass
        the consumed wakeup to the next waiter — not swallow it (the
        lost-notification bug CPython fixed in 3.13's Condition)."""

        async def scenario():
            condition = aio_runtime.condition()
            woken = []

            async def waiter(tag: str):
                async with condition:
                    await condition.wait()
                    woken.append(tag)

            first = asyncio.ensure_future(waiter("first"))
            second = asyncio.ensure_future(waiter("second"))
            await asyncio.sleep(0.01)
            async with condition:
                condition.notify(1)  # consumes first's waiter future
                first.cancel()       # ... which will never act on it
            with pytest.raises(asyncio.CancelledError):
                await first
            # The notify must reach the second waiter, not vanish.
            await asyncio.wait_for(second, timeout=2.0)
            assert woken == ["second"]

        asyncio.run(scenario())

    def test_wait_without_lock_raises(self, aio_runtime):
        async def scenario():
            condition = aio_runtime.condition()
            with pytest.raises(RuntimeError):
                await condition.wait()

        asyncio.run(scenario())

    def test_notify_without_lock_raises(self, aio_runtime):
        async def scenario():
            condition = aio_runtime.condition()
            with pytest.raises(RuntimeError):
                condition.notify()

        asyncio.run(scenario())

    def test_wait_on_rlock_restores_recursion(self, aio_runtime):
        async def scenario():
            rlock = aio_runtime.rlock("nested")
            condition = aio_runtime.condition(rlock)

            async def signaller():
                await asyncio.sleep(0.01)
                async with condition:
                    condition.notify()

            async def waiter():
                async with rlock:
                    async with rlock:  # depth 2
                        assert await condition.wait(timeout=1.0) is True
                        assert rlock._count == 2
                    assert rlock._count == 1

            await asyncio.gather(waiter(), signaller())

        asyncio.run(scenario())

    def test_needs_lock_or_runtime(self):
        from repro.aio.condition import AioDimmunixCondition

        with pytest.raises(ValueError):
            AioDimmunixCondition()

    def test_raw_asyncio_lock_rejected_as_monitor(self, aio_runtime):
        """A raw asyncio.Lock (e.g. created before the patch) fails at
        construction, not with an AttributeError inside wait()."""
        with pytest.raises(TypeError, match="immunized monitor"):
            aio_runtime.condition(asyncio.Lock())

    def test_direct_acquire_clears_stale_marker(self, aio_runtime):
        """A task recovering from a lost reacquisition by awaiting
        acquire() directly gets normal release semantics back."""

        async def scenario():
            for lock in (aio_runtime.lock("m1"), aio_runtime.rlock("m2")):
                lock._lost_restore.mark(id(asyncio.current_task()))
                assert await lock.acquire()
                await lock.__aexit__(None, None, None)  # must release
                assert not lock.locked()

        asyncio.run(scenario())


class TestImmunizedReacquisition:
    def test_reacquisition_goes_through_engine(self, aio_runtime):
        """The §3.2 property: wait()'s reacquire emits engine events."""

        async def scenario():
            condition = aio_runtime.condition()

            async def signaller():
                await asyncio.sleep(0.01)
                async with condition:
                    condition.notify()

            async def waiter():
                async with condition:
                    requests_before = aio_runtime.stats.requests
                    await condition.wait(timeout=1.0)
                    # release + park + reacquire: the reacquisition shows
                    # up as a fresh engine request.
                    assert aio_runtime.stats.requests > requests_before

            await asyncio.gather(waiter(), signaller())

        asyncio.run(scenario())

    def test_detection_during_reacquire_propagates_cleanly(self, aio_runtime):
        """§3.2 under RAISE: a wait()-induced inversion detected at the
        monitor reacquisition must surface as DeadlockDetectedError —
        not be masked by the enclosing ``async with`` releasing an
        unheld monitor."""
        from repro.errors import DeadlockDetectedError

        async def scenario():
            outer = aio_runtime.lock("outer-L")
            condition = aio_runtime.condition()
            outcome = {}

            async def waiter():
                await outer.acquire()
                try:
                    async with condition:
                        # Releases the monitor, parks, times out, then
                        # reacquires — closing the cycle with peer().
                        await condition.wait(timeout=0.05)
                except DeadlockDetectedError:
                    outcome["waiter"] = "detected"
                finally:
                    outer.release()

            async def peer():
                await asyncio.sleep(0.01)
                async with condition:
                    # Holds the monitor while wanting outer-L: the
                    # waiter's reacquisition completes the inversion.
                    async with outer:
                        outcome["peer"] = "ok"

            await asyncio.gather(waiter(), peer())
            return outcome

        outcome = asyncio.run(scenario())
        assert outcome == {"waiter": "detected", "peer": "ok"}
        assert len(aio_runtime.history) == 1

    def test_nested_monitor_exits_all_skip_after_lost_reacquire(
        self, aio_runtime
    ):
        """One lost reacquisition must make *every* nested ``async
        with`` exit skip its release (sticky marker until reacquire)."""
        from repro.errors import DeadlockDetectedError

        async def scenario():
            outer = aio_runtime.lock("outer-L")
            monitor = aio_runtime.rlock("nested-monitor")
            condition = aio_runtime.condition(monitor)
            outcome = {}

            async def waiter():
                await outer.acquire()
                try:
                    async with monitor:
                        async with monitor:  # depth 2
                            await condition.wait(timeout=0.05)
                except DeadlockDetectedError:
                    outcome["waiter"] = "detected"
                finally:
                    outer.release()

            async def peer():
                await asyncio.sleep(0.01)
                async with monitor:
                    async with outer:
                        outcome["peer"] = "ok"

            await asyncio.gather(waiter(), peer())
            return outcome

        outcome = asyncio.run(scenario())
        assert outcome == {"waiter": "detected", "peer": "ok"}

    def test_break_denial_surfaces_instead_of_corrupting(self):
        """Under BREAK a denied reacquisition cannot return normally
        (the monitor would be unheld behind wait()'s back): it surfaces
        as DeadlockDetectedError and the monitor is marked lost."""
        from repro.config import DetectionPolicy
        from repro.errors import DeadlockDetectedError
        from tests.aio.conftest import make_aio_runtime

        runtime = make_aio_runtime(detection_policy=DetectionPolicy.BREAK)

        async def scenario():
            outer = runtime.lock("outer-L")
            condition = runtime.condition()
            outcome = {}

            async def waiter():
                await outer.acquire()
                try:
                    async with condition:
                        await condition.wait(timeout=0.05)
                        outcome["waiter"] = "returned"
                except DeadlockDetectedError as error:
                    outcome["waiter"] = "denied"
                    assert "reacquisition denied" in str(error)
                finally:
                    outer.release()

            async def peer():
                await asyncio.sleep(0.01)
                async with condition:
                    async with outer:
                        outcome["peer"] = "ok"

            await asyncio.gather(waiter(), peer())
            return outcome

        outcome = asyncio.run(scenario())
        assert outcome == {"waiter": "denied", "peer": "ok"}

    def test_cancelled_wait_still_reacquires_then_raises(self, aio_runtime):
        async def scenario():
            condition = aio_runtime.condition()

            async def waiter():
                async with condition:
                    await condition.wait()

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The monitor was reacquired then released on unwind: free.
            assert not condition.locked()
            assert aio_runtime.core.snapshot().blocked == 0

        asyncio.run(scenario())
