"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys

import pytest

from repro.config import DetectionPolicy, DimmunixConfig
from repro.runtime.runtime import DimmunixRuntime, reset_runtime


@pytest.fixture(autouse=True)
def _fast_gil_switching():
    """Shorten GIL slices so multi-thread tests interleave promptly."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    yield
    sys.setswitchinterval(previous)


@pytest.fixture(autouse=True)
def _fresh_default_runtime():
    """Isolate tests that touch the process-default runtime."""
    reset_runtime()
    yield
    reset_runtime()


@pytest.fixture
def raise_config() -> DimmunixConfig:
    """The test-friendly config: detection raises instead of hanging."""
    return DimmunixConfig(
        detection_policy=DetectionPolicy.RAISE, yield_timeout=1.0
    )


@pytest.fixture
def runtime(raise_config) -> DimmunixRuntime:
    return DimmunixRuntime(raise_config, name="test")


def make_runtime(history=None, **overrides) -> DimmunixRuntime:
    """Helper for tests needing several runtimes sharing a history."""
    config = DimmunixConfig(
        detection_policy=DetectionPolicy.RAISE, yield_timeout=1.0
    ).evolve(**overrides)
    return DimmunixRuntime(config, history=history, name="test")
