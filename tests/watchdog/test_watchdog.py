"""The liveness watchdog: detectors, escalation ladder, mitigation.

The deterministic half drives :meth:`LivenessWatchdog.scan_once` by hand
(``autostart=False``, caller-supplied ``now_ns``) so every threshold is
exact; the scenario half runs the real scanner thread against the
livelock pack in :mod:`repro.workloads.livelock`.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.config import DimmunixConfig, WatchdogPolicy
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore
from repro.core.events import EventCounter, RequestEvent, YieldEvent
from repro.watchdog import LivenessWatchdog


def stack(line: int) -> CallStack:
    return CallStack.single("wd.py", line)


class EventLog:
    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event)

    def of_kind(self, kind):
        return [event for event in self.events if event.kind == kind]


def manual_watchdog(config=None, **config_kwargs):
    """A core + non-threaded watchdog, scanned only by the test."""
    if config is None:
        config = DimmunixConfig(
            yield_timeout=None,
            auto_save=False,
            watchdog_scan_interval=0.05,
            watchdog_stall_age=0.5,
            watchdog_storm_window=1.0,
            watchdog_storm_ratio=4,
            **config_kwargs,
        )
    core = DimmunixCore(config, source="wdtest")
    watchdog = LivenessWatchdog(core, autostart=False)
    return core, watchdog


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------

class TestConfig:
    @pytest.mark.parametrize(
        "field", ["watchdog_scan_interval", "watchdog_stall_age",
                  "watchdog_storm_window"]
    )
    def test_intervals_must_be_positive(self, field):
        with pytest.raises(ValueError, match="must be positive"):
            DimmunixConfig(**{field: 0})

    def test_storm_ratio_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="watchdog_storm_ratio"):
            DimmunixConfig(watchdog_storm_ratio=0)

    def test_policy_coerces_from_string(self):
        config = DimmunixConfig(watchdog_policy="break_youngest")
        assert config.watchdog_policy is WatchdogPolicy.BREAK_YOUNGEST

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            DimmunixConfig(watchdog_policy="panic")

    def test_default_is_off(self):
        config = DimmunixConfig()
        assert config.watchdog is False
        assert config.watchdog_policy is WatchdogPolicy.REPORT
        core = DimmunixCore(config)
        assert core.watchdog is None


# ----------------------------------------------------------------------
# the stall detector (deterministic scans)
# ----------------------------------------------------------------------

class TestStallDetector:
    def test_old_waiter_is_suspected_with_report(self):
        core, watchdog = manual_watchdog()
        log = EventLog()
        core.events.subscribe(log, kinds=("livelock-suspected",))
        holder = core.register_thread("holder")
        waiter = core.register_thread("waiter")
        lock = core.register_lock("A")
        core.request(holder, lock, stack(1))
        core.acquired(holder, lock)
        core.request(waiter, lock, stack(2))
        since = waiter.request_since_ns

        # Younger than the threshold: nothing fires, age is tracked.
        report = watchdog.scan_once(now_ns=since + 100)
        assert report is None
        assert watchdog.oldest_waiter_age_ns == 100
        assert not log.events

        # Crossing watchdog_stall_age fires on that very scan.
        report = watchdog.scan_once(now_ns=since + 600_000_000)
        assert report is not None
        (event,) = log.of_kind("livelock-suspected")
        assert event.thread == "waiter"
        assert event.reason == "stall"
        assert event.age_ns == 600_000_000
        assert event.scan == 2
        # The structured stall report: suspects + the RAG fragment.
        (suspect,) = event.report["suspects"]
        assert suspect["node"] == "waiter"
        assert suspect["reason"] == "stall"
        rag = event.report["rag"]
        assert any(entry["name"] == "waiter" for entry in rag["threads"])
        assert ("request", "waiter", "A") in {
            (edge["kind"], edge["from"], edge["to"])
            for edge in rag["edges"]
        }
        assert any(entry["name"] == "A" for entry in rag["locks"])
        assert event.report["oldest_waiter_age_ns"] == 600_000_000
        assert core.stats.livelock_suspects == 1

    def test_ladder_escalates_then_rearms(self):
        core, watchdog = manual_watchdog()
        log = EventLog()
        core.events.subscribe(
            log, kinds=("livelock-suspected", "watchdog-mitigation")
        )
        holder = core.register_thread("holder")
        waiter = core.register_thread("waiter")
        lock = core.register_lock("A")
        core.request(holder, lock, stack(1))
        core.acquired(holder, lock)
        core.request(waiter, lock, stack(2))
        since = waiter.request_since_ns
        second = 1_000_000_000

        watchdog.scan_once(now_ns=since + second)  # observe -> suspect
        watchdog.scan_once(now_ns=since + 2 * second)  # persist -> mitigate
        (mitigation,) = log.of_kind("watchdog-mitigation")
        assert mitigation.thread == "waiter"
        assert mitigation.policy == "report"
        assert mitigation.action == "reported"
        assert core.stats.watchdog_mitigations == 1
        # Mitigated entries sit out _REARM_SCANS scans, then re-escalate.
        watchdog.scan_once(now_ns=since + 3 * second)
        assert core.stats.watchdog_mitigations == 1
        watchdog.scan_once(now_ns=since + 4 * second)  # re-armed
        watchdog.scan_once(now_ns=since + 5 * second)  # persists again
        assert core.stats.watchdog_mitigations == 2
        # Suspicion is edge-triggered: still exactly one suspect event.
        assert len(log.of_kind("livelock-suspected")) == 1

    def test_progress_clears_the_ladder(self):
        core, watchdog = manual_watchdog()
        holder = core.register_thread("holder")
        waiter = core.register_thread("waiter")
        lock = core.register_lock("A")
        core.request(holder, lock, stack(1))
        core.acquired(holder, lock)
        core.request(waiter, lock, stack(2))
        since = waiter.request_since_ns
        watchdog.scan_once(now_ns=since + 1_000_000_000)
        assert watchdog.health()["suspected_now"] == 1

        core.release(holder, lock)
        core.acquired(waiter, lock)  # stamp cleared: progress
        watchdog.scan_once(now_ns=since + 2_000_000_000)
        assert watchdog.health()["suspected_now"] == 0
        assert watchdog.oldest_waiter_age_ns == 0
        assert core.stats.watchdog_mitigations == 0


# ----------------------------------------------------------------------
# the storm detector (synthetic event windows)
# ----------------------------------------------------------------------

class TestStormDetector:
    def _publish(self, core, kinds, *, thread="spinner", base_ns=10_000):
        for offset, (cls, kind) in enumerate(kinds):
            core.events.publish(
                cls(
                    source=core.source,
                    thread=thread,
                    ts_ns=base_ns + offset,
                )
            )

    def test_requests_without_acquires_are_a_spin(self):
        core, watchdog = manual_watchdog()
        log = EventLog()
        core.events.subscribe(log, kinds=("livelock-suspected",))
        self._publish(
            core, [(RequestEvent, "request")] * 4, base_ns=10_000
        )
        watchdog.scan_once(now_ns=20_000)
        (event,) = log.events
        assert event.reason == "try-lock-spin"
        assert event.report["suspects"][0]["window"]["request"] == 4

    def test_yields_classify_as_yield_storm(self):
        core, watchdog = manual_watchdog()
        log = EventLog()
        core.events.subscribe(log, kinds=("livelock-suspected",))
        self._publish(
            core,
            [(RequestEvent, "request"), (YieldEvent, "yield")] * 2,
            base_ns=10_000,
        )
        watchdog.scan_once(now_ns=20_000)
        (event,) = log.events
        assert event.reason == "yield-storm"

    def test_any_acquisition_in_window_means_progress(self):
        from repro.core.events import AcquiredEvent

        core, watchdog = manual_watchdog()
        log = EventLog()
        core.events.subscribe(log, kinds=("livelock-suspected",))
        self._publish(
            core, [(RequestEvent, "request")] * 8, base_ns=10_000
        )
        core.events.publish(
            AcquiredEvent(
                source=core.source, thread="spinner", ts_ns=10_100
            )
        )
        watchdog.scan_once(now_ns=20_000)
        assert not log.events

    def test_window_expires_old_events(self):
        core, watchdog = manual_watchdog()
        log = EventLog()
        core.events.subscribe(log, kinds=("livelock-suspected",))
        self._publish(
            core, [(RequestEvent, "request")] * 8, base_ns=10_000
        )
        # Scan far past the storm window: the deque drains, no suspect.
        watchdog.scan_once(now_ns=10_000 + 2_000_000_000)
        assert not log.events
        assert watchdog.health()["tracked_nodes"] == 0

    def test_foreign_source_events_are_ignored(self):
        core, watchdog = manual_watchdog()
        log = EventLog()
        core.events.subscribe(log, kinds=("livelock-suspected",))
        for offset in range(8):
            core.events.publish(
                RequestEvent(
                    source="someone-else",
                    thread="spinner",
                    ts_ns=10_000 + offset,
                )
            )
        watchdog.scan_once(now_ns=20_000)
        assert not log.events


# ----------------------------------------------------------------------
# break_youngest (engine-level, deterministic)
# ----------------------------------------------------------------------

class TestBreakYoungest:
    def _yielding_core(self):
        """A core where t1 is parked by avoidance (yield verdict)."""
        seed = DimmunixCore(
            DimmunixConfig(yield_timeout=None, starvation_detection=False)
        )
        t1, t2 = seed.register_thread("t1"), seed.register_thread("t2")
        a, b = seed.register_lock("A"), seed.register_lock("B")
        seed.request(t1, a, stack(10))
        seed.acquired(t1, a)
        seed.request(t2, b, stack(20))
        seed.acquired(t2, b)
        seed.request(t1, b, stack(11))
        assert seed.request(t2, a, stack(21)).detected is not None

        config = DimmunixConfig(
            yield_timeout=None,
            starvation_detection=False,
            auto_save=False,
            watchdog_policy="break_youngest",
            watchdog_stall_age=0.5,
        )
        core = DimmunixCore(
            config, history=seed.history, source="wdbreak"
        )
        t1 = core.register_thread("t1")
        t2 = core.register_thread("t2")
        a = core.register_lock("A")
        b = core.register_lock("B")
        core.request(t2, b, stack(20))
        core.acquired(t2, b)
        result = core.request(t1, a, stack(10))
        assert result.verdict.value == "yield"
        return core, t1

    def test_bypass_granted_to_parked_suspect(self):
        import threading

        core, parked = self._yielding_core()
        watchdog = LivenessWatchdog(core, autostart=False)
        watchdog.bind_glock(threading.Lock())
        log = EventLog()
        core.events.subscribe(
            log, kinds=("watchdog-mitigation", "starvation")
        )
        since = parked.request_since_ns
        assert since is not None  # a parked yield keeps its stamp
        watchdog.scan_once(now_ns=since + 1_000_000_000)
        watchdog.scan_once(now_ns=since + 2_000_000_000)

        (mitigation,) = log.of_kind("watchdog-mitigation")
        assert mitigation.action == "bypass-granted"
        assert mitigation.policy == "break_youngest"
        assert mitigation.thread == "t1"
        # The override rode the starvation machinery, attributed to us.
        (starvation,) = log.of_kind("starvation")
        assert starvation.trigger == "watchdog"
        assert parked.bypass  # the one-shot pass is armed

    def test_without_glock_mitigation_is_noop(self):
        core, parked = self._yielding_core()
        watchdog = LivenessWatchdog(core, autostart=False)
        log = EventLog()
        core.events.subscribe(log, kinds=("watchdog-mitigation",))
        since = parked.request_since_ns
        watchdog.scan_once(now_ns=since + 1_000_000_000)
        watchdog.scan_once(now_ns=since + 2_000_000_000)
        (mitigation,) = log.of_kind("watchdog-mitigation")
        assert mitigation.action == "no-op"
        assert not parked.bypass


# ----------------------------------------------------------------------
# engine + session lifecycle
# ----------------------------------------------------------------------

class TestLifecycle:
    def test_engine_attaches_and_detaches(self):
        core = DimmunixCore(
            DimmunixConfig(watchdog=True, auto_save=False)
        )
        watchdog = core.watchdog
        assert watchdog is not None
        assert watchdog._worker.is_alive()
        core.detach_events()
        assert core.watchdog is None
        assert not watchdog._worker.is_alive()
        watchdog.close()  # idempotent

    def test_adapter_binds_glock(self):
        dx = repro.Dimmunix(
            config=DimmunixConfig(watchdog=True, auto_save=False)
        )
        runtime = dx.runtime()
        assert runtime.core.watchdog._glock is runtime.adapter._glock
        dx.close()

    def test_session_health_merges_cores(self):
        dx = repro.Dimmunix(
            config=DimmunixConfig(
                watchdog=True, auto_save=False,
                watchdog_scan_interval=0.02,
            )
        )
        runtime = dx.runtime()
        with runtime.lock("h"):
            pass
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if runtime.core.watchdog.scans:
                break
            time.sleep(0.01)
        health = dx.health()
        assert health["watchdog"] is True
        assert health["scans"] >= 1
        assert health["suspected_now"] == 0
        assert "dimmunix/runtime" in health["cores"]
        report = dx.telemetry_report()
        assert report["gauges"]["watchdog_scans"] >= 1
        assert report["gauges"]["livelock_suspected_now"] == 0
        dx.close()

    def test_health_without_watchdog_still_reports_oldest_waiter(self):
        dx = repro.Dimmunix(config=DimmunixConfig(auto_save=False))
        runtime = dx.runtime()
        with runtime.lock("h"):
            health = dx.health()
        assert health["watchdog"] is False
        assert health["suspected_now"] == 0
        assert "gauges" not in dx.telemetry_report()
        dx.close()


# ----------------------------------------------------------------------
# the livelock pack (real scanner thread)
# ----------------------------------------------------------------------

def watchdog_session(**overrides):
    defaults = dict(
        watchdog=True,
        watchdog_scan_interval=0.05,
        watchdog_stall_age=0.15,
        watchdog_storm_window=0.5,
        watchdog_storm_ratio=4,
        yield_timeout=None,
        auto_save=False,
    )
    defaults.update(overrides)
    return repro.Dimmunix(config=DimmunixConfig(**defaults))


class TestLivelockScenarios:
    def test_pingpong_is_suspected_within_three_scans(self):
        from repro.workloads.livelock import run_pingpong_yield_storm

        dx = watchdog_session()
        counter = EventCounter()
        log = EventLog()
        dx.events.subscribe(counter)
        dx.events.subscribe(log, kinds=("livelock-suspected",))
        runtime = dx.runtime()
        watchdog = runtime.core.watchdog
        scans_before = watchdog.scans
        outcome = run_pingpong_yield_storm(
            runtime,
            until=lambda: counter.counts.get("livelock-suspected", 0) > 0,
            duration=10.0,
        )
        assert outcome.seeded
        suspects = log.of_kind("livelock-suspected")
        assert suspects, "watchdog never suspected the parked victim"
        first = suspects[0]
        assert first.thread == "pingpong-victim"
        assert first.report["suspects"]
        # Acceptance bound: suspicion within 3 scan periods of the storm
        # qualifying. The storm ratio (4) fills within one window, so at
        # most ~storm-fill + 3 scans may elapse before the event.
        scans_used = first.scan - scans_before
        fill_scans = (
            dx.config.watchdog_storm_window
            / dx.config.watchdog_scan_interval
        )
        assert scans_used <= fill_scans + 3
        # Storm stopped on suspicion; the victim then drains on its own.
        assert outcome.victim_completed
        dx.close()

    def test_break_youngest_unsticks_pingpong(self):
        from repro.workloads.livelock import run_pingpong_yield_storm

        dx = watchdog_session(watchdog_policy="break_youngest")
        log = EventLog()
        dx.events.subscribe(
            log, kinds=("watchdog-mitigation", "starvation")
        )
        runtime = dx.runtime()
        outcome = run_pingpong_yield_storm(runtime, duration=15.0)
        assert outcome.seeded
        # The victim got through while the neighbor was still churning:
        # only the watchdog's bypass can do that.
        assert outcome.unstuck_during_storm
        assert outcome.victim_completed
        granted = [
            event
            for event in log.of_kind("watchdog-mitigation")
            if event.action == "bypass-granted"
        ]
        assert granted and granted[0].thread == "pingpong-victim"
        assert any(
            event.trigger == "watchdog"
            for event in log.of_kind("starvation")
        )
        dx.close()

    def test_trylock_spin_pair_is_suspected(self):
        from repro.workloads.livelock import run_trylock_spin_pair

        dx = watchdog_session(watchdog_stall_age=5.0)
        counter = EventCounter()
        log = EventLog()
        dx.events.subscribe(counter)
        dx.events.subscribe(log, kinds=("livelock-suspected",))
        runtime = dx.runtime()
        outcome = run_trylock_spin_pair(
            runtime,
            until=lambda: counter.counts.get("livelock-suspected", 0) > 0,
            duration=10.0,
        )
        assert outcome.completed
        assert outcome.spins >= dx.config.watchdog_storm_ratio
        suspects = log.of_kind("livelock-suspected")
        assert suspects
        # A try-lock never waits, so spins surface through the window
        # detector (spin, or yield-storm once avoidance joins in).
        assert suspects[0].reason in ("try-lock-spin", "yield-storm")
        assert suspects[0].report["suspects"]
        dx.close()

    def test_aio_greedy_holder_is_suspected(self):
        import asyncio

        from repro.workloads.livelock import run_aio_greedy_holder

        dx = watchdog_session()
        counter = EventCounter()
        log = EventLog()
        dx.events.subscribe(counter)
        dx.events.subscribe(log, kinds=("livelock-suspected",))
        aio = dx.aio()

        async def main():
            return await run_aio_greedy_holder(
                aio,
                until=lambda: counter.counts.get(
                    "livelock-suspected", 0
                ) > 0,
                duration=10.0,
            )

        outcome = asyncio.run(main())
        assert outcome.starved_completed
        suspects = log.of_kind("livelock-suspected")
        assert suspects
        assert suspects[0].thread == "aio-starved-waiter"
        assert suspects[0].reason == "stall"
        assert suspects[0].report["suspects"]
        dx.close()


class TestZeroFalsePositives:
    """The full healthy packs, watchdog on: no suspicion, ever."""

    def test_threaded_pack_is_clean(self):
        from repro.workloads.scenarios import run_dining_philosophers

        dx = watchdog_session(
            watchdog_stall_age=1.0, yield_timeout=2.0
        )
        runtime = dx.runtime()
        outcome = run_dining_philosophers(
            runtime, philosophers=4, meals=3
        )
        assert outcome.completed
        # A second, immunized dinner runs on avoidance (yields/resumes)
        # — the storm detector must read that churn as progress.
        immunized = run_dining_philosophers(
            runtime, philosophers=4, meals=3
        )
        assert immunized.completed
        assert dx.stats.livelock_suspects == 0
        assert dx.stats.watchdog_mitigations == 0
        dx.close()

    def test_aio_pack_is_clean(self):
        import asyncio

        from repro.aio.scenarios import (
            run_async_dining_philosophers,
            run_opposite_order_pair,
        )

        dx = watchdog_session(
            watchdog_stall_age=1.0, yield_timeout=2.0
        )
        aio = dx.aio()

        async def main():
            outcome = await run_async_dining_philosophers(
                aio, philosophers=4, meals=3
            )
            assert outcome.completed
            await run_opposite_order_pair(aio)

        asyncio.run(main())
        assert dx.stats.livelock_suspects == 0
        assert dx.stats.watchdog_mitigations == 0
        dx.close()
