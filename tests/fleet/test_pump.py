"""SyncPump: triggers, telemetry, and the stats/event wiring."""

from __future__ import annotations

import time

from repro.api import Dimmunix
from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore
from repro.core.events import EventBus, EventLog
from repro.core.history import open_history
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.fleet.pump import SyncPump
from repro.fleet.remote import RemoteStore


def stack(line):
    return CallStack.single("pump.py", line)


def sig(outer_a=1, outer_b=3):
    return DeadlockSignature(
        [
            SignatureEntry(stack(outer_a), stack(outer_a + 1)),
            SignatureEntry(stack(outer_b), stack(outer_b + 1)),
        ]
    )


def drive_abba(core):
    t1 = core.register_thread("t1")
    t2 = core.register_thread("t2")
    a = core.register_lock("a")
    b = core.register_lock("b")
    core.request(t1, a, stack(10))
    core.acquired(t1, a)
    core.request(t2, b, stack(20))
    core.acquired(t2, b)
    core.request(t1, b, stack(11))
    result = core.request(t2, a, stack(21))
    assert result.detected is not None


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestTriggers:
    def test_sync_now_pulls_sibling_antibodies(self, tmp_path):
        db = tmp_path / "pool.db"
        sibling = open_history(f"sqlite://{db}")
        sibling.add(sig())
        sibling.flush()
        mine = open_history(f"sqlite://{db}")
        # Opened after the sibling flushed? Then it already has the
        # signature — so write one more to make the pull observable.
        sibling.add(sig(outer_a=5))
        sibling.flush()
        pump = SyncPump(mine, EventBus())
        assert pump.sync_now() == 1
        assert mine.contains(sig(outer_a=5))
        pump.close()
        mine.close()
        sibling.close()

    def test_saved_event_kicks_a_cycle(self, tmp_path):
        db = tmp_path / "pool.db"
        sibling = open_history(f"sqlite://{db}")
        bus = EventBus()
        mine = open_history(f"sqlite://{db}")
        mine.bind_events(bus, "mine")
        pump = SyncPump(mine, bus)  # no period: event-driven only
        sibling.add(sig(outer_a=1))
        sibling.flush()
        # Our own flush is the trigger: "we just saved, the fleet may
        # have news too."
        mine.add(sig(outer_a=5))
        mine.flush()
        assert wait_until(lambda: mine.contains(sig(outer_a=1)))
        assert pump.pulls >= 1
        pump.close()
        mine.close()
        sibling.close()

    def test_periodic_cycle_converges_a_quiet_process(self, tmp_path):
        db = tmp_path / "pool.db"
        sibling = open_history(f"sqlite://{db}")
        mine = open_history(f"sqlite://{db}")
        pump = SyncPump(mine, EventBus(), interval=0.02)
        sibling.add(sig())
        sibling.flush()
        # 'mine' never records or flushes anything — only the period
        # can bring the antibody in.
        assert wait_until(lambda: mine.contains(sig()))
        pump.close()
        mine.close()
        sibling.close()

    def test_kick_requests_a_cycle(self, tmp_path):
        db = tmp_path / "pool.db"
        sibling = open_history(f"sqlite://{db}")
        mine = open_history(f"sqlite://{db}")
        pump = SyncPump(mine, EventBus())
        sibling.add(sig())
        sibling.flush()
        pump.kick()
        assert wait_until(lambda: mine.contains(sig()))
        pump.close()
        mine.close()
        sibling.close()


class TestTelemetry:
    def test_eventful_cycle_publishes_fleet_sync(self, tmp_path):
        db = tmp_path / "pool.db"
        sibling = open_history(f"sqlite://{db}")
        mine = open_history(f"sqlite://{db}")
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log, kinds=("fleet-sync",))
        pump = SyncPump(mine, bus, source="svc")
        sibling.add(sig())
        sibling.flush()
        assert pump.sync_now() == 1
        (event,) = log.events
        assert event.kind == "fleet-sync"
        assert event.source == "svc"
        assert event.pulled == 1
        assert event.trigger == "manual"
        pump.close()
        mine.close()
        sibling.close()

    def test_idle_cycle_stays_off_the_event_stream(self, tmp_path):
        mine = open_history(f"sqlite://{tmp_path / 'pool.db'}")
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log, kinds=("fleet-sync",))
        pump = SyncPump(mine, bus)
        assert pump.sync_now() == 0
        assert not log.events
        pump.close()
        mine.close()

    def test_unreachable_fleet_is_counted_not_raised(self, tmp_path):
        store = RemoteStore(
            "127.0.0.1",
            1,  # nothing listens here
            timeout=1.0,
            retry_attempts=1,
            spill_path=tmp_path / "spill.history",
        )
        from repro.core.history import History

        mine = History(store=store)
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log, kinds=("fleet-sync",))
        pump = SyncPump(mine, bus)
        assert pump.sync_now() == 0  # survives the outage
        assert pump.failures == 1
        (event,) = log.events
        assert event.failures >= 1
        pump.close()
        mine.close()

    def test_memory_history_is_a_noop(self):
        from repro.core.history import History

        pump = SyncPump(History(), EventBus())
        assert pump.sync_now() == 0
        assert pump.cycles == 0  # refresh-less store: no cycle at all
        pump.close()

    def test_close_is_idempotent(self, tmp_path):
        mine = open_history(f"sqlite://{tmp_path / 'pool.db'}")
        pump = SyncPump(mine, EventBus())
        pump.close()
        pump.close()
        assert not pump._worker.is_alive()
        mine.close()


class TestEngineWiring:
    def test_engine_attaches_pump_for_shared_backend(self, tmp_path):
        core = DimmunixCore(
            DimmunixConfig(
                yield_timeout=None,
                history_url=f"sqlite://{tmp_path / 'pool.db'}",
                fleet_sync_interval=30.0,
            ),
            persistence_mode="deferred",
        )
        assert core.history.sync_pump is not None
        core.detach_events()
        assert core.history.sync_pump is None

    def test_no_pump_without_interval(self, tmp_path):
        core = DimmunixCore(
            DimmunixConfig(
                yield_timeout=None,
                history_url=f"sqlite://{tmp_path / 'pool.db'}",
            ),
            persistence_mode="deferred",
        )
        assert core.history.sync_pump is None
        core.detach_events()

    def test_no_pump_for_refreshless_backend(self, tmp_path):
        core = DimmunixCore(
            DimmunixConfig(
                yield_timeout=None,
                history_path=tmp_path / "h.history",
                fleet_sync_interval=30.0,
            ),
            persistence_mode="deferred",
        )
        assert core.history.sync_pump is None
        core.detach_events()

    def test_sync_counters_reach_engine_stats(self, tmp_path):
        db = tmp_path / "pool.db"
        earner = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_url=f"sqlite://{db}"),
            persistence_mode="deferred",
        )
        drive_abba(earner)
        earner.flush_history()
        follower = DimmunixCore(
            DimmunixConfig(
                yield_timeout=None,
                history_url=f"sqlite://{db}",
                fleet_sync_interval=30.0,
            ),
            persistence_mode="deferred",
            source="follower",
        )
        earner.detach_events()
        # The earner's antibody arrived at follower construction; earn
        # another one to give the pump something to pull.
        refresher = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_url=f"sqlite://{db}"),
            persistence_mode="deferred",
            source="earner2",
        )
        t1 = refresher.register_thread("t1")
        t2 = refresher.register_thread("t2")
        a = refresher.register_lock("a")
        b = refresher.register_lock("b")
        refresher.request(t1, a, stack(110))
        refresher.acquired(t1, a)
        refresher.request(t2, b, stack(120))
        refresher.acquired(t2, b)
        refresher.request(t1, b, stack(111))
        assert refresher.request(t2, a, stack(121)).detected is not None
        refresher.flush_history()
        assert follower.history.sync_pump.sync_now() == 1
        assert follower.stats.sync_pulls == 1
        assert follower.stats.sync_failures == 0
        follower.detach_events()
        refresher.detach_events()


class TestFacade:
    def test_session_sync_uses_pump_when_attached(self, tmp_path):
        db = tmp_path / "pool.db"
        sibling = open_history(f"sqlite://{db}")
        session = Dimmunix(
            DimmunixConfig(
                history_url=f"sqlite://{db}", fleet_sync_interval=30.0
            )
        )
        session.runtime()
        sibling.add(sig())
        sibling.flush()
        assert session.sync() == 1
        assert session.history.contains(sig())
        assert session.stats.sync_pulls == 1
        session.close()
        assert session.history.sync_pump is None
        sibling.close()

    def test_session_sync_without_pump_refreshes_directly(self, tmp_path):
        db = tmp_path / "pool.db"
        sibling = open_history(f"sqlite://{db}")
        session = Dimmunix(DimmunixConfig(history_url=f"sqlite://{db}"))
        sibling.add(sig())
        sibling.flush()
        assert session.sync() == 1
        session.close()
        sibling.close()

    def test_session_sync_on_memory_history_is_zero(self):
        session = Dimmunix(DimmunixConfig())
        assert session.sync() == 0
        session.close()
