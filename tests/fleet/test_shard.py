"""ShardedStore: placement stability, metadata discipline, sharing."""

from __future__ import annotations

import json

import pytest

from repro.core.callstack import CallStack
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.core.store import open_store
from repro.errors import HistoryFormatError
from repro.fleet.shard import DEFAULT_SHARDS, ShardedStore, shard_index


def sig(outer_a=1, outer_b=3):
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("sh.py", outer_a),
                CallStack.single("sh.py", outer_a + 1),
            ),
            SignatureEntry(
                CallStack.single("sh.py", outer_b),
                CallStack.single("sh.py", outer_b + 1),
            ),
        ]
    )


class TestPlacement:
    def test_hash_is_deterministic(self):
        # Same canonical key, fresh objects: the whole fleet must agree.
        assert shard_index(sig(), 8) == shard_index(sig(), 8)

    def test_signatures_spread_across_shards(self, tmp_path):
        store = ShardedStore(tmp_path / "pool", shards=4)
        for line in range(0, 64, 2):
            store.add(sig(outer_a=line, outer_b=line + 1))
        store.flush()
        populated = sum(1 for child in store._shards if len(child))
        assert populated >= 2  # crc32 spreads 32 keys over 4 shards
        store.close()

    def test_rows_land_in_the_hashed_shard(self, tmp_path):
        store = ShardedStore(tmp_path / "pool", shards=4)
        signature = sig()
        store.add(signature)
        store.flush()
        owner = shard_index(signature, 4)
        for index, child in enumerate(store._shards):
            assert len(child) == (1 if index == owner else 0)
        store.close()


class TestMetadata:
    def test_default_shard_count(self, tmp_path):
        store = ShardedStore(tmp_path / "pool")
        assert store.shard_count == DEFAULT_SHARDS
        store.close()

    def test_reopen_needs_no_parameter(self, tmp_path):
        store = ShardedStore(tmp_path / "pool", shards=3)
        store.add(sig())
        store.flush()
        store.close()
        reopened = open_store(f"shard://{tmp_path / 'pool'}")
        assert reopened.shard_count == 3
        assert len(reopened) == 1
        reopened.close()

    def test_mismatched_parameter_is_loud(self, tmp_path):
        ShardedStore(tmp_path / "pool", shards=3).close()
        with pytest.raises(HistoryFormatError, match="migrate"):
            ShardedStore(tmp_path / "pool", shards=5)

    def test_corrupt_meta_is_loud(self, tmp_path):
        pool = tmp_path / "pool"
        pool.mkdir()
        (pool / "fleet-meta.json").write_text("{torn")
        with pytest.raises(HistoryFormatError, match="corrupt"):
            ShardedStore(pool)

    def test_foreign_meta_is_loud(self, tmp_path):
        pool = tmp_path / "pool"
        pool.mkdir()
        (pool / "fleet-meta.json").write_text(
            json.dumps({"format": "something-else", "shards": 2})
        )
        with pytest.raises(HistoryFormatError, match="not a Dimmunix"):
            ShardedStore(pool)

    def test_plain_file_target_is_loud(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("hello")
        with pytest.raises(HistoryFormatError, match="directory"):
            ShardedStore(target)


class TestSharing:
    def test_refresh_sees_sibling_writers(self, tmp_path):
        a = ShardedStore(tmp_path / "pool", shards=2)
        b = ShardedStore(tmp_path / "pool", shards=2)
        a.add(sig(outer_a=1))
        a.add(sig(outer_a=5))
        a.flush()
        assert len(b) == 0
        assert b.refresh() == 2
        assert b.contains(sig(outer_a=1))
        assert b.contains_position((("sh.py", 5),))
        a.close()
        b.close()

    def test_provenance_upgrade_reaches_the_shard_file(self, tmp_path):
        store = ShardedStore(tmp_path / "pool", shards=2)
        predicted = sig()
        predicted.provenance = "predicted"
        store.add(predicted)
        store.flush()
        # The duplicate 'earned' add merges into the same stored object,
        # so the shard's dup-merge path alone would see no delta —
        # mark_dirty must carry the upgrade down.
        assert not store.add(sig())
        store.flush()
        store.close()
        reopened = ShardedStore(tmp_path / "pool")
        (stored,) = list(reopened)
        assert stored.provenance == "earned"
        reopened.close()


class TestDurability:
    def test_full_durability_reaches_every_shard(self, tmp_path):
        store = ShardedStore(tmp_path / "pool", shards=2, durability="full")
        assert store.durability == "full"
        assert store.url.endswith("?durability=full")
        for child in store._shards:
            assert child.durability == "full"
            # synchronous=FULL is pragma value 2 — the knob must land
            # in the actual shard connection, not just the wrapper.
            assert (
                child._conn.execute("PRAGMA synchronous").fetchone()[0] == 2
            )
        store.close()

    def test_default_stays_normal(self, tmp_path):
        store = ShardedStore(tmp_path / "pool", shards=2)
        assert store.durability == "normal"
        assert "?" not in store.url
        store.close()


def _racing_opener(pool, worker, barrier):
    from repro.core.store import open_store

    barrier.wait()
    store = open_store(f"shard://{pool}?shards=4")
    try:
        store.add(sig(outer_a=10 * worker, outer_b=10 * worker + 3))
        store.flush()
    finally:
        store.close()


class TestConcurrentFirstOpen:
    def test_racing_first_opens_all_succeed(self, tmp_path):
        # Regression: simultaneous first-opens of one fresh pool used to
        # fail two ways — a racing opener could read a torn (empty)
        # fleet-meta.json, and the WAL conversion of a brand-new shard
        # file could surface a raw "database is locked" because SQLite
        # skips the busy handler on that lock transition.
        import multiprocessing

        context = multiprocessing.get_context("fork")
        workers = 4
        barrier = context.Barrier(workers)
        pool = tmp_path / "pool"
        processes = [
            context.Process(
                target=_racing_opener, args=(pool, worker, barrier)
            )
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
        assert [process.exitcode for process in processes] == [0] * workers
        merged = open_store(f"shard://{pool}")
        assert merged.shard_count == 4
        assert len(merged) == workers
        merged.close()
