"""The fleet ``metrics`` op: push, aggregate, bare-socket query."""

from __future__ import annotations

import socket

import pytest

from repro.core.store import open_store
from repro.fleet.protocol import read_frame, write_frame
from repro.fleet.remote import RemoteStore
from repro.fleet.server import FleetServer
from repro.telemetry.histogram import LogHistogram


@pytest.fixture
def server():
    backing = open_store("mem://", max_signatures=4096)
    fleet = FleetServer(backing, port=0)
    host, port = fleet.start_background()
    yield fleet, host, port
    fleet.stop()
    backing.close()


def _report(client, values, spill=0, lag=None, health=None):
    histogram = LogHistogram()
    for value in values:
        histogram.record(value)
    report = {
        "client": client,
        "phases": {"acquire": histogram.to_json()},
        "spill_depth": spill,
    }
    if lag is not None:
        report["sync_lag_s"] = lag
    if health is not None:
        report["health"] = health
    return report


def _client(host, port, tmp_path, name):
    return RemoteStore(
        host,
        port,
        timeout=2.0,
        retry_attempts=2,
        retry_backoff=0.01,
        spill_path=tmp_path / f"{name}.spill.history",
    )


def test_metrics_round_trip_aggregates_clients(server, tmp_path):
    _fleet, host, port = server
    one = _client(host, port, tmp_path, "one")
    two = _client(host, port, tmp_path, "two")
    try:
        reply = one.push_metrics(_report("one", [100] * 10, spill=2))
        assert reply["ok"] and reply["clients"] == 1
        reply = two.push_metrics(
            _report("two", [1_000_000] * 10, spill=3, lag=1.5)
        )
        assert reply["clients"] == 2

        aggregated = one.metrics()
        assert aggregated["clients"] == 2
        acquire = aggregated["phases"]["acquire"]
        assert acquire["count"] == 20
        # True fleet-wide percentiles from the merged histogram: the
        # p50 sits in the fast client's bucket, the p99 in the slow
        # client's — an average of per-client p99s could never show
        # this spread.
        assert acquire["p50_ns"] < 10_000
        assert acquire["p99_ns"] > 100_000
        merged = LogHistogram.from_json(acquire["histogram"])
        assert merged.count == 20
        assert aggregated["spill_depth"] == 5
        assert aggregated["sync_lag_max_s"] == 1.5
    finally:
        one.close()
        two.close()


def test_repushing_overwrites_same_client(server, tmp_path):
    _fleet, host, port = server
    client = _client(host, port, tmp_path, "re")
    try:
        client.push_metrics(_report("re", [100] * 50))
        reply = client.push_metrics(_report("re", [200] * 5))
        assert reply["clients"] == 1
        assert reply["phases"]["acquire"]["count"] == 5
    finally:
        client.close()


def test_bare_socket_query_needs_no_hello(server):
    """``dimmunix-report metrics tcp://`` does exactly this."""
    _fleet, host, port = server
    with socket.create_connection((host, port), timeout=2.0) as sock:
        write_frame(sock, {"op": "metrics"})
        reply = read_frame(sock)
    assert reply["ok"]
    assert reply["clients"] == 0
    assert reply["phases"] == {}


def test_malformed_report_is_refused(server):
    _fleet, host, port = server
    with socket.create_connection((host, port), timeout=2.0) as sock:
        write_frame(sock, {"op": "metrics", "report": {"phases": {}}})
        reply = read_frame(sock)
    assert not reply["ok"]
    assert "client" in reply["error"]


def test_malformed_histogram_never_poisons_aggregate(server, tmp_path):
    _fleet, host, port = server
    client = _client(host, port, tmp_path, "mix")
    try:
        client.push_metrics(
            {
                "client": "broken",
                "phases": {"acquire": {"buckets": {"999": 1}}},
            }
        )
        client.push_metrics(_report("fine", [500] * 4))
        aggregated = client.metrics()
        assert aggregated["clients"] == 2
        assert aggregated["phases"]["acquire"]["count"] == 4
    finally:
        client.close()


def test_health_aggregates_across_clients(server, tmp_path):
    """Per-client watchdog health folds into a fleet-wide view: counts
    sum, the oldest waiter age is a max."""
    _fleet, host, port = server
    one = _client(host, port, tmp_path, "h1")
    two = _client(host, port, tmp_path, "h2")
    try:
        one.push_metrics(
            _report(
                "h1",
                [100],
                health={
                    "suspected_now": 1,
                    "livelock_suspects": 3,
                    "watchdog_mitigations": 1,
                    "oldest_waiter_age_ns": 900_000_000,
                },
            )
        )
        two.push_metrics(
            _report(
                "h2",
                [100],
                health={
                    "suspected_now": 0,
                    "livelock_suspects": 1,
                    "watchdog_mitigations": 0,
                    "oldest_waiter_age_ns": 2_500_000_000,
                },
            )
        )
        health = one.metrics()["health"]
        assert health["clients"] == 2
        assert health["suspected_now"] == 1
        assert health["livelock_suspects"] == 4
        assert health["watchdog_mitigations"] == 1
        assert health["oldest_waiter_age_ns"] == 2_500_000_000
    finally:
        one.close()
        two.close()


def test_health_absent_when_no_client_reports_it(server, tmp_path):
    _fleet, host, port = server
    client = _client(host, port, tmp_path, "plain")
    try:
        client.push_metrics(_report("plain", [100]))
        health = client.metrics()["health"]
        assert health["clients"] == 0
        assert health["oldest_waiter_age_ns"] == 0
    finally:
        client.close()


def test_watchdog_engine_pump_carries_health(server, tmp_path):
    """The production path end-to-end: an engine with watchdog + fleet
    sync reports its liveness health in every metrics push."""
    from repro.config import DimmunixConfig
    from repro.core.engine import DimmunixCore
    from repro.core.history import History

    _fleet, host, port = server
    store = _client(host, port, tmp_path, "wd-pump")
    history = History(store=store)
    core = DimmunixCore(
        DimmunixConfig(
            watchdog=True,
            telemetry=True,
            fleet_sync_interval=30.0,
            auto_save=False,
        ),
        history=history,
        source="wd-node",
    )
    try:
        pump = history.sync_pump
        assert pump is not None
        report = pump.metrics_report()
        assert report["health"]["policy"] == "report"
        assert report["health"]["suspected_now"] == 0
        pump.sync_now()
        aggregated = store.metrics()
        assert aggregated["health"]["clients"] == 1
    finally:
        core.detach_events()
        history.close()


def test_pump_pushes_metrics_each_cycle(server, tmp_path):
    """The production path: a telemetry-on engine's pump reports in."""
    from repro.core.events import EventBus
    from repro.core.history import History
    from repro.fleet.pump import SyncPump
    from repro.telemetry.collector import TelemetryCollector

    _fleet, host, port = server
    store = _client(host, port, tmp_path, "pump")
    history = History(store=store)
    collector = TelemetryCollector()
    collector.record("capture", 2_000)
    pump = SyncPump(
        history, EventBus(), source="pump-node", telemetry=collector
    )
    try:
        pump.sync_now()
        assert pump.metrics_pushed == 1
        assert pump.last_sync_ns is not None
        report = pump.metrics_report()
        assert report["client"] == "pump-node"
        assert report["phases"]["capture"]["count"] == 1
        assert "sync" in report["phases"]  # the cycle timed itself
        assert report["spill_depth"] == 0
        assert report["sync_lag_s"] >= 0.0

        aggregated = store.metrics()
        assert aggregated["clients"] == 1
        assert aggregated["phases"]["capture"]["count"] == 1
    finally:
        pump.close()
        history.close()


def test_report_cli_metrics_over_tcp(server, tmp_path, capsys):
    from repro.tools.report_cli import main

    _fleet, host, port = server
    client = _client(host, port, tmp_path, "cli")
    try:
        client.push_metrics(_report("cli", [1000] * 8, spill=1, lag=0.25))
    finally:
        client.close()
    rc = main(["metrics", f"tcp://{host}:{port}"])
    assert rc == 0
    out = capsys.readouterr().out
    assert 'dimmunix_phase_latency_ns_bucket{phase="acquire"' in out
    assert "dimmunix_fleet_clients 1" in out
    assert "dimmunix_fleet_spill_depth 1" in out
    assert "dimmunix_fleet_sync_lag_max_seconds 0.25" in out
