"""FleetServer: the dispatch table, resync model, and resilience."""

from __future__ import annotations

import socket

import pytest

from repro.core.callstack import CallStack
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.core.store import MemoryStore, open_store
from repro.errors import HistoryFormatError
from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    read_frame,
    write_frame,
)
from repro.fleet.remote import RemoteStore
from repro.fleet.server import FleetServer


def sig(outer_a=1, outer_b=3):
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("srv.py", outer_a),
                CallStack.single("srv.py", outer_a + 1),
            ),
            SignatureEntry(
                CallStack.single("srv.py", outer_b),
                CallStack.single("srv.py", outer_b + 1),
            ),
        ]
    )


@pytest.fixture
def server():
    with FleetServer(MemoryStore(max_signatures=1024), port=0) as live:
        yield live


def raw_exchange(server, *requests, hello=True):
    """Speak the protocol directly; returns the replies."""
    with socket.create_connection((server.host, server.port), timeout=5) as sock:
        replies = []
        if hello:
            write_frame(
                sock,
                {
                    "op": "hello",
                    "format": "dimmunix-history",
                    "version": PROTOCOL_VERSION,
                },
            )
            replies.append(read_frame(sock))
        for request in requests:
            write_frame(sock, request)
            replies.append(read_frame(sock))
        return replies


def client(server, tmp_path, name="c"):
    return RemoteStore(
        server.host,
        server.port,
        spill_path=tmp_path / f"{name}.spill.history",
    )


class TestDispatch:
    def test_hello_reports_pool_state(self, server):
        (reply,) = raw_exchange(server)
        assert reply["ok"]
        assert reply["signatures"] == 0
        assert reply["rev"] == 0
        assert reply["url"] == "mem://"

    def test_incompatible_hello_refused(self, server):
        (reply,) = raw_exchange(
            server,
            {"op": "hello", "format": "dimmunix-history", "version": 99},
            hello=False,
        )
        assert not reply["ok"]
        assert "incompatible" in reply["error"]

    def test_client_surfaces_incompatibility_as_format_error(
        self, server, tmp_path, monkeypatch
    ):
        # Version skew is a config error, not an outage: the client must
        # raise (retrying or spilling would never converge).
        monkeypatch.setattr("repro.fleet.remote.PROTOCOL_VERSION", 99)
        with pytest.raises(HistoryFormatError, match="incompatible"):
            client(server, tmp_path)

    def test_unknown_op_refused(self, server):
        hello, reply = raw_exchange(server, {"op": "reboot"})
        assert not reply["ok"]
        assert "unknown op" in reply["error"]

    def test_push_without_list_refused(self, server):
        hello, reply = raw_exchange(server, {"op": "push", "signatures": 7})
        assert not reply["ok"]

    def test_push_with_garbage_signature_refused(self, server):
        hello, reply = raw_exchange(
            server, {"op": "push", "signatures": [{"zebra": 1}]}
        )
        assert not reply["ok"]
        assert "bad signature" in reply["error"]
        assert len(server.store) == 0

    def test_malformed_request_does_not_kill_the_server(self, server):
        hello, bad = raw_exchange(server, {"op": "pull", "after": -3})
        assert not bad["ok"]
        # The server still answers the next conversation.
        (again,) = raw_exchange(server)
        assert again["ok"]

    def test_stats_op(self, server, tmp_path):
        store = client(server, tmp_path)
        store.add(sig())
        store.flush()
        stats = store.server_stats()
        assert stats["signatures"] == 1
        assert stats["deadlocks"] == 1
        assert stats["provenance"]["earned"] == 1
        assert stats["rev"] == 1
        store.close()


class TestRevisionModel:
    def test_incremental_pull_ships_only_the_suffix(self, server, tmp_path):
        a = client(server, tmp_path, "a")
        b = client(server, tmp_path, "b")
        a.add(sig(outer_a=1))
        a.flush()
        assert b.refresh() == 1
        a.add(sig(outer_a=5))
        a.flush()
        # Second refresh pulls exactly the one new signature.
        assert b.refresh() == 1
        assert len(b) == 2
        a.close()
        b.close()

    def test_removal_bumps_generation_and_forces_resync(self, server, tmp_path):
        a = client(server, tmp_path, "a")
        b = client(server, tmp_path, "b")
        first, second = sig(outer_a=1), sig(outer_a=5)
        a.add(first)
        a.add(second)
        a.flush()
        b.refresh()
        hello, reply = raw_exchange(
            server, {"op": "discard", "keys": []}
        )
        assert reply["removed"] == 0  # nothing matched: no gen bump
        a.discard([first])  # removes on the server too
        # b's synced_rev (2) is now beyond the server's rev (1) in a new
        # generation; the pull must resync, not serve a bogus suffix.
        assert b.refresh() == 0
        assert b.synced_rev == 1
        a.close()
        b.close()

    def test_provenance_upgrade_travels(self, server, tmp_path):
        a = client(server, tmp_path, "a")
        b = client(server, tmp_path, "b")
        predicted = sig()
        predicted.provenance = "predicted"
        a.add(predicted)
        a.flush()
        b.refresh()
        (seen,) = list(b)
        assert seen.provenance == "predicted"
        # a's real detection upgrades the antibody fleet-wide...
        assert not a.add(sig())
        a.flush()
        b.refresh()
        # ...because pulls re-serialize live objects, never stale rows,
        # and the duplicate-merge path upgrades in place.
        assert seen.provenance == "earned"
        a.close()
        b.close()


class TestLifecycle:
    def test_durable_backend_flushed_before_push_ack(self, tmp_path):
        backing = open_store(f"sqlite://{tmp_path / 'pool.db'}")
        with FleetServer(backing, port=0) as server:
            store = client(server, tmp_path)
            store.add(sig())
            store.flush()
            # The ack means durable: a fresh handle on the database sees
            # the row without any further flush from the server.
            probe = open_store(f"sqlite://{tmp_path / 'pool.db'}")
            assert len(probe) == 1
            probe.close()
            store.close()
        backing.close()

    def test_stop_with_connected_client_is_clean(self, server, tmp_path):
        store = client(server, tmp_path)
        assert store.connected
        server.stop()  # must not wedge on the live conversation
        store.close()

    def test_ephemeral_port_is_reported(self, server):
        assert server.port != 0
        assert server.address == f"tcp://{server.host}:{server.port}"
