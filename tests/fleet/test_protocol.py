"""Wire-protocol framing: both codecs, both failure postures."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.fleet.protocol import (
    DEFAULT_MAX_FRAME,
    FleetProtocolError,
    decode_body,
    encode_frame,
    read_frame,
    read_frame_async,
    write_frame,
)


class TestEncodeDecode:
    def test_round_trip(self):
        payload = {"op": "push", "signatures": [{"kind": "deadlock"}]}
        frame = encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == payload

    def test_encode_is_compact(self):
        # No whitespace: the frame is a network payload, not a log line.
        assert b" " not in encode_frame({"op": "hello", "version": 1})

    def test_oversize_payload_refused_at_encode(self):
        huge = {"blob": "x" * (DEFAULT_MAX_FRAME + 1)}
        with pytest.raises(FleetProtocolError, match="exceeds"):
            encode_frame(huge)

    def test_bad_json_body(self):
        with pytest.raises(FleetProtocolError, match="not valid JSON"):
            decode_body(b"{torn")

    def test_non_object_body(self):
        with pytest.raises(FleetProtocolError, match="JSON object"):
            decode_body(b"[1, 2, 3]")


class TestBlockingCodec:
    def _pair(self):
        return socket.socketpair()

    def test_socket_round_trip(self):
        left, right = self._pair()
        try:
            writer = threading.Thread(
                target=write_frame, args=(left, {"op": "stats"})
            )
            writer.start()
            assert read_frame(right) == {"op": "stats"}
            writer.join()
        finally:
            left.close()
            right.close()

    def test_announced_oversize_refused_before_allocation(self):
        left, right = self._pair()
        try:
            left.sendall(struct.pack(">I", DEFAULT_MAX_FRAME + 1))
            with pytest.raises(FleetProtocolError, match="cap"):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_torn_frame_detected(self):
        left, right = self._pair()
        try:
            frame = encode_frame({"op": "stats"})
            left.sendall(frame[: len(frame) - 2])  # crash mid-body
            left.close()
            with pytest.raises(FleetProtocolError, match="mid-frame"):
                read_frame(right)
        finally:
            right.close()


class TestAsyncCodec:
    def _run(self, coroutine):
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(coroutine)
        finally:
            loop.close()

    def test_clean_eof_between_frames_is_none(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "stats"}))
            reader.feed_eof()
            first = await read_frame_async(reader)
            second = await read_frame_async(reader)
            return first, second

        first, second = self._run(scenario())
        assert first == {"op": "stats"}
        assert second is None

    def test_eof_mid_header_is_an_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")  # half a length prefix
            reader.feed_eof()
            return await read_frame_async(reader)

        with pytest.raises(FleetProtocolError, match="mid-header"):
            self._run(scenario())

    def test_eof_mid_body_is_an_error(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = encode_frame({"op": "stats"})
            reader.feed_data(frame[:-1])
            reader.feed_eof()
            return await read_frame_async(reader)

        with pytest.raises(FleetProtocolError, match="mid-frame"):
            self._run(scenario())

    def test_announced_oversize_refused(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 1024))
            return await read_frame_async(reader, max_frame=512)

        with pytest.raises(FleetProtocolError, match="cap"):
            self._run(scenario())
