"""Herd immunity, end to end: one process deadlocks, every process ducks.

The acceptance scenario for the fleet subsystem. Two engines — distinct
histories, distinct buses, sharing only a history DSN — play patient
zero and herd member: A earns a signature the hard way (a real AB/BA
detection), B's sync pump pulls it in **without a restart**, and B then
yields out of the same interleaving on its first encounter, never
detecting anything itself.
"""

from __future__ import annotations

import pytest

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore, RequestVerdict
from repro.core.events import EventLog
from repro.core.store import open_store
from repro.fleet.server import FleetServer


def stack(line):
    return CallStack.single("herd.py", line)


def earn_signature(core):
    """Drive the AB/BA interleaving to a real detection in ``core``."""
    t1 = core.register_thread("t1")
    t2 = core.register_thread("t2")
    a = core.register_lock("a")
    b = core.register_lock("b")
    core.request(t1, a, stack(10))
    core.acquired(t1, a)
    core.request(t2, b, stack(20))
    core.acquired(t2, b)
    core.request(t1, b, stack(11))
    result = core.request(t2, a, stack(21))
    assert result.detected is not None
    return result.detected


def approach_danger(core):
    """Walk a fresh pair of threads to the brink of the same pattern;
    returns the result of the first dangerous request.

    The signature's outer positions are the *acquisition* sites (10,
    20); once t1 occupies 10, t2's request at 20 would complete the
    instantiation — that is the request avoidance must park.
    """
    t1 = core.register_thread("b-t1")
    t2 = core.register_thread("b-t2")
    a = core.register_lock("b-a")
    b = core.register_lock("b-b")
    core.request(t1, a, stack(10))
    core.acquired(t1, a)
    return core.request(t2, b, stack(20))


def make_core(url, source, interval=None):
    return DimmunixCore(
        DimmunixConfig(
            yield_timeout=None,
            history_url=url,
            fleet_sync_interval=interval,
        ),
        persistence_mode="deferred",
        source=source,
    )


@pytest.fixture(params=["shard", "tcp"])
def shared_url(request, tmp_path):
    """A fleet-shared history DSN of each flavour."""
    if request.param == "shard":
        yield f"shard://{tmp_path / 'pool'}?shards=2"
        return
    backing = open_store(f"sqlite://{tmp_path / 'pool.db'}", max_signatures=65536)
    server = FleetServer(backing, port=0)
    host, port = server.start_background()
    import repro.fleet.remote as remote_module

    # Keep the test's spill journal inside tmp_path, not the real home.
    spill_dir = tmp_path / "spill"
    old = remote_module.os.environ.get(remote_module.SPILL_DIR_ENV)
    remote_module.os.environ[remote_module.SPILL_DIR_ENV] = str(spill_dir)
    try:
        yield f"tcp://{host}:{port}"
    finally:
        if old is None:
            remote_module.os.environ.pop(remote_module.SPILL_DIR_ENV, None)
        else:
            remote_module.os.environ[remote_module.SPILL_DIR_ENV] = old
        server.stop()
        backing.close()


class TestHerdImmunity:
    def test_b_avoids_what_a_earned_without_restart(self, shared_url):
        # Herd member B is alive *before* patient zero deadlocks: the
        # antibody must reach it through the sync pump, not through a
        # restart's history replay.
        member = make_core(shared_url, "member", interval=30.0)
        assert len(member.history) == 0
        patient_zero = make_core(shared_url, "patient-zero")
        signature = earn_signature(patient_zero)
        patient_zero.flush_history()
        patient_zero.detach_events()

        pulled = member.history.sync_pump.sync_now()
        assert pulled == 1
        assert member.history.contains(signature)
        assert member.stats.sync_pulls == 1

        log = EventLog()
        member.events.subscribe(log, kinds=("yield",))
        result = approach_danger(member)
        # First encounter: parked, not deadlocked.
        assert result.verdict is RequestVerdict.YIELD
        assert result.yield_on == signature
        assert member.stats.deadlocks_detected == 0
        assert log.of_kind("yield")
        member.detach_events()

    def test_late_joiner_is_immune_at_birth(self, shared_url):
        patient_zero = make_core(shared_url, "patient-zero")
        signature = earn_signature(patient_zero)
        patient_zero.flush_history()
        patient_zero.detach_events()
        # A process that starts after the outbreak replays the pool at
        # open — no pump cycle needed.
        joiner = make_core(shared_url, "joiner")
        assert joiner.history.contains(signature)
        result = approach_danger(joiner)
        assert result.verdict is RequestVerdict.YIELD
        assert joiner.stats.deadlocks_detected == 0
        joiner.detach_events()
