"""RemoteStore failure posture: spill, replay, degraded opens.

The fault-injection suite: every test here kills the server at some
point and asserts the one invariant that matters — **no antibody is
ever lost**. A failed push lands in the local spill journal before
``flush()`` returns; reconnection replays it.
"""

from __future__ import annotations

import pytest

from repro.core.callstack import CallStack
from repro.core.history import History
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.core.store import open_store
from repro.fleet.remote import (
    SPILL_DIR_ENV,
    FleetUnreachableError,
    RemoteStore,
)
from repro.fleet.server import FleetServer


def sig(outer_a=1, outer_b=3):
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("rm.py", outer_a),
                CallStack.single("rm.py", outer_a + 1),
            ),
            SignatureEntry(
                CallStack.single("rm.py", outer_b),
                CallStack.single("rm.py", outer_b + 1),
            ),
        ]
    )


def fast_client(host, port, tmp_path, name="c"):
    """A client with tight retry settings — tests fail fast, not slow."""
    return RemoteStore(
        host,
        port,
        timeout=2.0,
        retry_attempts=2,
        retry_backoff=0.01,
        spill_path=tmp_path / f"{name}.spill.history",
    )


@pytest.fixture
def pool(tmp_path):
    """A server over a durable (sqlite) pool, restartable on its port."""

    class Pool:
        def __init__(self):
            self.backing_dsn = f"sqlite://{tmp_path / 'pool.db'}"
            self.server = None
            self.host = None
            self.port = None

        def start(self):
            backing = open_store(self.backing_dsn, max_signatures=65536)
            port = self.port if self.port is not None else 0
            self.server = FleetServer(backing, port=port)
            self.host, self.port = self.server.start_background()
            return self.server

        def kill(self):
            if self.server is not None:
                self.server.stop()
                self.server.store.close()
                self.server = None

    built = Pool()
    built.start()
    yield built
    built.kill()


class TestSpillAndReplay:
    def test_push_during_outage_spills_locally(self, pool, tmp_path):
        store = fast_client(pool.host, pool.port, tmp_path)
        pool.kill()
        store.add(sig())
        written = store.flush()  # must not raise, must not lose
        assert written == 1
        assert store.spilled == 1
        assert store.failures >= 1
        assert store.spill_path.exists()
        # The journal is a plain legacy history: recoverable by any tool
        # even if this process never reconnects.
        assert len(History.load(store.spill_path)) == 1
        store.close()

    def test_reconnect_replays_the_journal(self, pool, tmp_path):
        store = fast_client(pool.host, pool.port, tmp_path)
        pool.kill()
        store.add(sig(outer_a=1))
        store.flush()
        pool.start()  # same port: the fleet heals
        assert store.refresh() == 0  # nothing new to pull...
        assert store.spill_replayed == 1  # ...but the spill traveled
        assert not store.spill_path.exists()
        assert len(pool.server.store) == 1
        store.close()

    def test_server_killed_mid_batch_loses_nothing(self, pool, tmp_path):
        """The acceptance scenario: kill the server between flushes,
        accumulate antibodies across the outage, heal, verify the pool
        holds every signature from before, during, and after."""
        store = fast_client(pool.host, pool.port, tmp_path)
        store.add(sig(outer_a=1))
        store.flush()  # durable server-side (acked)
        pool.kill()
        store.add(sig(outer_a=5))
        store.add(sig(outer_a=9))
        store.flush()  # durable in the spill journal
        pool.start()
        other = fast_client(pool.host, pool.port, tmp_path, "other")
        assert len(other) == 1  # the pre-outage signature
        store.add(sig(outer_a=13))
        store.flush()  # reconnects: replays spill, pushes the batch
        assert store.spill_replayed == 2
        assert other.refresh() == 3
        assert len(other) == 4
        for line in (1, 5, 9, 13):
            assert other.contains(sig(outer_a=line))
        store.close()
        other.close()

    def test_spill_survives_the_client_process_too(self, pool, tmp_path):
        # Client dies during the outage; its successor (same spill
        # path) delivers the journal on its first contact.
        store = fast_client(pool.host, pool.port, tmp_path)
        pool.kill()
        store.add(sig())
        store.close()  # final flush spills
        assert store.spill_path.exists()
        pool.start()
        successor = fast_client(pool.host, pool.port, tmp_path)
        assert successor.spill_replayed == 1
        assert len(pool.server.store) == 1
        assert not successor.spill_path.exists()
        successor.close()


class TestDegradedOpen:
    def test_open_without_server_is_usable(self, tmp_path):
        store = fast_client("127.0.0.1", 1, tmp_path)  # nothing listens
        assert not store.connected
        assert len(store) == 0
        store.add(sig())
        assert store.flush() == 1  # spilled, not lost
        assert store.spill_path.exists()
        store.close()

    def test_refresh_raises_while_away(self, tmp_path):
        store = fast_client("127.0.0.1", 1, tmp_path)
        with pytest.raises(FleetUnreachableError):
            store.refresh()
        store.close()

    def test_purge_refuses_to_pretend(self, pool, tmp_path):
        store = fast_client(pool.host, pool.port, tmp_path)
        store.add(sig())
        store.flush()
        pool.kill()
        # Destructive ops must fail loudly, not report success.
        with pytest.raises(FleetUnreachableError):
            store.purge()
        store.close()

    def test_discard_is_best_effort(self, pool, tmp_path):
        store = fast_client(pool.host, pool.port, tmp_path)
        signature = sig()
        store.add(signature)
        store.flush()
        pool.kill()
        assert store.discard([signature]) == 1  # local removal succeeds
        assert not store.contains(sig())
        store.close()


class TestSpillPlacement:
    def test_default_path_honours_env_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path / "spills"))
        path = RemoteStore._default_spill_path("fleet.example", 7741)
        assert path == tmp_path / "spills" / "fleet.example-7741.history"

    def test_per_server_journals_do_not_interleave(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_DIR_ENV, str(tmp_path))
        a = RemoteStore._default_spill_path("h", 1)
        b = RemoteStore._default_spill_path("h", 2)
        assert a != b
