"""Prometheus text exposition: shape, cumulativity, escaping."""

from __future__ import annotations

from repro.telemetry.histogram import LogHistogram
from repro.telemetry.prometheus import render_report


def _report_with_samples(values, phase="acquire"):
    histogram = LogHistogram()
    for value in values:
        histogram.record(value)
    return {"phases": {phase: histogram}}


def test_histogram_lines_are_cumulative_and_end_at_inf():
    text = render_report(_report_with_samples([1, 5, 5, 1000, 1 << 40]))
    lines = [line for line in text.splitlines() if "_bucket" in line]
    counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert lines[-1].endswith(" 5")
    assert 'le="+Inf"' in lines[-1]
    assert "# TYPE dimmunix_phase_latency_ns histogram" in text
    assert "# HELP dimmunix_phase_latency_ns" in text
    assert "dimmunix_phase_latency_ns_count" in text
    assert "dimmunix_phase_latency_ns_sum" in text
    assert text.endswith("\n")


def test_inf_bucket_equals_count_line():
    text = render_report(_report_with_samples([3] * 7))
    inf = next(
        line for line in text.splitlines() if 'le="+Inf"' in line
    )
    count = next(
        line for line in text.splitlines() if line.startswith(
            "dimmunix_phase_latency_ns_count"
        )
    )
    assert inf.rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1] == "7"


def test_accepts_json_histograms_too():
    histogram = LogHistogram()
    histogram.record(42)
    direct = render_report({"phases": {"match": histogram}})
    via_json = render_report({"phases": {"match": histogram.to_json()}})
    assert direct == via_json


def test_counters_and_gauges():
    text = render_report(
        {
            "phases": {},
            "counters": {"requests": 12, "bogus": "nan-string"},
            "gauges": {"fleet_clients": 3, "sync_lag_seconds": 1.5},
        }
    )
    assert "# TYPE dimmunix_requests_total counter" in text
    assert "dimmunix_requests_total 12" in text
    assert "bogus" not in text  # non-numeric values are skipped
    assert "# TYPE dimmunix_fleet_clients gauge" in text
    assert "dimmunix_fleet_clients 3" in text
    assert "dimmunix_sync_lag_seconds 1.5" in text


def test_label_escaping():
    text = render_report(_report_with_samples([1], phase='we"ird\\ph'))
    assert 'phase="we\\"ird\\\\ph"' in text


def test_empty_report_renders_empty():
    assert render_report({}) == ""
    assert render_report({"phases": {}}) == ""
