"""LogHistogram bucketing edge cases and wire-form round-trips."""

from __future__ import annotations

import pytest

from repro.telemetry.histogram import (
    BUCKET_UPPER_BOUNDS,
    BUCKETS,
    LogHistogram,
)


def test_bucket_bounds_shape():
    assert len(BUCKET_UPPER_BOUNDS) == BUCKETS == 64
    assert BUCKET_UPPER_BOUNDS[0] == 0
    assert BUCKET_UPPER_BOUNDS[1] == 1
    assert BUCKET_UPPER_BOUNDS[63] == (1 << 63) - 1


def test_zero_ns_lands_in_bucket_zero():
    histogram = LogHistogram()
    histogram.record(0)
    assert histogram.counts[0] == 1
    assert histogram.count == 1
    assert histogram.sum_ns == 0
    assert histogram.min_ns == 0
    assert histogram.max_ns == 0


def test_negative_ns_clamps_to_zero():
    """A monotonic delta can't be negative, but a caller's arithmetic
    bug must not corrupt the histogram."""
    histogram = LogHistogram()
    histogram.record(-5)
    assert histogram.counts[0] == 1
    assert histogram.sum_ns == 0
    assert histogram.min_ns == 0


def test_bucket_boundaries_are_exact():
    histogram = LogHistogram()
    # 2^b - 1 is the last value of bucket b; 2^b the first of bucket b+1.
    for b in (1, 4, 10, 40):
        histogram.record((1 << b) - 1)
        histogram.record(1 << b)
    for b in (1, 4, 10, 40):
        assert histogram.counts[b] >= 1
        assert histogram.counts[b + 1] >= 1


def test_huge_values_clamp_to_last_bucket():
    histogram = LogHistogram()
    histogram.record(1 << 70)  # beyond any plausible ns delta
    histogram.record((1 << 63) - 1)
    assert histogram.counts[63] == 2
    assert histogram.max_ns == 1 << 70


def test_merge_accumulates_everything():
    left, right = LogHistogram(), LogHistogram()
    for value in (0, 3, 100, 1 << 20):
        left.record(value)
    for value in (7, 100, 1 << 45):
        right.record(value)
    merged = LogHistogram().merge(left).merge(right)
    assert merged.count == 7
    assert merged.sum_ns == left.sum_ns + right.sum_ns
    assert merged.min_ns == 0
    assert merged.max_ns == 1 << 45
    # Merging an empty histogram changes nothing.
    before = merged.to_json()
    assert merged.merge(LogHistogram()).to_json() == before


def test_percentile_interpolates_and_clamps():
    histogram = LogHistogram()
    for _ in range(100):
        histogram.record(1000)
    p50 = histogram.percentile(0.50)
    # Everything sits in one bucket; interpolation stays inside the
    # observed [min, max] envelope.
    assert histogram.min_ns <= p50 <= histogram.max_ns
    assert histogram.percentile(0.0) == histogram.min_ns
    assert histogram.percentile(1.0) == histogram.max_ns
    assert LogHistogram().percentile(0.5) == 0


def test_json_round_trip():
    histogram = LogHistogram()
    for value in (0, 1, 2, 1023, 1 << 30, 1 << 70):
        histogram.record(value)
    restored = LogHistogram.from_json(histogram.to_json())
    assert restored.to_json() == histogram.to_json()
    assert restored.count == histogram.count
    assert restored.sum_ns == histogram.sum_ns
    assert list(restored.counts) == list(histogram.counts)


def test_from_json_rejects_malformed():
    with pytest.raises(ValueError):
        LogHistogram.from_json({"buckets": {"64": 1}, "count": 1, "sum_ns": 0})
    with pytest.raises(ValueError):
        LogHistogram.from_json({"buckets": {"0": -2}, "count": 1, "sum_ns": 0})


def test_nonzero_buckets_upper_bounds_match_prometheus_le():
    histogram = LogHistogram()
    histogram.record(5)  # bucket 3: [4, 7]
    ((upper, count),) = histogram.nonzero_buckets()
    assert upper == 7
    assert count == 1
