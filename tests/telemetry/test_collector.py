"""TelemetryCollector per-thread sharding and engine integration."""

from __future__ import annotations

import threading

from repro.config import DimmunixConfig
from repro.telemetry import PHASES, TelemetryCollector


def test_multithreaded_record_and_merge():
    collector = TelemetryCollector()
    per_thread = 500
    workers = 8

    def work():
        for value in range(per_thread):
            collector.record("capture", value)
            collector.record("glock_wait", value * 2)

    threads = [threading.Thread(target=work) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert collector.thread_count() == workers
    snapshot = collector.snapshot()
    assert snapshot["capture"].count == workers * per_thread
    assert snapshot["glock_wait"].count == workers * per_thread
    expected_sum = workers * sum(range(per_thread))
    assert snapshot["capture"].sum_ns == expected_sum
    assert snapshot["glock_wait"].sum_ns == expected_sum * 2


def test_snapshot_returns_fresh_histograms():
    collector = TelemetryCollector()
    collector.record("match", 100)
    first = collector.snapshot()["match"]
    first.record(999)  # mutating a snapshot must not leak back
    assert collector.snapshot()["match"].count == 1


def test_snapshot_json_is_sorted_and_plain():
    collector = TelemetryCollector()
    collector.record("sync", 10)
    collector.record("capture", 20)
    wire = collector.snapshot_json()
    assert list(wire) == sorted(wire)
    assert wire["capture"]["count"] == 1
    for phase in wire:
        assert phase in PHASES


def test_engine_creates_collector_only_when_configured():
    from repro.core.engine import DimmunixCore

    on = DimmunixCore(DimmunixConfig(telemetry=True, auto_save=False))
    off = DimmunixCore(DimmunixConfig(auto_save=False))
    assert isinstance(on.telemetry, TelemetryCollector)
    assert off.telemetry is None


def test_runtime_records_phases_end_to_end():
    from repro.runtime.runtime import DimmunixRuntime

    runtime = DimmunixRuntime(
        DimmunixConfig(telemetry=True, auto_save=False), name="tel-test"
    )
    lock = runtime.lock("hot")
    for _ in range(20):
        with lock:
            pass
    snapshot = runtime.core.telemetry.snapshot()
    for phase in ("capture", "glock_wait", "acquire"):
        assert snapshot[phase].count == 20, phase
    # acquire spans request -> acquired, so it can never be faster than
    # the glock wait it contains (both measured on the same clock).
    assert snapshot["acquire"].sum_ns >= 0


def test_disabled_runtime_records_nothing():
    from repro.runtime.runtime import DimmunixRuntime

    runtime = DimmunixRuntime(
        DimmunixConfig(auto_save=False), name="tel-off"
    )
    assert runtime.core.telemetry is None
    lock = runtime.lock("cold")
    with lock:
        pass  # the guard path: one attribute check, no collector
