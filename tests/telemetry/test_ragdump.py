"""RAG introspection snapshots: states, request ages, DOT rendering."""

from __future__ import annotations

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore
from repro.telemetry.ragdump import rag_snapshot, render_dot


def _core():
    return DimmunixCore(
        DimmunixConfig(auto_save=False), source="ragtest"
    )


def test_snapshot_states_edges_and_request_age():
    core = _core()
    holder = core.register_thread("holder")
    waiter = core.register_thread("waiter")
    lock = core.register_lock("A")
    core.request(holder, lock, CallStack.single("rag.py", 1))
    core.acquired(holder, lock)
    core.request(waiter, lock, CallStack.single("rag.py", 2))

    snapshot = core.rag_dump()
    assert snapshot["source"] == "ragtest"
    by_name = {entry["name"]: entry for entry in snapshot["threads"]}
    assert by_name["holder"]["state"] == "runnable"
    assert by_name["holder"]["held"] == ["A"]
    assert by_name["waiter"]["state"] == "requesting"
    assert by_name["waiter"]["requesting"] == "A"
    # The engine stamped request_since_ns at the waiter's RequestEvent,
    # so the dump reports a non-negative age even with telemetry off.
    assert by_name["waiter"]["request_age_ns"] >= 0
    assert by_name["holder"]["request_age_ns"] is None

    kinds = {(edge["kind"], edge["from"], edge["to"])
             for edge in snapshot["edges"]}
    assert ("request", "waiter", "A") in kinds
    assert ("hold", "A", "holder") in kinds
    assert snapshot["counts"]["blocked"] == 1
    assert snapshot["counts"]["threads"] == 2
    assert snapshot["counts"]["locks"] == 1


def test_snapshot_age_uses_caller_clock():
    core = _core()
    waiter = core.register_thread("w")
    lock = core.register_lock("L")
    core.request(waiter, lock, CallStack.single("rag.py", 9))
    since = waiter.request_since_ns
    snapshot = rag_snapshot(core, now_ns=since + 5_000)
    entry = next(t for t in snapshot["threads"] if t["name"] == "w")
    assert entry["request_age_ns"] == 5_000


def test_render_dot_shapes_and_edges():
    core = _core()
    holder = core.register_thread("holder")
    waiter = core.register_thread("waiter")
    lock = core.register_lock("A")
    core.request(holder, lock, CallStack.single("rag.py", 1))
    core.acquired(holder, lock)
    core.request(waiter, lock, CallStack.single("rag.py", 2))

    dot = render_dot(core.rag_dump())
    assert dot.startswith("digraph rag {")
    assert dot.rstrip().endswith("}")
    assert '"t:holder"' in dot and "shape=box]" in dot
    assert '"t:waiter"' in dot and "shape=box3d" in dot
    assert '"l:A"' in dot and "shape=ellipse" in dot
    assert '"t:waiter" -> "l:A" [style=solid];' in dot
    assert '"l:A" -> "t:holder" [style=bold];' in dot


def test_session_rag_dump_covers_each_core():
    import repro

    with repro.immunity(auto_save=False, name="ragses") as dx:
        lock = dx.lock("outer")
        with lock:
            dump = dx.rag_dump()
    assert "ragses/runtime" in dump
    assert dump["ragses/runtime"]["counts"]["locks"] >= 1


def test_aio_task_request_age_matches_thread_shape():
    """Cross-domain parity: an asyncio task waiting on a lock must dump
    exactly like a waiting thread — ``state == "requesting"`` and a
    non-None ``request_age_ns`` off the same ``request_since_ns`` stamp
    (the watchdog's stall detector reads only this surface, so a gap
    here would blind it to one whole domain)."""
    import asyncio

    import repro

    with repro.immunity(auto_save=False, name="ragaio") as dx:
        aio = dx.aio()
        lock = aio.lock("shared")
        captured: dict = {}

        async def greedy():
            async with lock:
                # Give the starved task time to lodge its request, then
                # snapshot while it waits.
                for _ in range(50):
                    await asyncio.sleep(0.005)
                    snapshot = dx.rag_dump()["ragaio/aio"]
                    waiting = [
                        entry
                        for entry in snapshot["threads"]
                        if entry["state"] == "requesting"
                    ]
                    if waiting:
                        captured["entry"] = waiting[0]
                        captured["dot"] = render_dot(snapshot)
                        return

        async def starved():
            async with lock:
                pass

        async def main():
            greedy_task = asyncio.ensure_future(greedy())
            greedy_task.set_name("aio-greedy")
            starved_task = asyncio.ensure_future(starved())
            starved_task.set_name("aio-starved")
            await asyncio.wait(
                {greedy_task, starved_task}, timeout=10.0
            )

        asyncio.run(main())

    entry = captured.get("entry")
    assert entry is not None, "never caught the starved task requesting"
    assert entry["name"] == "aio-starved"
    assert entry["requesting"] == "shared"
    # The parity under test: same key, same semantics as a thread node.
    assert entry["request_age_ns"] is not None
    assert entry["request_age_ns"] >= 0
    assert '"t:aio-starved"' in captured["dot"]
