"""Tests for the dimmunix-serve CLI."""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fleet.remote import RemoteStore
from repro.tools.serve_cli import main
from repro.workloads.synthetic_sigs import make_signature

SRC = Path(__file__).resolve().parents[2] / "src"


class TestArgumentErrors:
    def test_tcp_backend_rejected(self, capsys):
        # Serving tcp:// would only proxy another server.
        assert main(["tcp://127.0.0.1:7741"]) == 2
        assert "local" in capsys.readouterr().err

    def test_unknown_scheme_rejected(self, capsys):
        assert main(["carrier-pigeon://coop"]) == 2
        assert "error" in capsys.readouterr().err


class TestRoundTrip:
    def test_serve_push_pull_shutdown(self, tmp_path):
        """The console-script smoke: spawn the real process on an
        ephemeral port, push an antibody, read it back, shut down."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.tools.serve_cli",
                f"sqlite://{tmp_path / 'pool.db'}",
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"listening on tcp://([\d.]+):(\d+)", banner)
            assert match, f"unexpected banner: {banner!r}"
            host, port = match.group(1), int(match.group(2))
            writer = RemoteStore(
                host, port, spill_path=tmp_path / "w.spill.history"
            )
            writer.add(make_signature(("Fleet.java", 1), ("Fleet.java", 2), 0))
            assert writer.flush() == 1
            writer.close()
            reader = RemoteStore(
                host, port, spill_path=tmp_path / "r.spill.history"
            )
            assert len(reader) == 1
            assert reader.server_stats()["signatures"] == 1
            reader.close()
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
