"""``dimmunix-events trace`` — Perfetto export golden and live round-trip."""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.trace import compile_trace
from repro.tools.events_cli import main

GOLDENS = Path(__file__).parent / "goldens"


def test_trace_matches_committed_golden(tmp_path):
    out = tmp_path / "trace.json"
    rc = main(
        [
            "trace",
            str(GOLDENS / "acquire_events.jsonl"),
            "-o",
            str(out),
        ]
    )
    assert rc == 0
    produced = json.loads(out.read_text(encoding="utf-8"))
    golden = json.loads(
        (GOLDENS / "acquire_trace.json").read_text(encoding="utf-8")
    )
    assert produced == golden


def test_golden_is_perfetto_loadable_shape():
    golden = json.loads(
        (GOLDENS / "acquire_trace.json").read_text(encoding="utf-8")
    )
    assert golden["displayTimeUnit"] == "ns"
    events = golden["traceEvents"]
    phases = {entry["ph"] for entry in events}
    assert phases == {"M", "X", "i"}
    for entry in events:
        assert isinstance(entry["pid"], int)
        assert isinstance(entry["tid"], int)
        if entry["ph"] == "X":
            assert entry["ts"] >= 0 and entry["dur"] >= 0
    # The five lifecycle spans: both requests, both holds, one park.
    names = sorted(
        entry["name"] for entry in events if entry["ph"] == "X"
    )
    assert names == [
        "hold A",
        "hold A",
        "parked A",
        "request A",
        "request A",
    ]
    # The hold span carries the position of the request that opened it.
    holds = [e for e in events if e["name"] == "hold A"]
    assert {hold["args"]["position"] for hold in holds} == {
        "m.py:10",
        "m.py:20",
    }
    parked = next(e for e in events if e["name"] == "parked A")
    assert parked["args"]["signature"] == "m.py:10;m.py:20"
    assert golden["dimmunix"]["dropped_unclosed"] == 1


def test_trace_stdout_and_missing_file(tmp_path, capsys):
    rc = main(["trace", str(tmp_path / "nope.jsonl")])
    assert rc == 2
    assert "does not exist" in capsys.readouterr().err

    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    rc = main(["trace", str(empty)])
    assert rc == 0
    trace = json.loads(capsys.readouterr().out)
    assert trace["traceEvents"] == []
    assert trace["dimmunix"]["events"] == 0


def test_recorded_session_compiles_to_spans(tmp_path):
    """A real recorded run produces matching request/hold span pairs."""
    import repro

    events_path = tmp_path / "events.jsonl"
    with repro.immunity(auto_save=False) as dx:
        dx.record(events_path)
        lock = dx.lock("hot")
        for _ in range(5):
            with lock:
                pass
    with open(events_path, encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle if line.strip()]
    trace = compile_trace(events)
    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert sum(1 for s in spans if s["name"] == "request hot") == 5
    assert sum(1 for s in spans if s["name"] == "hold hot") == 5
    assert trace["dimmunix"]["dropped_unclosed"] == 0
    # Monotonic stamps: every span has a sane non-negative duration.
    assert all(s["dur"] >= 0 for s in spans)
