"""Golden lint input: consistent lock order, nothing to report."""


def setup(runtime):
    ledger = runtime.lock("golden-clean-ledger")
    audit = runtime.lock("golden-clean-audit")

    def post():
        with ledger:
            with audit:
                pass

    def reconcile():
        with ledger:
            with audit:
                pass
