"""Golden lint input: two deliberate lock-order cycles.

Committed fixture for the ``dimmunix-lint`` goldens — do not reformat:
the expected outputs pin exact line numbers.
"""


def setup(runtime):
    ledger = runtime.lock("golden-ledger")
    audit = runtime.lock("golden-audit")

    def post():
        with ledger:
            with audit:
                pass

    def reconcile():
        with audit:
            with ledger:
                pass


def dinner(runtime, seats):
    forks = [runtime.lock(f"golden-fork-{i}") for i in range(seats)]

    def dine(seat):
        left = forks[seat]
        right = forks[(seat + 1) % seats]
        with left:
            with right:
                pass
