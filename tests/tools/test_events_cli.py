"""``dimmunix-events``: tail / summary / replay over recorded streams."""

from __future__ import annotations

import json

import pytest

from repro.api import immunity
from repro.core.events import (
    DetectionEvent,
    EventBus,
    JsonlWriter,
    MatchCappedEvent,
    RequestEvent,
    event_from_dict,
    event_to_dict,
)
from repro.core.callstack import CallStack
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.tools.events_cli import main
from tests.api.test_facade import ab_program, ba_program, drive_runtime_abba


@pytest.fixture
def recorded_session(tmp_path):
    """A JSONL file from a real mixed runtime + VM session."""
    path = tmp_path / "events.jsonl"
    with immunity(yield_timeout=1.0, name="cli") as dx:
        dx.record(path)
        drive_runtime_abba(dx)
        vm = dx.vm(name="cli-vm")
        vm.spawn(ab_program(), "t-ab")
        vm.spawn(ba_program(), "t-ba")
        vm.run()
    return path, dx


def _sample_signature() -> DeadlockSignature:
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("cli.py", line),
                CallStack.single("cli.py", line + 100),
            )
            for line in (1, 2)
        ]
    )


class TestMatchCappedWireForm:
    def test_roundtrip_and_tail_format(self, tmp_path, capsys):
        """A match-capped event survives the JSONL round trip and tails
        with its cap detail (steps, policy, verdict)."""
        path = tmp_path / "caps.jsonl"
        bus = EventBus()
        with JsonlWriter(path) as writer:
            bus.subscribe(writer)
            bus.publish(
                MatchCappedEvent(
                    source="cap-test",
                    thread="t1",
                    signature=_sample_signature(),
                    steps=1234,
                    policy="weak",
                    instantiable=True,
                )
            )
        data = json.loads(path.read_text().splitlines()[0])
        rebuilt = event_from_dict(data)
        assert isinstance(rebuilt, MatchCappedEvent)
        assert rebuilt.steps == 1234 and rebuilt.policy == "weak"
        assert rebuilt.instantiable
        assert event_to_dict(rebuilt)["signature"] == data["signature"]

        assert main(["tail", str(path), "--kind", "match-capped"]) == 0
        out = capsys.readouterr().out
        assert "match-capped" in out
        assert "1234 steps" in out
        assert "weak -> instantiable" in out


class TestWatchdogWireForm:
    def _record(self, path):
        from repro.core.events import (
            LivelockSuspectedEvent,
            WatchdogMitigationEvent,
        )

        bus = EventBus()
        report = {
            "scan": 3,
            "source": "wd",
            "oldest_waiter_age_ns": 482_500_000,
            "suspects": [
                {
                    "node": "victim",
                    "reason": "yield-storm",
                    "age_ns": 482_500_000,
                    "window": {"request": 9, "acquired": 0, "yield": 9,
                               "resume": 9},
                }
            ],
            "rag": {"threads": [], "locks": [], "edges": []},
        }
        with JsonlWriter(path) as writer:
            bus.subscribe(writer)
            bus.publish(
                LivelockSuspectedEvent(
                    source="wd",
                    thread="victim",
                    reason="yield-storm",
                    age_ns=482_500_000,
                    scan=3,
                    report=report,
                )
            )
            bus.publish(
                WatchdogMitigationEvent(
                    source="wd",
                    thread="victim",
                    policy="break_youngest",
                    action="bypass-granted",
                    reason="yield-storm",
                    age_ns=501_000_000,
                    scan=4,
                )
            )
        return report

    def test_tail_formats_watchdog_events(self, tmp_path, capsys):
        from repro.core.events import LivelockSuspectedEvent

        path = tmp_path / "watchdog.jsonl"
        report = self._record(path)
        # Wire form first: the report dict survives untouched.
        data = json.loads(path.read_text().splitlines()[0])
        rebuilt = event_from_dict(data)
        assert isinstance(rebuilt, LivelockSuspectedEvent)
        assert rebuilt.report == report

        assert main(["tail", str(path), "--kind", "livelock-suspected"]) == 0
        out = capsys.readouterr().out
        assert "livelock-suspected" in out
        assert "victim yield-storm age=482.5ms scan=3" in out
        assert "(1 suspect(s) in report)" in out
        assert main(["tail", str(path), "--kind", "watchdog-mitigation"]) == 0
        out = capsys.readouterr().out
        assert "[break_youngest -> bypass-granted]" in out
        assert "age=501.0ms" in out

    def test_summary_renders_stall_section(self, tmp_path, capsys):
        path = tmp_path / "watchdog.jsonl"
        self._record(path)
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stalls: 1 suspicion(s) across 1 node(s), 1 mitigation(s)" in out
        assert "victim: 1x yield-storm oldest 482.5ms" in out
        assert "mitigated [bypass-granted]: 1" in out


class TestTail:
    def test_tail_prints_every_event(self, recorded_session, capsys):
        path, dx = recorded_session
        assert main(["tail", str(path)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == dx.events.published

    def test_tail_filters_by_kind_and_source(self, recorded_session, capsys):
        path, _dx = recorded_session
        assert main(["tail", str(path), "--kind", "detection"]) == 0
        out = capsys.readouterr().out
        assert out.count("detection") == 2  # one per adapter
        assert main(["tail", str(path), "--source", "cli-vm"]) == 0
        out = capsys.readouterr().out
        assert "cli-vm" in out
        assert "cli/runtime" not in out

    def test_tail_limit(self, recorded_session, capsys):
        path, _dx = recorded_session
        assert main(["tail", str(path), "-n", "3"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3
        assert main(["tail", str(path), "-n", "0"]) == 0
        assert capsys.readouterr().out == ""

    def test_tail_unknown_kind_fails(self, recorded_session, capsys):
        path, _dx = recorded_session
        assert main(["tail", str(path), "--kind", "bogus"]) == 2

    def test_tail_missing_file_fails(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "nope.jsonl")]) == 2

    def test_summary_and_replay_missing_file_fail_cleanly(
        self, tmp_path, capsys
    ):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["summary", missing]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["replay", missing]) == 2
        assert "error:" in capsys.readouterr().err


class TestSummary:
    def test_summary_counts_and_order(self, recorded_session, capsys):
        path, dx = recorded_session
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"{dx.events.published} event(s)" in out
        assert "strictly increasing" in out
        assert "cli/runtime" in out and "cli-vm" in out

    def test_summary_tolerates_appended_recording_segments(
        self, tmp_path, capsys
    ):
        """Two sessions appending to one file (seq restarts at 1) is a
        valid recording, not corruption."""
        path = tmp_path / "two-runs.jsonl"
        for _ in range(2):
            bus = EventBus()
            with JsonlWriter(path) as writer:
                bus.subscribe(writer)
                bus.publish(RequestEvent())
                bus.publish(RequestEvent())
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 recording segment(s)" in out
        assert "OUT OF ORDER" not in out

    def test_summary_flags_out_of_order_seq(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        bus = EventBus()
        with JsonlWriter(path) as writer:
            bus.subscribe(writer)
            for _ in range(3):
                bus.publish(RequestEvent())
        lines = path.read_text().splitlines()
        # A repeated seq is the one shape a bus can never produce (any
        # plain drop could be a legitimate new recording segment).
        path.write_text("\n".join([lines[0], lines[1], lines[1]]) + "\n")
        assert main(["summary", str(path)]) == 1
        assert "OUT OF ORDER" in capsys.readouterr().out


class TestReplay:
    def test_replay_reconstructs_typed_events(self, recorded_session, capsys):
        path, dx = recorded_session
        assert main(["replay", str(path), "--show-signatures"]) == 0
        out = capsys.readouterr().out
        assert f"replayed {dx.events.published} event(s) (0 undecodable)" in out
        assert "DeadlockSignature" in out
        # Per-source parity survives the disk roundtrip.
        assert "cli-vm:" in out

    def test_replay_skips_bad_lines_unless_strict(self, tmp_path, capsys):
        path = tmp_path / "mixed.jsonl"
        signature = DeadlockSignature(
            entries=(
                SignatureEntry(
                    outer=CallStack.single("F.java", 1),
                    inner=CallStack.single("F.java", 2),
                ),
            )
        )
        good = DetectionEvent(signature=signature)
        from repro.core.events import event_to_dict

        path.write_text(
            json.dumps(event_to_dict(good))
            + "\n"
            + json.dumps({"kind": "mystery"})
            + "\n"
        )
        assert main(["replay", str(path)]) == 0
        assert "(1 undecodable)" in capsys.readouterr().out
        assert main(["replay", str(path), "--strict"]) == 1

    def test_torn_trailing_line_is_tolerated(self, recorded_session, capsys):
        """A crash mid-write must not brick the stream file."""
        path, dx = recorded_session
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "req')  # torn write, no newline
        assert main(["summary", str(path)]) == 0
        assert f"{dx.events.published} event(s)" in capsys.readouterr().out
        assert main(["tail", str(path)]) == 0
        assert main(["replay", str(path)]) == 0
        assert "(1 undecodable)" in capsys.readouterr().out
        assert main(["replay", str(path), "--strict"]) == 1
        assert "not JSON" in capsys.readouterr().err


class TestPredictedSeededWireForm:
    def test_roundtrip_and_tail_format(self, tmp_path, capsys):
        from repro.core.events import PredictedSeededEvent

        event = PredictedSeededEvent(
            source="cli",
            signature=_sample_signature(),
            origin="staticlint",
            confidence=0.9,
        )
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.origin == "staticlint"
        assert rebuilt.signature == event.signature

        path = tmp_path / "seeded.jsonl"
        path.write_text(json.dumps(event_to_dict(event)) + "\n")
        assert main(["tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "via staticlint" in out
        assert "confidence 0.90" in out


class TestSummaryProvenance:
    def test_summary_splits_earned_promoted_predicted(
        self, tmp_path, capsys
    ):
        from repro.core.events import PredictedSeededEvent

        predicted = _sample_signature()
        predicted.provenance = "predicted"
        earned = DeadlockSignature(
            [
                SignatureEntry(
                    CallStack.single("other.py", line),
                    CallStack.single("other.py", line + 100),
                )
                for line in (7, 8)
            ]
        )
        path = tmp_path / "mixed.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for seq, event in enumerate((
                PredictedSeededEvent(
                    source="cli", signature=predicted, origin="tracemine"
                ),
                DetectionEvent(source="cli", signature=earned),
            )):
                data = event_to_dict(event)
                data["seq"] = seq
                handle.write(json.dumps(data) + "\n")
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "signatures: 2 distinct (1 earned, 0 promoted, 1 predicted)" in out

    def test_promotion_outranks_earlier_seeding(self, tmp_path, capsys):
        """The same signature seen seeded then detected counts once, earned."""
        signature = _sample_signature()
        seeded = _sample_signature()
        seeded.provenance = "predicted"
        from repro.core.events import PredictedSeededEvent

        path = tmp_path / "promoted.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for seq, event in enumerate((
                PredictedSeededEvent(
                    source="cli", signature=seeded, origin="staticlint"
                ),
                DetectionEvent(source="cli", signature=signature),
            )):
                data = event_to_dict(event)
                data["seq"] = seq
                handle.write(json.dumps(data) + "\n")
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "signatures: 1 distinct (1 earned, 0 promoted, 0 predicted)" in out


class TestMine:
    def _reversal_trace(self, tmp_path):
        def ev(kind, thread, lock, line=0):
            data = {
                "kind": kind,
                "source": "s",
                "thread": thread,
                "lock": lock,
                "ts": 0.0,
            }
            if kind == "request":
                data["position"] = [["app.py", line]]
            return data

        events = []
        for thread, outer, inner, ol, il in [
            ("t1", "A", "B", 10, 11),
            ("t2", "B", "A", 20, 21),
        ]:
            events += [
                ev("request", thread, outer, ol),
                ev("acquired", thread, outer),
                ev("request", thread, inner, il),
                ev("acquired", thread, inner),
                ev("release", thread, inner),
                ev("release", thread, outer),
            ]
        for seq, event in enumerate(events):
            event["seq"] = seq
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(event) + "\n" for event in events)
        )
        return path

    def test_mine_reports_predictions(self, tmp_path, capsys):
        path = self._reversal_trace(tmp_path)
        assert main(["mine", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 predicted deadlock" in out

    def test_mine_seeds_history(self, tmp_path, capsys):
        from repro.core.history import open_history

        path = self._reversal_trace(tmp_path)
        dsn = f"sqlite:///{tmp_path}/immunity.db"
        assert main(["mine", str(path), "--seed", dsn]) == 0
        history = open_history(dsn)
        try:
            assert history.provenance_counts()["predicted"] == 1
        finally:
            history.close()

    def test_mine_min_confidence_filters(self, tmp_path, capsys):
        path = self._reversal_trace(tmp_path)
        assert main(["mine", str(path), "--min-confidence", "0.95"]) == 0
        assert "0 predicted deadlock" in capsys.readouterr().out

    def test_mine_missing_file(self, tmp_path, capsys):
        assert main(["mine", str(tmp_path / "nope.jsonl")]) == 2
