"""Tests for the dimmunix-report CLI."""

import json

import pytest

from repro.tools.report_cli import main


@pytest.fixture
def records_file(tmp_path):
    records = [
        {
            "experiment_id": "E1.vm",
            "description": "overhead",
            "paper_value": "4-5%",
            "measured_value": "4.4%",
            "holds": True,
        },
        {
            "experiment_id": "E2.overall",
            "description": "memory",
            "paper_value": "52% vs 50%",
            "measured_value": "52% vs 50%",
            "holds": True,
        },
        {
            "experiment_id": "E3",
            "description": "power",
            "paper_value": "14%",
            "measured_value": "19%",
            "holds": False,
        },
    ]
    path = tmp_path / "records.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    return path


class TestTextReport:
    def test_renders_all_and_summary(self, records_file, capsys):
        exit_code = main([str(records_file)])
        out = capsys.readouterr().out
        assert "E1.vm" in out and "E3" in out
        assert "2/3 comparisons hold" in out
        assert exit_code == 1  # one record failed

    def test_all_holding_exits_zero(self, records_file, capsys):
        exit_code = main([str(records_file), "--only", "E1"])
        out = capsys.readouterr().out
        assert "1/1 comparisons hold" in out
        assert exit_code == 0

    def test_failing_filter(self, records_file, capsys):
        main([str(records_file), "--failing"])
        out = capsys.readouterr().out
        assert "E3" in out and "E1.vm" not in out

    def test_failing_filter_when_clean(self, records_file, capsys):
        exit_code = main(
            [str(records_file), "--failing", "--only", "E1"]
        )
        assert exit_code == 0
        assert "all recorded comparisons hold" in capsys.readouterr().out


class TestMarkdown:
    def test_markdown_table(self, records_file, capsys):
        main([str(records_file), "--format", "markdown"])
        out = capsys.readouterr().out
        assert out.startswith("| id | claim |")
        assert "| E3 | power | 14% | 19% | **NO** |" in out


class TestErrors:
    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "none.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_bad_record(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(SystemExit, match="bad record"):
            main([str(path)])

    def test_no_matching_records(self, records_file, capsys):
        assert main([str(records_file), "--only", "ZZ"]) == 1
        assert "no matching records" in capsys.readouterr().err


class TestHistoryBlock:
    def _seeded_history(self, tmp_path):
        from repro.core.history import History
        from repro.workloads.synthetic_sigs import make_signature

        history = History()
        history.add(make_signature(("App.java", 10), ("App.java", 20), 0))
        history.add_predicted(
            make_signature(("Svc.java", 30), ("jni.cpp", 40), 1)
        )
        path = tmp_path / "immunity.history"
        history.save(path)
        return path

    def test_history_block_without_records(self, tmp_path, capsys):
        """--history alone works even when no bench records exist yet."""
        history = self._seeded_history(tmp_path)
        missing = tmp_path / "records.jsonl"
        assert main([str(missing), "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "2 antibodies" in out
        assert "earned:    1" in out
        assert "predicted: 1" in out
        assert "promoted:  0" in out

    def test_history_block_appended_to_records(
        self, records_file, tmp_path, capsys
    ):
        history = self._seeded_history(tmp_path)
        main([str(records_file), "--history", str(history)])
        out = capsys.readouterr().out
        assert "comparisons hold" in out
        assert "immunity" in out and "antibodies" in out


class TestHealthVerb:
    def test_renders_session_health_dump(self, tmp_path, capsys):
        """``dimmunix-report health`` on a ``Dimmunix.health()`` dump."""
        import json

        import repro

        dump = tmp_path / "health.json"
        with repro.immunity(
            watchdog=True,
            watchdog_scan_interval=0.02,
            auto_save=False,
            name="healthcli",
        ) as dx:
            import time

            with dx.lock("probe"):  # constructs the runtime core
                pass
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                health = dx.health()
                if health["scans"]:
                    break
                time.sleep(0.01)
            dump.write_text(json.dumps(health), encoding="utf-8")
        assert main(["health", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "health (" in out
        assert "0 suspect(s) now" in out
        assert "watchdog: on" in out
        assert "healthcli/runtime" in out

    def test_rejects_non_health_json(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"phases": {}}', encoding="utf-8")
        assert main(["health", str(bogus)]) == 2
        assert "not a Dimmunix.health() dump" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["health", str(tmp_path / "nope.json")]) == 2

    def test_renders_fleet_health_over_tcp(self, tmp_path, capsys):
        from repro.core.store import open_store
        from repro.fleet.remote import RemoteStore
        from repro.fleet.server import FleetServer

        backing = open_store("mem://", max_signatures=1024)
        fleet = FleetServer(backing, port=0)
        host, port = fleet.start_background()
        client = RemoteStore(
            host,
            port,
            timeout=2.0,
            retry_attempts=2,
            retry_backoff=0.01,
            spill_path=tmp_path / "health.spill.history",
        )
        try:
            client.push_metrics(
                {
                    "client": "phone-1",
                    "phases": {},
                    "spill_depth": 0,
                    "health": {
                        "suspected_now": 2,
                        "livelock_suspects": 5,
                        "watchdog_mitigations": 1,
                        "oldest_waiter_age_ns": 1_234_500_000,
                    },
                }
            )
            assert main(["health", f"tcp://{host}:{port}"]) == 0
            out = capsys.readouterr().out
            assert "2 suspect(s) now" in out
            assert "oldest waiter 1234.5ms" in out
            assert "reporting clients: 1" in out
        finally:
            client.close()
            fleet.stop()
            backing.close()

    def test_tcp_without_reports_exits_one(self, capsys):
        from repro.core.store import open_store
        from repro.fleet.server import FleetServer

        backing = open_store("mem://", max_signatures=1024)
        fleet = FleetServer(backing, port=0)
        host, port = fleet.start_background()
        try:
            assert main(["health", f"tcp://{host}:{port}"]) == 1
            assert "no health reports" in capsys.readouterr().err
        finally:
            fleet.stop()
            backing.close()
