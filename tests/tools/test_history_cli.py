"""Tests for the dimmunix-history CLI."""

import pytest

from repro.core.history import History
from repro.core.signature import KIND_STARVATION, DeadlockSignature
from repro.tools.history_cli import main
from repro.workloads.synthetic_sigs import make_signature


def _starvation(outer_a, outer_b, tag=0) -> DeadlockSignature:
    base = make_signature(outer_a, outer_b, inner_tag=tag)
    return DeadlockSignature(base.entries, kind=KIND_STARVATION)


@pytest.fixture
def sample_history(tmp_path):
    history = History()
    history.add(make_signature(("App.java", 10), ("App.java", 20), 0))
    history.add(make_signature(("Svc.java", 30), ("jni.cpp", 40), 1))
    history.add(_starvation(("App.java", 10), ("Lib.java", 50), 2))
    path = tmp_path / "sample.history"
    history.save(path)
    return path


class TestListShow:
    def test_list(self, sample_history, capsys):
        assert main(["list", str(sample_history)]) == 0
        out = capsys.readouterr().out
        assert out.count("[0]") == 1
        assert "deadlock" in out and "starvation" in out
        assert "App.java:10" in out

    def test_list_empty(self, tmp_path, capsys):
        path = tmp_path / "empty.history"
        History().save(path)
        assert main(["list", str(path)]) == 0
        assert "empty history" in capsys.readouterr().out

    def test_show(self, sample_history, capsys):
        assert main(["show", str(sample_history), "1"]) == 0
        out = capsys.readouterr().out
        assert "thread 1:" in out and "thread 2:" in out
        assert "acquired at (outer)" in out
        assert "jni.cpp:40" in out

    def test_show_out_of_range(self, sample_history, capsys):
        assert main(["show", str(sample_history), "9"]) == 2
        assert "out of range" in capsys.readouterr().err


class TestStats:
    def test_counts(self, sample_history, capsys):
        assert main(["stats", str(sample_history)]) == 0
        out = capsys.readouterr().out
        assert "signatures:  3" in out
        assert "deadlocks:   2" in out
        assert "starvations: 1" in out

    def test_top_positions(self, sample_history, capsys):
        main(["stats", str(sample_history), "--top", "1"])
        out = capsys.readouterr().out
        # App.java:10 is in two signatures -> the top position.
        assert "2x App.java:10" in out


class TestMergeDiff:
    def test_merge_deduplicates(self, tmp_path, capsys):
        a = History()
        a.add(make_signature(("A.java", 1), ("A.java", 2), 0))
        b = History()
        b.add(make_signature(("A.java", 1), ("A.java", 2), 0))  # duplicate
        b.add(make_signature(("B.java", 3), ("B.java", 4), 1))
        path_a, path_b = tmp_path / "a.h", tmp_path / "b.h"
        a.save(path_a)
        b.save(path_b)
        out_path = tmp_path / "merged.h"
        assert main(["merge", str(out_path), str(path_a), str(path_b)]) == 0
        merged = History.load(out_path)
        assert len(merged) == 2
        assert "1 duplicate(s) dropped" in capsys.readouterr().out

    def test_diff_exit_codes(self, tmp_path, capsys):
        a = History()
        a.add(make_signature(("A.java", 1), ("A.java", 2), 0))
        path_a = tmp_path / "a.h"
        path_same = tmp_path / "same.h"
        a.save(path_a)
        a.save(path_same)
        assert main(["diff", str(path_a), str(path_same)]) == 0
        b = History()
        b.add(make_signature(("B.java", 1), ("B.java", 2), 1))
        path_b = tmp_path / "b.h"
        b.save(path_b)
        assert main(["diff", str(path_a), str(path_b)]) == 1
        out = capsys.readouterr().out
        assert f"only in {path_a}: 1" in out
        assert f"only in {path_b}: 1" in out


class TestPrune:
    def test_drop_starvation(self, sample_history, capsys):
        assert main(["prune", str(sample_history), "--drop-starvation"]) == 0
        pruned = History.load(sample_history)
        assert len(pruned) == 2
        assert pruned.starvation_count() == 0

    def test_drop_position_writes_to_output(self, sample_history, tmp_path):
        out_path = tmp_path / "pruned.h"
        assert (
            main(
                [
                    "prune",
                    str(sample_history),
                    "--drop-position",
                    "App.java:10",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        pruned = History.load(out_path)
        # Both signatures touching App.java:10 dropped (1 deadlock + 1 starvation).
        assert len(pruned) == 1
        # The original file is untouched.
        assert len(History.load(sample_history)) == 3

    def test_bad_position_spec(self, sample_history, capsys):
        assert (
            main(["prune", str(sample_history), "--drop-position", "nonsense"])
            == 2
        )
        assert "bad position" in capsys.readouterr().err


class TestValidate:
    def test_valid(self, sample_history, capsys):
        assert main(["validate", str(sample_history)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_invalid_header(self, tmp_path, capsys):
        path = tmp_path / "garbage.history"
        path.write_text('{"format": "not-dimmunix", "version": 1}\n')
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_corrupt_signature_line(self, tmp_path, capsys):
        good = tmp_path / "good.history"
        history = History()
        history.add(make_signature(("A.java", 1), ("A.java", 2)))
        history.save(good)
        corrupted = good.read_text().splitlines()
        corrupted.append("{broken json")
        bad = tmp_path / "bad.history"
        bad.write_text("\n".join(corrupted) + "\n")
        assert main(["validate", str(bad)]) == 1

    def test_missing_file_is_empty_ok(self, tmp_path, capsys):
        # Missing histories load as empty (initDimmunix semantics).
        assert main(["validate", str(tmp_path / "nope.history")]) == 0
