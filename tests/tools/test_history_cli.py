"""Tests for the dimmunix-history CLI."""

import pytest

from repro.core.history import History
from repro.core.signature import KIND_STARVATION, DeadlockSignature
from repro.tools.history_cli import main
from repro.workloads.synthetic_sigs import make_signature


def _starvation(outer_a, outer_b, tag=0) -> DeadlockSignature:
    base = make_signature(outer_a, outer_b, inner_tag=tag)
    return DeadlockSignature(base.entries, kind=KIND_STARVATION)


@pytest.fixture
def sample_history(tmp_path):
    history = History()
    history.add(make_signature(("App.java", 10), ("App.java", 20), 0))
    history.add(make_signature(("Svc.java", 30), ("jni.cpp", 40), 1))
    history.add(_starvation(("App.java", 10), ("Lib.java", 50), 2))
    path = tmp_path / "sample.history"
    history.save(path)
    return path


class TestListShow:
    def test_list(self, sample_history, capsys):
        assert main(["list", str(sample_history)]) == 0
        out = capsys.readouterr().out
        assert out.count("[0]") == 1
        assert "deadlock" in out and "starvation" in out
        assert "App.java:10" in out

    def test_list_empty(self, tmp_path, capsys):
        path = tmp_path / "empty.history"
        History().save(path)
        assert main(["list", str(path)]) == 0
        assert "empty history" in capsys.readouterr().out

    def test_show(self, sample_history, capsys):
        assert main(["show", str(sample_history), "1"]) == 0
        out = capsys.readouterr().out
        assert "thread 1:" in out and "thread 2:" in out
        assert "acquired at (outer)" in out
        assert "jni.cpp:40" in out

    def test_show_out_of_range(self, sample_history, capsys):
        assert main(["show", str(sample_history), "9"]) == 2
        assert "out of range" in capsys.readouterr().err


class TestStats:
    def test_counts(self, sample_history, capsys):
        assert main(["stats", str(sample_history)]) == 0
        out = capsys.readouterr().out
        assert "signatures:  3" in out
        assert "deadlocks:   2" in out
        assert "starvations: 1" in out

    def test_top_positions(self, sample_history, capsys):
        main(["stats", str(sample_history), "--top", "1"])
        out = capsys.readouterr().out
        # App.java:10 is in two signatures -> the top position.
        assert "2x App.java:10" in out


class TestMergeDiff:
    def test_merge_deduplicates(self, tmp_path, capsys):
        a = History()
        a.add(make_signature(("A.java", 1), ("A.java", 2), 0))
        b = History()
        b.add(make_signature(("A.java", 1), ("A.java", 2), 0))  # duplicate
        b.add(make_signature(("B.java", 3), ("B.java", 4), 1))
        path_a, path_b = tmp_path / "a.h", tmp_path / "b.h"
        a.save(path_a)
        b.save(path_b)
        out_path = tmp_path / "merged.h"
        assert main(["merge", str(out_path), str(path_a), str(path_b)]) == 0
        merged = History.load(out_path)
        assert len(merged) == 2
        assert "1 duplicate(s) dropped" in capsys.readouterr().out

    def test_diff_exit_codes(self, tmp_path, capsys):
        a = History()
        a.add(make_signature(("A.java", 1), ("A.java", 2), 0))
        path_a = tmp_path / "a.h"
        path_same = tmp_path / "same.h"
        a.save(path_a)
        a.save(path_same)
        assert main(["diff", str(path_a), str(path_same)]) == 0
        b = History()
        b.add(make_signature(("B.java", 1), ("B.java", 2), 1))
        path_b = tmp_path / "b.h"
        b.save(path_b)
        assert main(["diff", str(path_a), str(path_b)]) == 1
        out = capsys.readouterr().out
        assert f"only in {path_a}: 1" in out
        assert f"only in {path_b}: 1" in out


class TestPrune:
    def test_drop_starvation(self, sample_history, capsys):
        assert main(["prune", str(sample_history), "--drop-starvation"]) == 0
        pruned = History.load(sample_history)
        assert len(pruned) == 2
        assert pruned.starvation_count() == 0

    def test_drop_position_writes_to_output(self, sample_history, tmp_path):
        out_path = tmp_path / "pruned.h"
        assert (
            main(
                [
                    "prune",
                    str(sample_history),
                    "--drop-position",
                    "App.java:10",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        pruned = History.load(out_path)
        # Both signatures touching App.java:10 dropped (1 deadlock + 1 starvation).
        assert len(pruned) == 1
        # The original file is untouched.
        assert len(History.load(sample_history)) == 3

    def test_bad_position_spec(self, sample_history, capsys):
        assert (
            main(["prune", str(sample_history), "--drop-position", "nonsense"])
            == 2
        )
        assert "bad position" in capsys.readouterr().err


class TestValidate:
    def test_valid(self, sample_history, capsys):
        assert main(["validate", str(sample_history)]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_invalid_header(self, tmp_path, capsys):
        path = tmp_path / "garbage.history"
        path.write_text('{"format": "not-dimmunix", "version": 1}\n')
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_corrupt_signature_line(self, tmp_path, capsys):
        good = tmp_path / "good.history"
        history = History()
        history.add(make_signature(("A.java", 1), ("A.java", 2)))
        history.save(good)
        corrupted = good.read_text().splitlines()
        corrupted.append("{broken json")
        bad = tmp_path / "bad.history"
        bad.write_text("\n".join(corrupted) + "\n")
        assert main(["validate", str(bad)]) == 1

    def test_missing_file_is_empty_ok(self, tmp_path, capsys):
        # Missing histories load as empty (initDimmunix semantics).
        assert main(["validate", str(tmp_path / "nope.history")]) == 0


class TestDsnSources:
    """Every read command accepts DSNs as well as paths."""

    def test_list_from_jsonl_dsn(self, sample_history, capsys):
        assert main(["list", f"jsonl://{sample_history}"]) == 0
        assert "App.java:10" in capsys.readouterr().out

    def test_stats_from_sqlite_dsn(self, sample_history, tmp_path, capsys):
        db = tmp_path / "sample.db"
        assert main(["migrate", str(sample_history), f"sqlite://{db}"]) == 0
        capsys.readouterr()
        assert main(["stats", f"sqlite://{db}"]) == 0
        out = capsys.readouterr().out
        assert "signatures:  3" in out

    def test_diff_across_backends(self, sample_history, tmp_path, capsys):
        db = tmp_path / "sample.db"
        assert main(["migrate", str(sample_history), f"sqlite://{db}"]) == 0
        capsys.readouterr()
        assert (
            main(["diff", str(sample_history), f"sqlite://{db}"]) == 0
        )
        assert "common: 3" in capsys.readouterr().out

    def test_mem_source_rejected(self, capsys):
        assert main(["list", "mem://"]) == 2
        assert "mem://" in capsys.readouterr().err

    def test_unknown_scheme_rejected(self, capsys):
        assert main(["list", "redis://x"]) == 2
        assert "unknown history backend" in capsys.readouterr().err


class TestMigrate:
    def test_legacy_file_to_sqlite_and_back(self, sample_history, tmp_path, capsys):
        db = tmp_path / "platform.db"
        assert main(["migrate", str(sample_history), f"sqlite://{db}"]) == 0
        out = capsys.readouterr().out
        assert "3 migrated, 0 already present" in out
        # Idempotent: a second run migrates nothing new.
        assert main(["migrate", str(sample_history), f"sqlite://{db}"]) == 0
        assert "0 migrated, 3 already present" in capsys.readouterr().out
        # Round trip back to a flat file preserves everything.
        back = tmp_path / "back.history"
        assert main(["migrate", f"sqlite://{db}", str(back)]) == 0
        assert len(History.load(back)) == 3

    def test_same_src_dst_rejected(self, sample_history, capsys):
        assert (
            main(["migrate", str(sample_history), str(sample_history)]) == 2
        )
        assert "same" in capsys.readouterr().err

    def test_merge_into_existing_backend(self, sample_history, tmp_path, capsys):
        db = tmp_path / "pool.db"
        extra = tmp_path / "extra.history"
        history = History()
        history.add(make_signature(("New.java", 70), ("New.java", 80), 5))
        history.save(extra)
        assert main(["migrate", str(sample_history), f"sqlite://{db}"]) == 0
        assert main(["migrate", str(extra), f"sqlite://{db}"]) == 0
        capsys.readouterr()
        assert main(["stats", f"sqlite://{db}"]) == 0
        assert "signatures:  4" in capsys.readouterr().out


class TestCompact:
    def test_compact_in_place_reports_counts(self, sample_history, capsys):
        assert main(["compact", str(sample_history)]) == 0
        out = capsys.readouterr().out
        assert "compacted 3 -> 3 signature(s)" in out
        assert len(History.load(sample_history)) == 3

    def test_compact_truncation_is_loud_and_nonzero(
        self, sample_history, tmp_path, capsys
    ):
        out_path = tmp_path / "capped.history"
        code = main(
            [
                "compact",
                str(sample_history),
                "--output",
                str(out_path),
                "--max-signatures",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "truncated 1 signature(s)" in captured.err
        assert len(History.load(out_path)) == 2
        # The source is untouched when --output is given.
        assert len(History.load(sample_history)) == 3

    def test_compact_drops_duplicate_lines(self, sample_history, capsys):
        # Simulate an append-only log that accumulated duplicates.
        lines = sample_history.read_text().splitlines()
        with open(sample_history, "a", encoding="utf-8") as handle:
            handle.write(lines[1] + "\n")
        assert main(["compact", str(sample_history)]) == 0
        body = [
            line
            for line in sample_history.read_text().splitlines()[1:]
            if line.strip()
        ]
        assert len(body) == 3

    def test_compact_to_sqlite_target(self, sample_history, tmp_path, capsys):
        db = tmp_path / "compacted.db"
        assert (
            main(
                ["compact", str(sample_history), "--output", f"sqlite://{db}"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["stats", f"sqlite://{db}"]) == 0
        assert "signatures:  3" in capsys.readouterr().out


class TestReadOnlyDsnSafety:
    def test_read_commands_do_not_create_backend_files(self, tmp_path, capsys):
        db = tmp_path / "typo.db"
        assert main(["stats", f"sqlite://{db}"]) == 0
        assert "signatures:  0" in capsys.readouterr().out
        assert not db.exists()
        assert main(["validate", f"sqlite://{db}"]) == 0
        assert not db.exists()

    def test_migrate_into_existing_path_merges(self, sample_history, tmp_path, capsys):
        dst = tmp_path / "dst.history"
        prior = History()
        prior.add(make_signature(("Old.java", 1), ("Old.java", 2), 9))
        prior.save(dst)
        assert main(["migrate", str(sample_history), str(dst)]) == 0
        assert "3 migrated" in capsys.readouterr().out
        merged = History.load(dst)
        assert len(merged) == 4  # the prior antibody survived


class TestStatsProvenance:
    def test_stats_splits_provenance(self, tmp_path, capsys):
        history = History()
        history.add(make_signature(("App.java", 10), ("App.java", 20), 0))
        predicted = make_signature(("Svc.java", 30), ("jni.cpp", 40), 1)
        history.add_predicted(predicted)
        promoted = make_signature(("Ui.java", 50), ("jni.cpp", 60), 2)
        history.add_predicted(promoted)
        history.promote(promoted)
        path = tmp_path / "prov.history"
        history.save(path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "provenance:" in out
        assert "1 earned" in out
        assert "1 promoted" in out
        assert "1 predicted" in out


class TestFleetDsns:
    """shard:// and tcp:// through the operator tooling."""

    @pytest.fixture
    def fleet_server(self, tmp_path):
        from repro.core.store import open_store
        from repro.fleet.server import FleetServer

        backing = open_store(
            f"sqlite://{tmp_path / 'pool.db'}", max_signatures=65536
        )
        server = FleetServer(backing, port=0)
        server.start_background()
        yield server
        server.stop()
        backing.close()

    def test_migrate_reshards(self, sample_history, tmp_path, capsys):
        # Legacy file -> 2 shards -> 4 shards: the resharding path.
        two = tmp_path / "pool2"
        four = tmp_path / "pool4"
        assert main(
            ["migrate", str(sample_history), f"shard://{two}?shards=2"]
        ) == 0
        assert "3 migrated" in capsys.readouterr().out
        assert main(
            ["migrate", f"shard://{two}", f"shard://{four}?shards=4"]
        ) == 0
        assert main(["stats", f"shard://{four}"]) == 0
        assert "signatures:  3" in capsys.readouterr().out

    def test_shard_count_conflict_is_loud(self, sample_history, tmp_path, capsys):
        pool = tmp_path / "pool"
        assert main(
            ["migrate", str(sample_history), f"shard://{pool}?shards=2"]
        ) == 0
        capsys.readouterr()
        assert main(["stats", f"shard://{pool}?shards=8"]) == 2
        assert "migrate" in capsys.readouterr().err

    def test_migrate_seeds_a_live_server(
        self, sample_history, fleet_server, capsys
    ):
        url = fleet_server.address
        assert main(["migrate", str(sample_history), url]) == 0
        assert "3 migrated" in capsys.readouterr().out
        assert len(fleet_server.store) == 3
        assert main(["stats", url]) == 0
        assert "signatures:  3" in capsys.readouterr().out

    def test_unreachable_server_is_an_error_not_empty(self, capsys):
        # Reading a partitioned fleet must not report an empty pool.
        assert main(["stats", "tcp://127.0.0.1:1"]) == 2
        err = capsys.readouterr().err
        assert "unreachable" in err
        assert "dimmunix-serve" in err

    def test_compact_refuses_a_live_pool(self, fleet_server, capsys):
        url = fleet_server.address
        assert main(["compact", url]) == 2
        assert "connected client" in capsys.readouterr().err

    def test_compact_refuses_tcp_output_too(self, sample_history, fleet_server, capsys):
        assert main(
            ["compact", str(sample_history), "--output", fleet_server.address]
        ) == 2
        assert "compact the server's backing store" in capsys.readouterr().err
