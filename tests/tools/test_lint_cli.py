"""``dimmunix-lint`` CLI: exit codes, goldens, seeding."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.history import open_history
from repro.tools.lint_cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDENS = Path("tests/tools/goldens")
BUGGY = GOLDENS / "buggy_transfers.py"
CLEAN = GOLDENS / "clean_transfers.py"


@pytest.fixture(autouse=True)
def _repo_root_cwd(monkeypatch):
    """Goldens pin repo-relative paths in the rendered diagnostics."""
    monkeypatch.chdir(REPO_ROOT)


class TestExitCodes:
    def test_buggy_file_exits_nonzero(self, capsys):
        assert main([str(BUGGY)]) == 1
        assert "lock-order cycle" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, capsys):
        assert main([str(CLEAN)]) == 0
        assert "0 lock-order cycles" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert main(["no/such/file.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_shipped_quickstart_flags(self, capsys):
        """Acceptance: the buggy example is caught with file:line."""
        assert main(["examples/quickstart.py"]) == 1
        out = capsys.readouterr().out
        assert "examples/quickstart.py:" in out

    def test_shipped_clean_example_passes(self):
        assert main(["examples/ordered_transfers.py"]) == 0


class TestGoldens:
    def test_text_output_matches_golden(self, capsys):
        main([str(BUGGY)])
        expected = (GOLDENS / "buggy_transfers.txt").read_text()
        assert capsys.readouterr().out == expected

    def test_json_output_matches_golden(self, capsys):
        main([str(BUGGY), "--format", "json"])
        expected = json.loads((GOLDENS / "buggy_transfers.json").read_text())
        assert json.loads(capsys.readouterr().out) == expected


class TestOptions:
    def test_min_confidence_drops_weak_cycles(self, capsys):
        # The multi-instance fork self-loop (0.60) is filtered; the
        # ctor-named AB/BA cycle (0.90) survives.
        assert main([str(BUGGY), "--min-confidence", "0.8"]) == 1
        out = capsys.readouterr().out
        assert "golden-fork" not in out
        assert "golden-ledger" in out

    def test_bad_min_confidence_rejected(self):
        with pytest.raises(SystemExit):
            main([str(BUGGY), "--min-confidence", "1.5"])

    def test_seed_writes_predicted_history(self, tmp_path, capsys):
        dsn = f"sqlite:///{tmp_path}/immunity.db"
        assert main([str(BUGGY), "--seed", dsn]) == 1
        assert "seeded 2 predicted signature(s)" in capsys.readouterr().out
        history = open_history(dsn)
        try:
            assert history.provenance_counts()["predicted"] == 2
        finally:
            history.close()

    def test_seed_memory_dsn_is_an_error(self, capsys):
        assert main([str(BUGGY), "--seed", "mem://"]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_is_warning_not_crash(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 0
        assert "warning" in capsys.readouterr().err
