"""Phone simulator tests: per-process isolation (Figure 1) and the
paired Table-1 runs."""

import pytest

from repro.android.apps import CAMERA, TALK, Phase
from repro.android.phone import PhoneSimulator, run_table1_phone_pair
from repro.dalvik.zygote import Zygote
from repro.dalvik.vm import VMConfig

FAST_PROFILE = (Phase(seconds=0.4, intensity=1.0),)


class TestPhoneSimulator:
    def test_launch_app_records_result(self):
        phone = PhoneSimulator(immunized=True)
        result = phone.launch_app(CAMERA, phases=FAST_PROFILE)
        assert result.run.status == "completed"
        assert phone.results()["Camera"] is result

    def test_vanilla_phone_runs_without_core(self):
        phone = PhoneSimulator(immunized=False)
        result = phone.launch_app(CAMERA, phases=FAST_PROFILE)
        assert result.vm.core is None

    def test_power_attribution_over_apps(self):
        phone = PhoneSimulator(immunized=True)
        phone.launch_app(CAMERA, phases=FAST_PROFILE)
        attribution = phone.power_attribution()
        assert attribution.wall_seconds > 0
        assert 0 < attribution.apps_fraction < 1


class TestZygoteIsolation:
    def test_processes_have_isolated_dimmunix_instances(self, tmp_path):
        """Figure 1: each forked process gets its own Dimmunix data."""
        zygote = Zygote(VMConfig(), history_dir=tmp_path)
        proc_a = zygote.fork("com.android.email")
        proc_b = zygote.fork("com.android.browser")
        assert proc_a.core is not proc_b.core
        assert proc_a.core.history is not proc_b.core.history
        assert (
            proc_a.core.config.history_path
            != proc_b.core.config.history_path
        )

    def test_fork_count(self, tmp_path):
        zygote = Zygote(VMConfig(), history_dir=tmp_path)
        zygote.fork("a")
        zygote.fork("b")
        assert zygote.fork_count == 2

    def test_vanilla_zygote_forks_without_dimmunix(self):
        zygote = Zygote(VMConfig().vanilla())
        assert zygote.fork("a").core is None


class TestZygoteBackendRegistry:
    """Backends resolve through the store URL registry, not a
    hard-coded pair — ``mem`` and future schemes work without touching
    Zygote."""

    def test_every_known_scheme_is_accepted(self, tmp_path):
        from repro.core.store.url import KNOWN_SCHEMES, SCHEME_TCP

        for scheme in KNOWN_SCHEMES:
            if scheme == SCHEME_TCP:
                # Fleet-addressed, not file-mapped: rejected with a
                # pointer at the shared-pool spelling instead.
                with pytest.raises(ValueError, match="history_url"):
                    Zygote(
                        VMConfig(), history_dir=tmp_path, backend=scheme
                    )
                continue
            zygote = Zygote(
                VMConfig(), history_dir=tmp_path, backend=scheme
            )
            assert zygote.fork(f"app-{scheme}").core is not None

    def test_unknown_scheme_names_the_registry(self):
        with pytest.raises(ValueError, match="mem"):
            Zygote(VMConfig(), backend="carrier-pigeon")

    def test_mem_backend_forks_without_files(self, tmp_path):
        zygote = Zygote(VMConfig(), history_dir=tmp_path, backend="mem")
        assert zygote.history_path("com.android.email") is None
        assert zygote.history_url("com.android.email") == "mem://"
        process = zygote.fork("com.android.email")
        assert process.core is not None
        assert process.core.config.resolved_history_url() == "mem://"
        assert list(tmp_path.iterdir()) == []

    def test_sqlite_backend_still_maps_paths(self, tmp_path):
        zygote = Zygote(VMConfig(), history_dir=tmp_path, backend="sqlite")
        url = zygote.history_url("com.android.email")
        assert url == f"sqlite://{tmp_path}/com.android.email.history.db"

    def test_jsonl_backend_clears_preset_url(self, tmp_path):
        """A template config carrying history_url must not crash (or
        leak its foreign backend into) a jsonl-backed fork."""
        from repro.config import DimmunixConfig

        preset = VMConfig(
            dimmunix=DimmunixConfig(history_url="sqlite:///shared.db")
        )
        with_dir = Zygote(preset, history_dir=tmp_path, backend="jsonl")
        config = with_dir.fork("com.android.email").core.config
        assert config.history_url is None
        assert config.history_path == tmp_path / "com.android.email.history"

        dirless = Zygote(preset, history_dir=None, backend="jsonl")
        config = dirless.fork("com.android.email").core.config
        assert config.resolved_history_url() is None

    def test_dirless_persistent_backend_clears_preset_path(self, tmp_path):
        """No history_dir + sqlite backend means in-memory — it must not
        fall through to a history_path preset on the template config."""
        from repro.config import DimmunixConfig

        preset = VMConfig(
            dimmunix=DimmunixConfig(history_path=tmp_path / "shared.history")
        )
        zygote = Zygote(preset, history_dir=None, backend="sqlite")
        process = zygote.fork("com.android.email")
        config = process.core.config
        assert config.history_path is None
        assert config.resolved_history_url() is None


class TestTable1Pair:
    def test_pair_produces_rows_for_each_app(self):
        rows, report, immunized, vanilla = run_table1_phone_pair(
            [CAMERA, TALK], phases=FAST_PROFILE
        )
        assert [row.name for row in rows] == ["Camera", "Talk"]
        for row in rows:
            assert row.dimmunix_mb > row.vanilla_mb
        assert report.dimmunix_pct > report.vanilla_pct
        assert set(immunized.results()) == {"Camera", "Talk"}
        assert set(vanilla.results()) == {"Camera", "Talk"}
