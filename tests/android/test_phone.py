"""Phone simulator tests: per-process isolation (Figure 1) and the
paired Table-1 runs."""

from repro.android.apps import CAMERA, TALK, Phase
from repro.android.phone import PhoneSimulator, run_table1_phone_pair
from repro.dalvik.zygote import Zygote
from repro.dalvik.vm import VMConfig

FAST_PROFILE = (Phase(seconds=0.4, intensity=1.0),)


class TestPhoneSimulator:
    def test_launch_app_records_result(self):
        phone = PhoneSimulator(immunized=True)
        result = phone.launch_app(CAMERA, phases=FAST_PROFILE)
        assert result.run.status == "completed"
        assert phone.results()["Camera"] is result

    def test_vanilla_phone_runs_without_core(self):
        phone = PhoneSimulator(immunized=False)
        result = phone.launch_app(CAMERA, phases=FAST_PROFILE)
        assert result.vm.core is None

    def test_power_attribution_over_apps(self):
        phone = PhoneSimulator(immunized=True)
        phone.launch_app(CAMERA, phases=FAST_PROFILE)
        attribution = phone.power_attribution()
        assert attribution.wall_seconds > 0
        assert 0 < attribution.apps_fraction < 1


class TestZygoteIsolation:
    def test_processes_have_isolated_dimmunix_instances(self, tmp_path):
        """Figure 1: each forked process gets its own Dimmunix data."""
        zygote = Zygote(VMConfig(), history_dir=tmp_path)
        proc_a = zygote.fork("com.android.email")
        proc_b = zygote.fork("com.android.browser")
        assert proc_a.core is not proc_b.core
        assert proc_a.core.history is not proc_b.core.history
        assert (
            proc_a.core.config.history_path
            != proc_b.core.config.history_path
        )

    def test_fork_count(self, tmp_path):
        zygote = Zygote(VMConfig(), history_dir=tmp_path)
        zygote.fork("a")
        zygote.fork("b")
        assert zygote.fork_count == 2

    def test_vanilla_zygote_forks_without_dimmunix(self):
        zygote = Zygote(VMConfig().vanilla())
        assert zygote.fork("a").core is None


class TestTable1Pair:
    def test_pair_produces_rows_for_each_app(self):
        rows, report, immunized, vanilla = run_table1_phone_pair(
            [CAMERA, TALK], phases=FAST_PROFILE
        )
        assert [row.name for row in rows] == ["Camera", "Talk"]
        for row in rows:
            assert row.dimmunix_mb > row.vanilla_mb
        assert report.dimmunix_pct > report.vanilla_pct
        assert set(immunized.results()) == {"Camera", "Talk"}
        assert set(vanilla.results()) == {"Camera", "Talk"}
