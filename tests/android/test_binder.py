"""Unit tests for the binder transaction model and system_server wiring."""

from repro.android.binder import (
    BinderThreadPool,
    BinderTransaction,
    build_worker_program,
)
from repro.android.system_server import start_system_server
from repro.dalvik.vm import DalvikVM, VMConfig


def _noop_service(builder) -> None:
    builder.function("noop")
    builder.compute(2)
    builder.ret()


class TestBinderTransactions:
    def test_worker_executes_each_stream(self):
        vm = DalvikVM(VMConfig().vanilla())
        pool = BinderThreadPool(vm)
        worker = pool.submit(
            [
                BinderTransaction("noop", count=3, gap_ticks=1),
                BinderTransaction("noop", count=2, gap_ticks=1),
            ],
            [_noop_service],
        )
        result = vm.run()
        assert result.status == "completed"
        assert worker.state.value == "terminated"

    def test_initial_delay_defers_first_call(self):
        vm = DalvikVM(VMConfig().vanilla())
        pool = BinderThreadPool(vm)

        def touch_service(builder) -> None:
            builder.function("touch")
            builder.monitor_enter("binder.obj", line=200)
            builder.monitor_exit("binder.obj", line=201)
            builder.ret()

        pool.submit(
            [BinderTransaction("touch", count=1, initial_delay_ticks=500)],
            [touch_service],
        )
        ticks_at_sync = []
        vm.sync_hook = lambda clock, thread: ticks_at_sync.append(clock)
        result = vm.run()
        assert result.status == "completed"
        assert ticks_at_sync and ticks_at_sync[0] >= 500

    def test_pool_names_workers_sequentially(self):
        vm = DalvikVM(VMConfig().vanilla())
        pool = BinderThreadPool(vm, name_prefix="Binder")
        first = pool.submit([BinderTransaction("noop")], [_noop_service])
        second = pool.submit([BinderTransaction("noop")], [_noop_service])
        assert (first.name, second.name) == ("Binder-1", "Binder-2")
        assert pool.workers == (first, second)

    def test_program_requires_named_functions(self):
        import pytest

        from repro.errors import ProgramError

        with pytest.raises(ProgramError, match="unresolved function"):
            build_worker_program([BinderTransaction("missing")], [])


class TestSystemServerComposition:
    def test_threads_present_and_named(self):
        vm = DalvikVM(VMConfig().vanilla())
        server = start_system_server(vm, notifications=1, expands=1, renders=1)
        names = {thread.name for thread in vm.threads}
        assert server.binder_worker.name in names
        assert len(vm.threads) == 3  # binder worker, handler, UI thread

    def test_no_overlap_no_freeze_vanilla(self):
        """§1: the phone may freeze when the user expands the status bar
        *while* notifications are sent. Delay the notification stream
        past the expansion phase and the same vanilla process finishes —
        the bug is the overlap, not either activity alone."""
        vm = DalvikVM(VMConfig(seed=1).vanilla())
        server = start_system_server(
            vm,
            notifications=4,
            expands=2,
            renders=1,
            binder_delay=100_000,
        )
        result = vm.run(max_ticks=400_000)
        assert result.status == "completed"
        assert not server.ui_blocked
