"""Memory (E2) and power (E3) model tests."""

import pytest

from repro.android.apps import CAMERA, Phase, run_app_pair
from repro.android.memory import (
    AppMemoryRow,
    estimated_system_process_overhead_bytes,
    measure_pair,
    system_report,
)
from repro.android.power import PowerAttribution, PowerModel, attribute

FAST_PROFILE = (Phase(seconds=0.5, intensity=1.0),)


class TestAppMemory:
    def test_overhead_positive_and_small(self):
        with_dim, without = run_app_pair(CAMERA, phases=FAST_PROFILE)
        row = measure_pair(CAMERA, with_dim, without)
        assert row.dimmunix_mb > row.vanilla_mb
        assert 0.0 < row.overhead_pct < 10.0

    def test_row_carries_table1_columns(self):
        with_dim, without = run_app_pair(CAMERA, phases=FAST_PROFILE)
        row = measure_pair(CAMERA, with_dim, without)
        assert row.name == "Camera"
        assert row.threads == 26
        assert row.vanilla_mb == CAMERA.vanilla_mb


class TestSystemReport:
    @staticmethod
    def synthetic_rows():
        return [
            AppMemoryRow("A", 10, 500.0, vanilla_mb=20.0, dimmunix_mb=20.8),
            AppMemoryRow("B", 20, 900.0, vanilla_mb=30.0, dimmunix_mb=31.0),
        ]

    def test_totals(self):
        report = system_report(
            self.synthetic_rows(), os_base_mb=100.0, system_overhead_mb=5.0
        )
        assert report.vanilla_total_mb == pytest.approx(150.0)
        assert report.dimmunix_total_mb == pytest.approx(156.8)

    def test_percent_of_device(self):
        report = system_report(
            self.synthetic_rows(),
            os_base_mb=100.0,
            system_overhead_mb=5.0,
            device_mb=512.0,
        )
        assert report.vanilla_pct == pytest.approx(150.0 / 512.0 * 100)
        assert report.dimmunix_pct > report.vanilla_pct

    def test_default_system_overhead_estimate(self):
        report = system_report(self.synthetic_rows())
        assert report.system_overhead_mb > 0
        per_process = estimated_system_process_overhead_bytes()
        assert report.system_overhead_mb == pytest.approx(
            14 * per_process / (1024 * 1024)
        )


class TestPowerModel:
    def test_attribution_basics(self):
        attribution = attribute(
            busy_ticks=48_000,
            wall_ticks=100_000,
            ticks_per_second=100_000,
        )
        assert attribution.duty_cycle == pytest.approx(0.48)
        assert 10 <= attribution.apps_percent <= 20

    def test_zero_wall_time(self):
        attribution = attribute(0, 0, 100_000)
        assert attribution.apps_percent == 0

    def test_small_cpu_overhead_invisible_after_rounding(self):
        """The paper's E3 claim: +4-5% CPU does not move the battery
        screen's whole-percent attribution."""
        base = attribute(48_000, 100_000, 100_000)
        plus_5pct = attribute(50_400, 102_400, 100_000)
        assert base.apps_percent == plus_5pct.apps_percent

    def test_custom_model(self):
        hungry_cpu = PowerModel(cpu_active_mw=2000.0)
        attribution = attribute(50_000, 100_000, 100_000, hungry_cpu)
        assert attribution.apps_percent > 40

    def test_energy_accounting(self):
        model = PowerModel(cpu_active_mw=100.0, cpu_idle_mw=0.0, baseline_mw=900.0)
        attribution = attribute(50_000, 100_000, 100_000, model)
        # 0.5s * 100mW = 50 mJ CPU; 1s * 900 mW baseline.
        assert attribution.cpu_energy_mj == pytest.approx(50.0)
        assert attribution.total_energy_mj == pytest.approx(950.0)
        assert attribution.apps_percent == round(50 / 950 * 100)
