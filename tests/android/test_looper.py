"""Unit tests for the Looper/MessageQueue substrate."""

from repro.android.looper import (
    MessageQueue,
    emit_message_loop,
    emit_send_message,
)
from repro.dalvik.program import ProgramBuilder
from repro.dalvik.vm import DalvikVM, VMConfig


def run_scenario(senders=1, messages_each=3, dimmunix=False):
    queue = MessageQueue("TQ")
    config = VMConfig() if dimmunix else VMConfig().vanilla()
    vm = DalvikVM(config)

    handler = ProgramBuilder("Handler.java")
    emit_message_loop(
        handler,
        queue,
        "on_message",
        messages_to_handle=senders * messages_each,
    )
    handler.halt()
    handler.function("on_message")
    handler.add_reg("g:handled", 1, line=300)
    handler.ret(line=301)
    vm.spawn(handler.build(), "handler")

    sender = ProgramBuilder("Sender.java")
    sender.set_reg("n", messages_each)
    sender.label("send_loop")
    emit_send_message(sender, queue, line_base=400)
    sender.compute(6)
    sender.loop_dec("n", "send_loop")
    sender.halt()
    for index in range(senders):
        vm.spawn(sender.build(), f"sender-{index}")

    result = vm.run(max_ticks=500_000)
    return vm, result


class TestMessageLoop:
    def test_single_sender_all_messages_handled(self):
        vm, result = run_scenario(senders=1, messages_each=3)
        assert result.status == "completed"
        assert vm.globals["g:handled"] == 3

    def test_multiple_senders(self):
        vm, result = run_scenario(senders=3, messages_each=2)
        assert result.status == "completed"
        assert vm.globals["g:handled"] == 6

    def test_handler_waits_when_queue_empty(self):
        """Messages arrive after the handler started waiting."""
        queue = MessageQueue("LQ")
        vm = DalvikVM(VMConfig().vanilla())
        handler = ProgramBuilder("Handler.java")
        emit_message_loop(handler, queue, "on_message", messages_to_handle=1)
        handler.halt()
        handler.function("on_message")
        handler.add_reg("g:handled", 1, line=300)
        handler.ret(line=301)
        vm.spawn(handler.build(), "handler")

        late_sender = ProgramBuilder("Sender.java")
        late_sender.sleep(200)
        emit_send_message(late_sender, queue, line_base=400)
        late_sender.halt()
        vm.spawn(late_sender.build(), "late")
        result = vm.run(max_ticks=100_000)
        assert result.status == "completed"
        assert vm.globals["g:handled"] == 1

    def test_runs_under_dimmunix(self):
        vm, result = run_scenario(senders=2, messages_each=2, dimmunix=True)
        assert result.status == "completed"
        assert vm.globals["g:handled"] == 4
        assert result.detections == ()

    def test_queue_names(self):
        queue = MessageQueue("SBS")
        assert queue.lock_object == "SBS.mQueue"
        assert queue.depth_global == "g:SBS.depth"
