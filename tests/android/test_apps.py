"""The Table-1 app catalog and workload generator."""

import pytest

from repro.android.apps import (
    CAMERA,
    EMAIL,
    TABLE1_APPS,
    AppSpec,
    Phase,
    app_by_name,
    build_worker_program,
    per_sync_budget_ticks,
    run_app,
)
from repro.android.apps.workload import TABLE1_VM_CONFIG

FAST_PROFILE = (Phase(seconds=0.5, intensity=1.0),)


class TestCatalog:
    def test_eight_apps(self):
        assert len(TABLE1_APPS) == 8

    def test_paper_thread_counts(self):
        by_name = {spec.name: spec.threads for spec in TABLE1_APPS}
        assert by_name["Email"] == 46
        assert by_name["Maps"] == 119
        assert by_name["Angry Birds"] == 23

    def test_paper_sync_rates_ordered(self):
        rates = [spec.target_syncs_per_sec for spec in TABLE1_APPS]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] == 1952 and rates[-1] == 309

    def test_lookup_by_name(self):
        assert app_by_name("Email") is EMAIL
        with pytest.raises(KeyError):
            app_by_name("TikTok")


class TestProgramGeneration:
    def test_sites_have_distinct_stable_positions(self):
        program = build_worker_program(CAMERA, TABLE1_VM_CONFIG)
        sites = program.sync_sites()
        assert len(sites) == CAMERA.sync_sites
        assert len({(s.file, s.line) for s in sites}) == CAMERA.sync_sites

    def test_same_spec_same_positions(self):
        one = build_worker_program(CAMERA, TABLE1_VM_CONFIG)
        two = build_worker_program(CAMERA, TABLE1_VM_CONFIG)
        keys = lambda p: [(s.file, s.line) for s in p.sync_sites()]
        assert keys(one) == keys(two)

    def test_budget_respects_target_rate(self):
        budget = per_sync_budget_ticks(EMAIL, TABLE1_VM_CONFIG)
        expected = TABLE1_VM_CONFIG.ticks_per_second / EMAIL.target_syncs_per_sec
        assert budget == pytest.approx(expected, rel=0.02)

    def test_idle_phase_emits_sleep(self):
        program = build_worker_program(
            CAMERA,
            TABLE1_VM_CONFIG,
            phases=(Phase(0.2, 1.0), Phase(0.1, 0.0), Phase(0.2, 1.0)),
        )
        from repro.dalvik import instructions as ins

        sleeps = [
            i for i in program.instructions if isinstance(i, ins.Sleep)
        ]
        assert len(sleeps) == 1


class TestWorkloadRun:
    def test_app_completes_and_hits_rate_band(self):
        result = run_app(CAMERA, dimmunix=False, phases=FAST_PROFILE)
        assert result.run.status == "completed"
        rate = result.peak_syncs_per_sec
        assert 0.7 * CAMERA.target_syncs_per_sec <= rate <= 1.4 * CAMERA.target_syncs_per_sec

    def test_dimmunix_run_detects_nothing(self):
        result = run_app(CAMERA, dimmunix=True, phases=FAST_PROFILE)
        assert result.run.status == "completed"
        assert result.run.detections == ()

    def test_thread_count_matches_spec(self):
        result = run_app(CAMERA, dimmunix=False, phases=FAST_PROFILE)
        assert len(result.vm.threads) == CAMERA.threads

    def test_dimmunix_tracks_structures(self):
        result = run_app(CAMERA, dimmunix=True, phases=FAST_PROFILE)
        core = result.vm.core
        snapshot = core.snapshot()
        assert snapshot.threads == CAMERA.threads
        assert snapshot.positions >= CAMERA.sync_sites
        assert result.vm.heap.monitor_count() > 0

    def test_vanilla_keeps_locks_thin(self):
        """Random locks = (almost) no contention = thin locks throughout.

        A rare same-object collision may inflate a monitor or two (the
        worker is preempted inside a critical section); the asymmetry
        that matters for E2 is vanilla ~0 vs Dimmunix fattening *every*
        locked object.
        """
        vanilla = run_app(CAMERA, dimmunix=False, phases=FAST_PROFILE)
        immunized = run_app(CAMERA, dimmunix=True, phases=FAST_PROFILE)
        assert vanilla.vm.heap.monitor_count() <= 3
        assert (
            immunized.vm.heap.monitor_count()
            >= 20 * max(vanilla.vm.heap.monitor_count(), 1)
        )
