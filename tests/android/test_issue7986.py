"""The paper's case study (E4): detect once, then immune across reboot."""

from repro.android.issue7986 import (
    demonstrate_immunity,
    run_once,
    run_vanilla,
)
from repro.dalvik.vm import DalvikVM, VMConfig


class TestVanillaBaseline:
    def test_vanilla_freezes_with_ui_blocked(self):
        outcome = run_vanilla()
        assert outcome.frozen
        assert outcome.ui_blocked
        assert outcome.detections == ()

    def test_vanilla_stall_names_the_services(self):
        outcome = run_vanilla()
        cycle = set(outcome.run.stall["cycle"])
        assert "StatusBarService$H" in cycle
        assert "Binder-1" in cycle


class TestImmunityStory:
    def test_full_story(self, tmp_path):
        first, second = demonstrate_immunity(tmp_path)
        # Boot 1: the phone hangs once; the signature is recorded.
        assert first.frozen
        assert first.ui_blocked
        assert len(first.detections) == 1
        # The persistent history survived the freeze.
        assert (tmp_path / "system_server.history").exists()
        # Boot 2: same workload, no deadlock, no user intervention.
        assert second.completed
        assert not second.ui_blocked
        assert second.detections == ()
        assert second.yields >= 1

    def test_signature_involves_both_services(self, tmp_path):
        first, _second = demonstrate_immunity(tmp_path)
        signature = first.detections[0]
        files = {key[0][0] for key in signature.outer_position_keys()}
        assert any("NotificationManagerService" in f for f in files)
        assert any("StatusBarService" in f for f in files)

    def test_third_boot_remains_immune(self, tmp_path):
        from repro.dalvik.zygote import Zygote

        zygote = Zygote(VMConfig(), history_dir=tmp_path)
        first = run_once(zygote.fork("system_server"))
        assert first.frozen
        for _boot in range(2):
            again = run_once(zygote.fork("system_server"))
            assert again.completed
            assert again.detections == ()

    def test_fresh_history_means_fresh_freeze(self, tmp_path):
        """Immunity comes from the history, not from luck: wiping the
        history reintroduces the hang."""
        first, second = demonstrate_immunity(tmp_path / "a")
        assert first.frozen and second.completed
        third, _fourth = demonstrate_immunity(tmp_path / "b")
        assert third.frozen


class TestScenarioShape:
    def test_dimmunix_boot1_matches_vanilla_schedule(self):
        """Both images reach the deadlock; Dimmunix just records it."""
        vanilla = run_vanilla()
        vm = DalvikVM(VMConfig(), name="system_server")
        immunized = run_once(vm)
        assert vanilla.frozen and immunized.frozen
        assert immunized.detections
