"""Microbenchmark harness tests (fast configurations)."""

import pytest

from repro.workloads.microbench import (
    MODE_DIMMUNIX,
    MODE_VANILLA,
    MODE_WRAPPER_OFF,
    MicrobenchConfig,
    build_vm_program,
    make_acquire_sites,
    run_real_microbench,
    run_vm_microbench,
    run_vm_pair,
    vm_site_keys,
)

FAST = MicrobenchConfig(
    threads=4,
    locks=16,
    sites=4,
    iterations_per_thread=30,
    inside_spin=2,
    outside_spin=10,
    history_size=32,
)


class TestGeneratedSites:
    def test_distinct_positions(self):
        _sites, keys = make_acquire_sites(6)
        assert len(set(keys)) == 6

    def test_sites_are_callable_locks(self):
        import _thread

        sites, _keys = make_acquire_sites(2)
        lock = _thread.allocate_lock()
        sites[0](lock, 5)
        assert not lock.locked()

    def test_reported_keys_match_captured_positions(self, runtime):
        """The key list must be exactly where Dimmunix sees acquisitions,
        or synthetic signatures would miss."""
        sites, keys = make_acquire_sites(3)
        lock = runtime.lock("probe")
        sites[1](lock, 1)
        interned = [position.key for position in runtime.core.positions]
        assert (keys[1],) in interned


class TestVMHarness:
    def test_program_sites_match_announced_keys(self):
        program = build_vm_program(FAST)
        announced = set(vm_site_keys(FAST.sites))
        actual = {(s.file, s.line) for s in program.sync_sites()}
        assert actual == announced

    def test_pair_runs_and_overhead_positive(self):
        vanilla, immunized = run_vm_pair(FAST)
        assert vanilla.syncs == immunized.syncs == 4 * 30 * 4
        assert immunized.overhead_vs(vanilla) > 0

    def test_deterministic_virtual_time(self):
        first = run_vm_microbench(FAST, dimmunix=True)
        second = run_vm_microbench(FAST, dimmunix=True)
        assert first.seconds == second.seconds
        assert first.syncs == second.syncs

    def test_history_exercised_without_serialization(self):
        result = run_vm_microbench(FAST, dimmunix=True)
        assert result.stats.instantiation_checks > 0
        assert result.stats.yields == 0

    def test_history_size_scales_checks(self):
        small = run_vm_microbench(FAST.scaled(history_size=16), dimmunix=True)
        large = run_vm_microbench(FAST.scaled(history_size=64), dimmunix=True)
        assert large.stats.instantiation_checks > small.stats.instantiation_checks


class TestRealHarness:
    def test_all_three_modes_run(self):
        for mode in (MODE_VANILLA, MODE_WRAPPER_OFF, MODE_DIMMUNIX):
            result = run_real_microbench(FAST, mode)
            assert result.syncs == 4 * 30
            assert result.seconds > 0

    def test_dimmunix_mode_exercises_history(self):
        result = run_real_microbench(FAST, MODE_DIMMUNIX)
        assert result.stats is not None
        assert result.stats.instantiation_checks > 0
        assert result.stats.yields == 0

    def test_static_ids_mode(self):
        result = run_real_microbench(
            FAST.scaled(static_ids=True), MODE_DIMMUNIX
        )
        assert result.stats.instantiation_checks > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_real_microbench(FAST, "turbo")

    def test_overhead_vs_zero_baseline(self):
        from repro.workloads.microbench import MicrobenchResult

        zero = MicrobenchResult(mode="x", syncs=0, seconds=0)
        other = MicrobenchResult(mode="y", syncs=10, seconds=1)
        assert other.overhead_vs(zero) == 0.0
