"""Synthetic-signature generation tests."""

import pytest

from repro.workloads.synthetic_sigs import (
    HOT,
    PARTNER_MISS,
    generate_history,
    live_site_keys,
    make_signature,
)


SITES = [("Bench.java", 100 + i) for i in range(8)]


class TestGeneration:
    def test_requested_count(self):
        history = generate_history(SITES, 64)
        assert len(history) == 64

    def test_paper_band_sizes(self):
        for count in (64, 128, 256):
            assert len(generate_history(SITES, count)) == count

    def test_all_signatures_unique(self):
        history = generate_history(SITES, 256)
        assert len({sig.canonical_key() for sig in history}) == 256

    def test_partner_miss_mode_has_dead_partner(self):
        history = generate_history(SITES, 16, PARTNER_MISS)
        for signature in history:
            files = [key[0][0] for key in signature.outer_position_keys()]
            assert "<never-executed>" in files

    def test_hot_mode_uses_only_live_sites(self):
        history = generate_history(SITES, 16, HOT)
        live = {(("Bench.java", 100 + i),) for i in range(8)}
        for signature in history:
            for key in signature.outer_position_keys():
                assert key in live

    def test_every_live_site_covered(self):
        history = generate_history(SITES, 64)
        keys = live_site_keys(history)
        for site in SITES:
            assert ((site),) == ((site),)  # structural sanity
            assert (site,) in keys

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            generate_history([], 10)

    def test_hot_mode_needs_two_sites(self):
        with pytest.raises(ValueError):
            generate_history(SITES[:1], 4, HOT)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            generate_history(SITES, 4, "bogus")

    def test_make_signature_shape(self):
        signature = make_signature(("A.java", 1), ("B.java", 2))
        assert signature.size == 2
        assert not signature.is_starvation
