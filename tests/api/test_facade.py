"""The unified facade: one session drives every adapter layer.

The acceptance scenario of the API redesign: ``repro.immunity(...)``
yields one session whose runtime, platform patch, weaver, Dalvik VM, and
NDK pthread layer share one config, one history, and one event bus — and
a *single* subscriber on the session observes the typed streams of all
of them, with event-derived counts equal to the legacy ``DimmunixStats``
counters of each adapter.
"""

from __future__ import annotations

import textwrap
import threading
import time

import pytest

import repro
from repro.api import Dimmunix, immunity
from repro.config import DimmunixConfig, InterceptionMode
from repro.core.events import EventCounter, EventLog
from repro.dalvik.program import ProgramBuilder
from repro.errors import DeadlockDetectedError


# ----------------------------------------------------------------------
# scenario drivers
# ----------------------------------------------------------------------

def drive_runtime_abba(session: Dimmunix) -> None:
    """Two real threads, AB/BA; detection the first time, yield after."""
    lock_a = session.lock("account-a")
    lock_b = session.lock("account-b")
    barrier = threading.Barrier(2)

    def meet() -> None:
        try:
            barrier.wait(timeout=0.5)
        except threading.BrokenBarrierError:
            pass

    def one_way(first, second) -> None:
        try:
            with first:
                meet()
                time.sleep(0.01)
                with second:
                    pass
        except DeadlockDetectedError:
            pass

    workers = [
        threading.Thread(target=one_way, args=(lock_a, lock_b)),
        threading.Thread(target=one_way, args=(lock_b, lock_a)),
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=10)


def ab_program() -> object:
    builder = ProgramBuilder("W.java")
    builder.monitor_enter("A", line=10)
    builder.compute(5)
    builder.monitor_enter("B", line=12)
    builder.compute(2)
    builder.monitor_exit("B", line=14)
    builder.monitor_exit("A", line=15)
    builder.halt()
    return builder.build()


def ba_program() -> object:
    builder = ProgramBuilder("W.java")
    builder.monitor_enter("B", line=20)
    builder.compute(5)
    builder.monitor_enter("A", line=22)
    builder.compute(2)
    builder.monitor_exit("A", line=24)
    builder.monitor_exit("B", line=25)
    builder.halt()
    return builder.build()


# ----------------------------------------------------------------------
# construction and sharing
# ----------------------------------------------------------------------

class TestSessionSharing:
    def test_top_level_exports(self):
        assert repro.Dimmunix is Dimmunix
        assert repro.immunity is immunity

    def test_all_layers_share_config_history_and_bus(self):
        with immunity(yield_timeout=1.0, name="s") as dx:
            runtime = dx.runtime()
            vm = dx.vm()
            weaver = dx.weave()
            native = dx.pthreads()

            assert runtime.config is dx.config
            assert vm.config.dimmunix is dx.config
            assert native.config.native_interception is (
                InterceptionMode.NATIVE_ONLY
            )
            assert runtime.history is dx.history
            assert vm.core.history is dx.history
            assert native.core.history is dx.history
            assert weaver.runtime is runtime
            assert runtime.events is dx.events
            assert vm.events is dx.events
            assert set(dx.components) == {"s/runtime", "s/vm-0", "s/vm-1"}

    def test_match_budget_plumbs_through_every_layer(self):
        """The budgeted-matcher knobs travel the session config into the
        checker of every adapter's core — runtime, aio, VM, and a
        Zygote-forked process alike."""
        from repro.config import MatchCapPolicy
        from repro.dalvik.zygote import Zygote

        with immunity(
            match_step_budget=1234, match_cap_policy="weak", name="mb"
        ) as dx:
            assert dx.config.match_cap_policy is MatchCapPolicy.WEAK
            cores = [dx.runtime().core, dx.aio().core, dx.vm().core]
            for core in cores:
                assert core.checker.budget == 1234
                assert core.checker.policy is MatchCapPolicy.WEAK
            forked = Zygote(
                dx.vm().config.evolve(dimmunix=dx.config)
            ).fork("app")
            assert forked.core.checker.budget == 1234
            assert forked.core.checker.policy is MatchCapPolicy.WEAK

    def test_vm_overrides_and_naming(self):
        with immunity(name="s") as dx:
            vm = dx.vm(seed=7, quantum=4, name="app")
            assert vm.config.seed == 7
            assert vm.config.quantum == 4
            assert vm.name == "app"

    def test_config_overrides_build_or_evolve(self):
        with immunity(stack_depth=2) as dx:
            assert dx.config.stack_depth == 2
        base = DimmunixConfig(stack_depth=3)
        with immunity(base, yield_timeout=None) as dx:
            assert dx.config.stack_depth == 3
            assert dx.config.yield_timeout is None

    def test_patch_layer_binds_to_session_runtime(self):
        with immunity(yield_timeout=1.0) as dx:
            with dx.patch():
                assert type(threading.Lock()).__name__ == "DimmunixLock"
            assert type(threading.Lock()).__name__ == "lock"

    def test_close_uninstalls_the_patch(self):
        with immunity(patch=True):
            assert type(threading.Lock()).__name__ == "DimmunixLock"
        assert type(threading.Lock()).__name__ == "lock"

    def test_session_repr_names_layers(self):
        with immunity(name="r") as dx:
            dx.runtime()
            assert "r/runtime" in repr(dx)


# ----------------------------------------------------------------------
# cross-layer immunity through the shared history
# ----------------------------------------------------------------------

class TestSharedImmunity:
    def test_vm_detection_immunizes_the_next_vm(self):
        with immunity(yield_timeout=1.0, name="x") as dx:
            first = dx.vm(name="gen-1")
            first.spawn(ab_program(), "t-ab")
            first.spawn(ba_program(), "t-ba")
            result = first.run()
            assert len(result.detections) == 1

            second = dx.vm(name="gen-2")
            second.spawn(ab_program(), "t-ab")
            second.spawn(ba_program(), "t-ba")
            assert second.run().status == "completed"
            assert second.detections == []
            assert second.core.stats.yields >= 1

    def test_runtime_traffic_and_vm_traffic_share_one_history(self):
        with immunity(yield_timeout=1.0, name="x") as dx:
            drive_runtime_abba(dx)  # detection in the runtime layer
            vm = dx.vm(name="app")
            vm.spawn(ab_program(), "t-ab")
            vm.spawn(ba_program(), "t-ba")
            vm.run()
            # One history accumulated signatures from both layers.
            assert len(dx.history) >= 2
            assert dx.stats.deadlocks_detected == 2


# ----------------------------------------------------------------------
# the acceptance criterion: one subscriber, all adapters, exact parity
# ----------------------------------------------------------------------

class TestUnifiedEventStream:
    def test_single_subscriber_sees_both_adapters_with_parity(self):
        """Detection/Yield/Resume from runtime AND dalvik on one
        subscription, event-derived counts == legacy stats counters."""
        with immunity(yield_timeout=1.0, name="s") as dx:
            counter = EventCounter()
            log = EventLog()
            dx.subscribe(counter)
            dx.subscribe(log, kinds=("detection", "yield", "resume"))

            # Round 1 detects in the real-thread runtime; round 2 runs
            # the same positions and must yield + resume instead.
            drive_runtime_abba(dx)
            drive_runtime_abba(dx)

            # Same story in the simulated VM, against the same history.
            first_vm = dx.vm(name="vm-gen-1")
            first_vm.spawn(ab_program(), "t-ab")
            first_vm.spawn(ba_program(), "t-ba")
            first_vm.run()
            second_vm = dx.vm(name="vm-gen-2")
            second_vm.spawn(ab_program(), "t-ab")
            second_vm.spawn(ba_program(), "t-ba")
            assert second_vm.run().status == "completed"

            runtime = dx.runtime()
            sources = {event.source for event in log.events}
            kinds_by_source = {
                source: {
                    event.kind
                    for event in log.events
                    if event.source == source
                }
                for source in sources
            }
            # Both adapters streamed through the one subscription...
            # (explicit adapter names are used verbatim as sources;
            # auto-named adapters get the session prefix).
            assert "s/runtime" in sources
            assert "vm-gen-1" in sources or "vm-gen-2" in sources
            assert "detection" in kinds_by_source["s/runtime"]
            assert {"yield", "resume"} <= kinds_by_source["s/runtime"]
            vm_kinds = kinds_by_source.get(
                "vm-gen-1", set()
            ) | kinds_by_source.get("vm-gen-2", set())
            assert {"detection", "yield", "resume"} <= vm_kinds

            # ... and the event-derived counts equal the legacy
            # counters, per adapter and in aggregate.
            for core, source in [
                (runtime.core, "s/runtime"),
                (first_vm.core, "vm-gen-1"),
                (second_vm.core, "vm-gen-2"),
            ]:
                stats = core.stats
                assert counter.count("request", source) == stats.requests
                assert counter.count("acquired", source) == stats.acquisitions
                assert counter.count("release", source) == stats.releases
                assert counter.count("yield", source) == stats.yields
                assert counter.count("resume", source) == stats.yield_wakeups
                assert (
                    counter.count("detection", source)
                    == stats.deadlocks_detected
                )
                assert (
                    counter.count("starvation", source)
                    == stats.starvations_detected
                )
            aggregate = dx.stats
            assert counter.count("request") == aggregate.requests
            assert counter.count("detection") == aggregate.deadlocks_detected
            assert counter.count("yield") == aggregate.yields

            # The built-in session counter agrees with the ad-hoc one.
            assert dx.counter.counts == counter.counts

    def test_stream_seq_is_strictly_increasing_across_adapters(self):
        with immunity(yield_timeout=1.0, name="s") as dx:
            log = dx.tail()
            drive_runtime_abba(dx)
            vm = dx.vm()
            vm.spawn(ab_program(), "t-ab")
            vm.run()
            seqs = [event.seq for event in log.events]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)
            assert {event.source for event in log.events} >= {
                "s/runtime",
                "s/vm-0",
            }

    def test_weaver_layer_feeds_the_session_stream(self):
        module_source = textwrap.dedent(
            """
            import threading

            lock = threading.Lock()

            def bump():
                with lock:
                    return 1
            """
        ).strip()
        with immunity(yield_timeout=1.0, name="w") as dx:
            counter = EventCounter()
            dx.subscribe(counter, source="w/runtime")
            woven = dx.weave().instrument(module_source, "mod.py")
            assert woven.bump() == 1
            assert counter.count("request") == 1
            assert counter.count("acquired") == 1
            assert counter.count("release") == 1

    def test_pthreads_layer_feeds_the_session_stream(self):
        builder = ProgramBuilder("native.c")
        builder.native_lock("m", line=5)
        builder.compute(2)
        builder.native_unlock("m", line=7)
        builder.halt()
        with immunity(yield_timeout=None, name="n") as dx:
            vm = dx.pthreads(mode=InterceptionMode.NATIVE_ONLY, name="jni")
            vm.spawn(builder.build(), "native-thread")
            vm.run()
            assert dx.counter.count("request", "jni") == 1
            assert dx.counter.count("acquired", "jni") == 1
            assert dx.counter.count("release", "jni") == 1

    def test_recorder_writes_the_session_stream(self, tmp_path):
        path = tmp_path / "session.jsonl"
        with immunity(yield_timeout=1.0, name="rec") as dx:
            dx.record(path)
            drive_runtime_abba(dx)
        lines = path.read_text().splitlines()
        assert len(lines) == dx.events.published
        assert dx.counter.count("detection") == 1

    def test_save_history_emits_history_saved(self, tmp_path):
        with immunity(yield_timeout=1.0, name="hs") as dx:
            log = dx.tail()
            drive_runtime_abba(dx)
            target = dx.save_history(tmp_path / "s.history")
            assert target.exists()
            saved = [e for e in log.events if e.kind == "history-saved"]
            assert saved and saved[-1].signatures == len(dx.history)


# ----------------------------------------------------------------------
# facade ergonomics
# ----------------------------------------------------------------------

class TestErgonomics:
    def test_save_history_without_path_raises(self):
        with immunity() as dx:
            with pytest.raises(ValueError, match="no history location"):
                dx.save_history()

    def test_close_is_idempotent(self):
        dx = Dimmunix()
        dx.close()
        dx.close()

    def test_closed_session_stops_consuming_a_shared_bus(self):
        from repro.core.events import EventBus

        bus = EventBus()
        first = Dimmunix(events=bus, name="first")
        log = first.tail()
        with first.lock("l"):
            pass
        counted = first.counter.total
        assert counted > 0
        first.close()

        second = Dimmunix(events=bus, name="second")
        with second.lock("m"):
            pass
        # The closed session's counter and tail log are detached.
        assert first.counter.total == counted
        assert all(event.source != "second/runtime" for event in log.events)
        assert second.counter.count("acquired", "second/runtime") == 1
        second.close()

    def test_closed_session_cores_stop_counting_shared_bus(self):
        from repro.core.events import EventBus

        bus = EventBus()
        first = Dimmunix(events=bus)  # default name on purpose:
        with first.lock("l"):         # successor shares the source string
            pass
        acquired_before = first.stats.acquisitions
        first.close()
        baseline_subs = bus.subscriber_count

        second = Dimmunix(events=bus)
        with second.lock("m"):
            pass
        assert first.stats.acquisitions == acquired_before
        assert second.stats.acquisitions == 1
        second.close()
        # No dead per-core subscriptions pile up on the shared bus.
        assert bus.subscriber_count <= baseline_subs

    def test_uninstall_does_not_clobber_other_sessions_patch(self):
        from repro.runtime import patch as patch_module

        d1 = Dimmunix(DimmunixConfig(yield_timeout=1.0), name="one")
        d2 = Dimmunix(DimmunixConfig(yield_timeout=1.0), name="two")
        try:
            d1.install()
            d2.install()  # rebinds the process patch to d2's runtime
            d1.close()    # must NOT strip d2's immunity
            assert patch_module.installed_runtime() is d2.runtime()
            assert type(threading.Lock()).__name__ == "DimmunixLock"
        finally:
            d2.close()
            assert not patch_module.is_installed()

    def test_vm_rejects_dimmunix_override_with_clear_error(self):
        with immunity() as dx:
            with pytest.raises(ValueError, match="session config"):
                dx.vm(dimmunix=DimmunixConfig())

    def test_unsubscribe_via_session(self):
        with immunity() as dx:
            seen: list = []
            handle = dx.subscribe(seen.append)
            assert dx.unsubscribe(handle)
            with dx.lock("l"):
                pass
            assert seen == []
