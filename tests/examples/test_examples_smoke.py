"""Smoke tests: every example script runs and tells its success story.

Each example prints an explicit success line when the paper-behaviour it
demonstrates actually happened; these tests run the scripts exactly as a
user would (``python examples/<name>.py``) and check for that line, so
the walkthroughs can never silently rot.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

# script -> a fragment its output must contain on success
EXPECTATIONS = {
    "quickstart.py": "immunity works",
    "async_philosophers.py": "dinner 2 needed no detections",
    "notification_deadlock.py": "the phone hung exactly once",
    "dining_philosophers.py": "dinner 2",
    "platform_demo.py": "patch removed",
    "wait_inversion.py": "run 2 completed",
    "selective_instrumentation.py": "redeployment immune",
    "native_bridge.py": "closes the NDK gap",
    "predicted_immunity.py": "prediction works",
    "livelock_pingpong.py": "unstuck the victim",
    "ordered_transfers.py": "ordered locking holds",
}


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_succeeds(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTATIONS[script] in result.stdout
    assert "unexpected" not in result.stdout.lower()


def test_quickstart_with_persistent_history(tmp_path):
    history = tmp_path / "quickstart.history"
    result = _run("quickstart.py", str(history))
    assert result.returncode == 0, result.stderr[-2000:]
    assert "immunity works" in result.stdout
    assert history.exists()


def test_every_example_is_smoke_tested():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    untested = scripts - set(EXPECTATIONS) - {"phone_report.py"}
    # phone_report is exercised by the T1/E2 benches (same code path)
    # and takes minutes; everything else must be listed above.
    assert untested == set()
