"""Unit tests for the program builder and instruction resolution."""

import pytest

from repro.dalvik import instructions as ins
from repro.dalvik.program import ProgramBuilder
from repro.errors import ProgramError


class TestBuilder:
    def test_lines_auto_increment(self):
        builder = ProgramBuilder("T.java")
        builder.nop()
        builder.nop()
        program = builder.build()
        assert program.instructions[0].loc.line == 1
        assert program.instructions[1].loc.line == 2

    def test_explicit_line_pins_position(self):
        builder = ProgramBuilder("T.java")
        builder.monitor_enter("x", line=99)
        program = builder.build()
        assert program.instructions[0].loc.line == 99

    def test_labels_resolve(self):
        builder = ProgramBuilder("T.java")
        builder.set_reg("i", 2)
        builder.label("loop")
        builder.nop()
        builder.loop_dec("i", "loop")
        builder.halt()
        program = builder.build()
        loop_instr = program.instructions[2]
        assert isinstance(loop_instr, ins.LoopDec)
        assert loop_instr.target == program.labels["loop"] == 1

    def test_unresolved_label_raises(self):
        builder = ProgramBuilder("T.java")
        builder.jump("nowhere")
        with pytest.raises(ProgramError):
            builder.build()

    def test_duplicate_label_raises(self):
        builder = ProgramBuilder("T.java")
        builder.label("a")
        with pytest.raises(ProgramError):
            builder.label("a")

    def test_functions_resolve(self):
        builder = ProgramBuilder("T.java")
        builder.call("helper")
        builder.halt()
        builder.function("helper")
        builder.nop()
        builder.ret()
        program = builder.build()
        call = program.instructions[0]
        assert call.target == program.functions["helper"] == 2

    def test_unresolved_function_raises(self):
        builder = ProgramBuilder("T.java")
        builder.call("ghost")
        with pytest.raises(ProgramError):
            builder.build()

    def test_duplicate_function_raises(self):
        builder = ProgramBuilder("T.java")
        builder.function("f")
        with pytest.raises(ProgramError):
            builder.function("f")

    def test_function_names_attached_to_locations(self):
        builder = ProgramBuilder("T.java")
        builder.halt()
        builder.function("worker")
        builder.nop()
        program = builder.build()
        assert program.instructions[1].loc.function == "worker"

    def test_source_switch(self):
        builder = ProgramBuilder("A.java")
        builder.nop()
        builder.source("B.java")
        builder.nop()
        program = builder.build()
        assert program.instructions[0].loc.file == "A.java"
        assert program.instructions[1].loc.file == "B.java"

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("T.java").build()

    def test_sync_sites_deduplicated(self):
        builder = ProgramBuilder("T.java")
        builder.monitor_enter("x", line=5)
        builder.monitor_exit("x", line=6)
        builder.monitor_enter("y", line=5)   # same position, other object
        builder.monitor_exit("y", line=7)
        builder.monitor_enter("x", line=9)
        builder.monitor_exit("x", line=10)
        builder.halt()
        program = builder.build()
        assert len(program.sync_sites()) == 2


class TestEffectiveObject:
    def test_plain_object(self):
        instr = ins.MonitorEnter("x")
        assert ins.effective_object(instr, {}) == "x"

    def test_register_indexed(self):
        instr = ins.MonitorEnter("lock", reg="r")
        assert ins.effective_object(instr, {"r": 3}) == "lock3"

    def test_unset_register_raises(self):
        instr = ins.MonitorEnter("lock", reg="r")
        instr.place(ins.SourceLoc("T.java", 1))
        with pytest.raises(KeyError):
            ins.effective_object(instr, {})
