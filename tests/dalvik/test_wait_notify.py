"""VM Object.wait/notify semantics, including timed waits and the
immunized reacquisition path."""

import pytest

from repro.dalvik.program import ProgramBuilder
from repro.dalvik.thread import ThreadState
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.errors import IllegalMonitorStateError


def vanilla_vm(**overrides):
    return DalvikVM(VMConfig(**overrides).vanilla())


def dimmunix_vm(**overrides):
    return DalvikVM(VMConfig(**overrides))


def producer_consumer_programs():
    consumer = ProgramBuilder("PC.java")
    consumer.monitor_enter("box", line=10)
    consumer.label("check")
    consumer.branch_zero("g:items", "empty", line=11)
    consumer.add_reg("g:items", -1, line=12)
    consumer.add_reg("g:consumed", 1, line=13)
    consumer.monitor_exit("box", line=14)
    consumer.halt()
    consumer.label("empty")
    consumer.wait("box", line=16)
    consumer.jump("check", line=17)

    producer = ProgramBuilder("PC.java")
    producer.compute(20, line=30)
    producer.monitor_enter("box", line=31)
    producer.add_reg("g:items", 1, line=32)
    producer.notify("box", line=33)
    producer.monitor_exit("box", line=34)
    producer.halt()
    return consumer.build(), producer.build()


class TestWaitNotify:
    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_producer_consumer(self, make_vm):
        consumer, producer = producer_consumer_programs()
        vm = make_vm()
        vm.spawn(consumer, "consumer")
        vm.spawn(producer, "producer")
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:consumed"] == 1

    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_notify_all_wakes_all(self, make_vm):
        waiter = ProgramBuilder("T.java")
        waiter.monitor_enter("gate", line=1)
        waiter.wait("gate", line=2)
        waiter.add_reg("g:woken", 1, line=3)
        waiter.monitor_exit("gate", line=4)
        waiter.halt()
        opener = ProgramBuilder("T.java")
        opener.compute(40, line=10)
        opener.monitor_enter("gate", line=11)
        opener.notify_all("gate", line=12)
        opener.monitor_exit("gate", line=13)
        opener.halt()
        vm = make_vm()
        for index in range(3):
            vm.spawn(waiter.build(), f"waiter-{index}")
        vm.spawn(opener.build(), "opener")
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:woken"] == 3

    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_plain_notify_wakes_one(self, make_vm):
        waiter = ProgramBuilder("T.java")
        waiter.monitor_enter("gate", line=1)
        waiter.wait("gate", line=2)
        waiter.add_reg("g:woken", 1, line=3)
        waiter.monitor_exit("gate", line=4)
        waiter.halt()
        opener = ProgramBuilder("T.java")
        opener.compute(40, line=10)
        opener.monitor_enter("gate", line=11)
        opener.notify("gate", line=12)
        opener.monitor_exit("gate", line=13)
        opener.halt()
        vm = make_vm()
        for index in range(2):
            vm.spawn(waiter.build(), f"waiter-{index}")
        vm.spawn(opener.build(), "opener")
        result = vm.run(max_ticks=50_000)
        # One waiter wakes; the other waits forever (Java semantics).
        assert vm.globals["g:woken"] == 1

    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_timed_wait_times_out(self, make_vm):
        builder = ProgramBuilder("T.java")
        builder.monitor_enter("box", line=1)
        builder.wait("box", timeout=100, line=2)
        builder.add_reg("g:resumed", 1, line=3)
        builder.monitor_exit("box", line=4)
        builder.halt()
        vm = make_vm()
        vm.spawn(builder.build())
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:resumed"] == 1
        assert vm.clock >= 100

    def test_wait_releases_full_recursion(self):
        """wait() on a monitor entered twice releases it fully and
        restores recursion on reacquire."""
        waiter = ProgramBuilder("T.java")
        waiter.monitor_enter("box", line=1)
        waiter.monitor_enter("box", line=2)
        waiter.wait("box", line=3)
        waiter.add_reg("g:after", 1, line=4)
        waiter.monitor_exit("box", line=5)
        waiter.monitor_exit("box", line=6)
        waiter.halt()
        taker = ProgramBuilder("T.java")
        taker.compute(30, line=10)
        taker.monitor_enter("box", line=11)  # only possible if released
        taker.add_reg("g:taken", 1, line=12)
        taker.notify("box", line=13)
        taker.monitor_exit("box", line=14)
        taker.halt()
        vm = vanilla_vm()
        vm.spawn(waiter.build(), "waiter")
        vm.spawn(taker.build(), "taker")
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:taken"] == 1
        assert vm.globals["g:after"] == 1

    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_wait_without_ownership_faults(self, make_vm):
        builder = ProgramBuilder("T.java")
        builder.wait("box", line=1)
        builder.halt()
        vm = make_vm()
        vm.spawn(builder.build())
        result = vm.run()
        assert result.faults
        assert isinstance(result.faults[0][1], IllegalMonitorStateError)

    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_notify_without_ownership_faults(self, make_vm):
        builder = ProgramBuilder("T.java")
        builder.notify("box", line=1)
        builder.halt()
        vm = make_vm()
        vm.spawn(builder.build())
        result = vm.run()
        assert result.faults

    def test_lost_wakeup_is_a_stall_not_a_cycle(self):
        builder = ProgramBuilder("T.java")
        builder.monitor_enter("box", line=1)
        builder.wait("box", line=2)  # nobody will notify
        builder.monitor_exit("box", line=3)
        builder.halt()
        vm = vanilla_vm()
        vm.spawn(builder.build(), "forgotten")
        result = vm.run(max_ticks=10_000)
        assert result.frozen
        assert result.stall["waiting"] == ["forgotten"]
        assert result.stall["cycle"] == []

    def test_reacquisition_counts(self):
        consumer, producer = producer_consumer_programs()
        vm = dimmunix_vm()
        consumer_thread = vm.spawn(consumer, "consumer")
        vm.spawn(producer, "producer")
        vm.run()
        assert consumer_thread.wait_count >= 1
        assert consumer_thread.wait_reacquisitions >= 1
