"""Unit tests for the object heap and monitor fattening."""

import pytest

from repro.config import DimmunixConfig
from repro.core.engine import DimmunixCore
from repro.dalvik import lockword
from repro.dalvik.objects import ObjectHeap


class TestAllocation:
    def test_new_object_starts_thin(self):
        heap = ObjectHeap()
        obj = heap.new_object("x")
        assert obj.lock_word == lockword.UNLOCKED_WORD
        assert heap.monitor_of(obj) is None

    def test_duplicate_name_rejected(self):
        heap = ObjectHeap()
        heap.new_object("x")
        with pytest.raises(ValueError):
            heap.new_object("x")

    def test_get_missing_raises(self):
        heap = ObjectHeap()
        with pytest.raises(KeyError):
            heap.get("ghost")

    def test_ensure_creates_once(self):
        heap = ObjectHeap()
        a = heap.ensure("x")
        b = heap.ensure("x")
        assert a is b
        assert heap.object_count() == 1

    def test_allocation_accounting(self):
        heap = ObjectHeap()
        heap.new_object("x")
        assert heap.allocated_bytes == ObjectHeap.OBJECT_HEADER_BYTES
        heap.fatten(heap.get("x"))
        assert (
            heap.allocated_bytes
            == ObjectHeap.OBJECT_HEADER_BYTES + ObjectHeap.MONITOR_BYTES
        )


class TestFattening:
    def test_fatten_sets_fat_word(self):
        heap = ObjectHeap()
        obj = heap.new_object("x")
        monitor = heap.fatten(obj)
        assert lockword.is_fat(obj.lock_word)
        assert heap.monitor_of(obj) is monitor

    def test_fatten_idempotent(self):
        heap = ObjectHeap()
        obj = heap.new_object("x")
        first = heap.fatten(obj)
        second = heap.fatten(obj)
        assert first is second
        assert heap.monitor_count() == 1

    def test_fatten_with_core_embeds_rag_node(self):
        core = DimmunixCore(DimmunixConfig())
        heap = ObjectHeap(core)
        obj = heap.new_object("x")
        monitor = heap.fatten(obj, name="x")
        assert monitor.node is not None
        assert core.rag.lock_by_id(monitor.node.node_id) is monitor.node

    def test_fatten_without_core_has_no_node(self):
        heap = ObjectHeap()
        monitor = heap.fatten(heap.new_object("x"))
        assert monitor.node is None

    def test_monitor_ids_sequential(self):
        heap = ObjectHeap()
        monitors = [heap.fatten(heap.new_object(f"o{i}")) for i in range(3)]
        assert [m.monitor_id for m in monitors] == [0, 1, 2]
        words = [heap.get(f"o{i}").lock_word for i in range(3)]
        assert [lockword.fat_monitor_id(w) for w in words] == [0, 1, 2]
