"""Unit tests for thin/fat lock-word encoding."""

import pytest

from repro.dalvik import lockword


class TestThinWords:
    def test_unlocked_word_is_thin_unowned(self):
        word = lockword.UNLOCKED_WORD
        assert not lockword.is_fat(word)
        assert lockword.thin_owner(word) == 0
        assert lockword.thin_count(word) == 0

    def test_make_thin_roundtrip(self):
        word = lockword.make_thin(owner_id=42, count=7)
        assert lockword.lw_shape(word) == lockword.LW_SHAPE_THIN
        assert lockword.thin_owner(word) == 42
        assert lockword.thin_count(word) == 7

    def test_max_owner(self):
        word = lockword.make_thin(lockword.MAX_THIN_OWNER, 0)
        assert lockword.thin_owner(word) == lockword.MAX_THIN_OWNER

    def test_owner_out_of_range(self):
        with pytest.raises(ValueError):
            lockword.make_thin(lockword.MAX_THIN_OWNER + 1, 0)

    def test_count_out_of_range(self):
        with pytest.raises(ValueError):
            lockword.make_thin(1, lockword.MAX_THIN_COUNT + 1)

    def test_max_count_roundtrip(self):
        word = lockword.make_thin(1, lockword.MAX_THIN_COUNT)
        assert lockword.thin_count(word) == lockword.MAX_THIN_COUNT

    def test_thin_accessors_reject_fat(self):
        fat = lockword.make_fat(3)
        with pytest.raises(ValueError):
            lockword.thin_owner(fat)
        with pytest.raises(ValueError):
            lockword.thin_count(fat)


class TestFatWords:
    def test_make_fat_roundtrip(self):
        word = lockword.make_fat(123)
        assert lockword.is_fat(word)
        assert lockword.fat_monitor_id(word) == 123

    def test_fat_bit_is_lsb(self):
        assert lockword.make_fat(0) & 1 == lockword.LW_SHAPE_FAT

    def test_fat_accessor_rejects_thin(self):
        with pytest.raises(ValueError):
            lockword.fat_monitor_id(lockword.make_thin(1, 0))

    def test_negative_monitor_id_rejected(self):
        with pytest.raises(ValueError):
            lockword.make_fat(-1)

    def test_distinct_ids_distinct_words(self):
        assert lockword.make_fat(1) != lockword.make_fat(2)
