"""VM + Dimmunix integration: detection freezes faithfully, RAISE policy
faults the thread, avoidance across VM generations, starvation handling,
and the wait-inversion case."""

from repro.config import DetectionPolicy, DimmunixConfig
from repro.dalvik.program import ProgramBuilder
from repro.dalvik.thread import ThreadState
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.errors import DeadlockDetectedError
from repro.workloads.scenarios import run_wait_inversion_vm


def ab_program():
    builder = ProgramBuilder("W.java")
    builder.monitor_enter("A", line=10)
    builder.compute(5)
    builder.monitor_enter("B", line=12)
    builder.compute(2)
    builder.monitor_exit("B", line=14)
    builder.monitor_exit("A", line=15)
    builder.halt()
    return builder.build()


def ba_program():
    builder = ProgramBuilder("W.java")
    builder.monitor_enter("B", line=20)
    builder.compute(5)
    builder.monitor_enter("A", line=22)
    builder.compute(2)
    builder.monitor_exit("A", line=24)
    builder.monitor_exit("B", line=25)
    builder.halt()
    return builder.build()


def spawn_pair(vm):
    vm.spawn(ab_program(), "t-ab")
    vm.spawn(ba_program(), "t-ba")


class TestDetection:
    def test_block_policy_freezes_and_records(self):
        vm = DalvikVM(VMConfig())
        spawn_pair(vm)
        result = vm.run()
        assert result.frozen
        assert len(result.detections) == 1
        signature = result.detections[0]
        assert signature.size == 2
        outers = set(signature.outer_position_keys())
        assert outers == {(("W.java", 10),), (("W.java", 20),)}
        assert vm.core.history.contains(signature)

    def test_raise_policy_faults_the_closing_thread(self):
        config = VMConfig(
            dimmunix=DimmunixConfig(
                detection_policy=DetectionPolicy.RAISE, yield_timeout=None
            )
        )
        vm = DalvikVM(config)
        spawn_pair(vm)
        result = vm.run()
        assert len(result.detections) == 1
        assert len(result.faults) == 1
        assert isinstance(result.faults[0][1], DeadlockDetectedError)
        # The surviving thread completed: no freeze.
        assert not result.frozen

    def test_vanilla_freezes_without_detection(self):
        vm = DalvikVM(VMConfig().vanilla())
        spawn_pair(vm)
        result = vm.run()
        assert result.frozen
        assert result.detections == ()
        assert set(result.stall["cycle"]) == {"t-ab", "t-ba"}


class TestImmunityAcrossGenerations:
    def test_second_generation_avoids(self):
        first_vm = DalvikVM(VMConfig())
        spawn_pair(first_vm)
        first = first_vm.run()
        assert first.frozen

        second_vm = DalvikVM(VMConfig())
        second_vm.core.history.merge_from(first_vm.core.history)
        spawn_pair(second_vm)
        second = second_vm.run()
        assert second.status == "completed"
        assert second.detections == ()
        assert second_vm.core.stats.yields >= 1

    def test_history_file_roundtrip(self, tmp_path):
        path = tmp_path / "vm.history"
        config = VMConfig(
            dimmunix=DimmunixConfig(
                detection_policy=DetectionPolicy.BLOCK,
                yield_timeout=None,
                history_path=path,
            )
        )
        first_vm = DalvikVM(config)
        spawn_pair(first_vm)
        assert first_vm.run().frozen
        assert path.exists()

        second_vm = DalvikVM(config)  # initDimmunix loads the file
        spawn_pair(second_vm)
        assert second_vm.run().status == "completed"

    def test_avoidance_not_triggered_at_fresh_positions(self):
        first_vm = DalvikVM(VMConfig())
        spawn_pair(first_vm)
        first_vm.run()

        second_vm = DalvikVM(VMConfig())
        second_vm.core.history.merge_from(first_vm.core.history)
        other = ProgramBuilder("Other.java")
        other.monitor_enter("A", line=90)
        other.monitor_exit("A", line=91)
        other.halt()
        second_vm.spawn(other.build())
        result = second_vm.run()
        assert result.status == "completed"
        assert second_vm.core.stats.yields == 0


class TestStarvationInVM:
    def test_avoidance_induced_stall_is_resolved(self):
        """Three threads where naive avoidance would park forever: the
        engine's starvation handling must keep the VM live."""
        first_vm = DalvikVM(VMConfig())
        spawn_pair(first_vm)
        first_vm.run()
        history = first_vm.core.history

        # Generation 2 with an extra thread: t-extra holds C; t-ab will
        # be parked by avoidance (position 10 + t-ba at 20); t-ba then
        # blocks on C. Without starvation handling the VM could stall
        # with t-ab parked forever.
        vm = DalvikVM(VMConfig())
        vm.core.history.merge_from(history)

        extra = ProgramBuilder("W.java")
        extra.monitor_enter("C", line=40)
        extra.compute(30)
        extra.monitor_exit("C", line=42)
        extra.halt()

        ba_then_c = ProgramBuilder("W.java")
        ba_then_c.monitor_enter("B", line=20)
        ba_then_c.compute(5)
        ba_then_c.monitor_enter("C", line=45)
        ba_then_c.monitor_exit("C", line=46)
        ba_then_c.monitor_enter("A", line=22)
        ba_then_c.compute(2)
        ba_then_c.monitor_exit("A", line=24)
        ba_then_c.monitor_exit("B", line=25)
        ba_then_c.halt()

        vm.spawn(extra.build(), "t-extra")
        vm.spawn(ab_program(), "t-ab")
        vm.spawn(ba_then_c.build(), "t-ba")
        result = vm.run(max_ticks=500_000)
        assert result.status == "completed", result


class TestWaitInversion:
    def test_dimmunix_detects_wait_inversion(self):
        vm = run_wait_inversion_vm()
        assert len(vm.detections) == 1
        signature = vm.detections[0]
        # One of the outer positions is the y acquisition (line 11); the
        # wait-side inner is the x.wait() site (line 12).
        all_keys = set(signature.outer_position_keys()) | set(
            signature.inner_position_keys()
        )
        assert (("WaitInversion.java", 12),) in all_keys

    def test_vanilla_wait_inversion_stalls(self):
        vm = run_wait_inversion_vm(VMConfig().vanilla())
        live = [t for t in vm.threads if t.is_live()]
        assert len(live) == 2

    def test_immunized_second_run_completes(self):
        """With a timed wait, run 2 avoids the deadlock and finishes.

        The waiter uses ``x.wait(timeout)`` (the common real-world
        pattern). Run 1 deadlocks before the timeout fires and the
        signature is recorded; in run 2 avoidance parks the notifier,
        the wait times out, the waiter releases ``y``, and both finish.
        """
        first = run_wait_inversion_vm(wait_timeout_ticks=5_000)
        assert len(first.detections) == 1
        second = run_wait_inversion_vm(
            history=first.core.history, wait_timeout_ticks=5_000
        )
        live = [t for t in second.threads if t.is_live()]
        assert live == []
        assert second.detections == []
        assert second.core.stats.yields > 0

    def test_untimed_inversion_is_not_schedule_avoidable(self):
        """Honest semantics: the untimed inversion re-freezes.

        Once the waiter sits in an untimed ``x.wait()`` holding ``y``,
        only the notifier can release it — parking the notifier starves
        both, and the safety-net bypass lets the deadlock re-form. No
        lock-scheduling policy can fix this program; Dimmunix records
        the starvation signature and the deadlock is re-detected as a
        duplicate, never as a new bug.
        """
        first = run_wait_inversion_vm()
        history = first.core.history
        sigs_after_first = len(history)
        second = run_wait_inversion_vm(history=history)
        live = [t for t in second.threads if t.is_live()]
        assert live != []
        # The starvation (avoidance-induced) signature was recorded; the
        # re-detected deadlock deduplicated against run 1's signature.
        assert second.core.history.starvation_count() >= 1
        assert second.core.history.deadlock_count() == sigs_after_first
