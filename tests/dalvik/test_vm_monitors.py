"""VM monitor semantics: mutual exclusion, reentrancy, blocking, thin
locks in vanilla mode, illegal states."""

import pytest

from repro.dalvik import lockword
from repro.dalvik.program import ProgramBuilder
from repro.dalvik.thread import ThreadState
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.errors import IllegalMonitorStateError


def vanilla_vm(**overrides):
    return DalvikVM(VMConfig(**overrides).vanilla())


def dimmunix_vm(**overrides):
    return DalvikVM(VMConfig(**overrides))


def counter_program(iterations=50, inside=2):
    """Increment a shared global under a monitor."""
    builder = ProgramBuilder("Counter.java")
    builder.set_reg("i", iterations)
    builder.label("loop")
    builder.monitor_enter("shared", line=10)
    builder.add_reg("g:count", 1)
    builder.compute(inside)
    builder.monitor_exit("shared", line=13)
    builder.loop_dec("i", "loop")
    builder.halt()
    return builder.build()


class TestMutualExclusion:
    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_counter_is_exact(self, make_vm):
        vm = make_vm()
        program = counter_program()
        for index in range(4):
            vm.spawn(program, f"w{index}")
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:count"] == 200

    def test_sync_counts(self):
        vm = vanilla_vm()
        vm.spawn(counter_program(iterations=10))
        result = vm.run()
        assert result.syncs == 10


class TestReentrancy:
    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_nested_enter_same_monitor(self, make_vm):
        builder = ProgramBuilder("T.java")
        builder.monitor_enter("x", line=1)
        builder.monitor_enter("x", line=2)
        builder.add_reg("g:ok", 1)
        builder.monitor_exit("x", line=4)
        builder.monitor_exit("x", line=5)
        builder.halt()
        vm = make_vm()
        vm.spawn(builder.build())
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:ok"] == 1


class TestIllegalStates:
    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_exit_unowned_faults(self, make_vm):
        builder = ProgramBuilder("T.java")
        builder.monitor_exit("x", line=1)
        builder.halt()
        vm = make_vm()
        vm.spawn(builder.build())
        result = vm.run()
        assert result.faults
        assert isinstance(result.faults[0][1], IllegalMonitorStateError)

    @pytest.mark.parametrize("make_vm", [vanilla_vm, dimmunix_vm])
    def test_exit_other_threads_monitor_faults(self, make_vm):
        owner = ProgramBuilder("T.java")
        owner.monitor_enter("x", line=1)
        owner.compute(50)
        owner.monitor_exit("x", line=3)
        owner.halt()
        thief = ProgramBuilder("T.java")
        thief.compute(5)
        thief.monitor_exit("x", line=11)
        thief.halt()
        vm = make_vm()
        vm.spawn(owner.build(), "owner")
        vm.spawn(thief.build(), "thief")
        result = vm.run()
        assert any(name == "thief" for name, _ in result.faults)


class TestThinLocks:
    def test_vanilla_uncontended_stays_thin(self):
        vm = vanilla_vm()
        vm.spawn(counter_program(iterations=20))
        vm.run()
        assert vm.heap.monitor_count() == 0
        assert vm.heap.get("shared").lock_word == lockword.UNLOCKED_WORD

    def test_vanilla_contention_inflates(self):
        vm = vanilla_vm()
        program = counter_program(iterations=30, inside=5)
        vm.spawn(program, "a")
        vm.spawn(program, "b")
        result = vm.run()
        assert result.status == "completed"
        assert vm.heap.monitor_count() == 1
        assert vm.globals["g:count"] == 60

    def test_dimmunix_fattens_eagerly(self):
        vm = dimmunix_vm()
        vm.spawn(counter_program(iterations=1))
        vm.run()
        assert vm.heap.monitor_count() == 1

    def test_thin_word_owner_while_held(self):
        builder = ProgramBuilder("T.java")
        builder.monitor_enter("x", line=1)
        builder.monitor_enter("x", line=2)
        builder.halt()  # never exits; inspect final state
        vm = vanilla_vm()
        thread = vm.spawn(builder.build())
        vm.run()
        word = vm.heap.get("x").lock_word
        assert lockword.thin_owner(word) == thread.local_id
        assert lockword.thin_count(word) == 2

    def test_inflation_migrates_owner_and_count(self):
        holder = ProgramBuilder("T.java")
        holder.monitor_enter("x", line=1)
        holder.monitor_enter("x", line=2)  # recursion 2, thin
        holder.compute(30)
        holder.monitor_exit("x", line=4)
        holder.compute(30)
        holder.monitor_exit("x", line=6)
        holder.halt()
        contender = ProgramBuilder("T.java")
        contender.compute(5)
        contender.monitor_enter("x", line=11)
        contender.add_reg("g:contender_in", 1)
        contender.monitor_exit("x", line=13)
        contender.halt()
        vm = vanilla_vm()
        holder_thread = vm.spawn(holder.build(), "holder")
        vm.spawn(contender.build(), "contender")
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:contender_in"] == 1
        monitor = vm.heap.monitor_of(vm.heap.get("x"))
        assert monitor is not None  # inflated by contention
        assert monitor.owner is None  # and fully released at the end


class TestBlockingOrder:
    def test_fifo_grant_order(self):
        """Blocked threads acquire in arrival order (deterministic)."""
        first = ProgramBuilder("T.java")
        first.monitor_enter("x", line=1)
        first.compute(50)
        first.monitor_exit("x", line=3)
        first.halt()

        def follower(tag, delay):
            builder = ProgramBuilder("T.java")
            builder.compute(delay)
            builder.monitor_enter("x", line=10)
            builder.add_reg("g:order", 1)
            builder.set_reg("slot", 0)  # placeholder
            builder.monitor_exit("x", line=13)
            builder.halt()
            return builder.build()

        vm = vanilla_vm()
        vm.spawn(first.build(), "holder")
        vm.spawn(follower("a", 5), "a")
        vm.spawn(follower("b", 8), "b")
        result = vm.run()
        assert result.status == "completed"
        assert vm.globals["g:order"] == 2
