"""VM interpreter tests: control flow, registers, compute, sleep."""

import pytest

from repro.dalvik.program import ProgramBuilder
from repro.dalvik.thread import ThreadState
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.errors import ProgramError


def fresh_vm(dimmunix=False, **overrides):
    config = VMConfig(**overrides)
    if not dimmunix:
        config = config.vanilla()
    return DalvikVM(config)


class TestControlFlow:
    def test_counted_loop(self):
        builder = ProgramBuilder("T.java")
        builder.set_reg("i", 5)
        builder.set_reg("acc", 0)
        builder.label("loop")
        builder.add_reg("acc", 2)
        builder.loop_dec("i", "loop")
        builder.halt()
        vm = fresh_vm()
        thread = vm.spawn(builder.build())
        result = vm.run()
        assert result.status == "completed"
        assert thread.registers["acc"] == 10

    def test_branch_zero(self):
        builder = ProgramBuilder("T.java")
        builder.set_reg("x", 0)
        builder.branch_zero("x", "was_zero")
        builder.set_reg("out", 111)
        builder.halt()
        builder.label("was_zero")
        builder.set_reg("out", 222)
        builder.halt()
        vm = fresh_vm()
        thread = vm.spawn(builder.build())
        vm.run()
        assert thread.registers["out"] == 222

    def test_call_and_ret(self):
        builder = ProgramBuilder("T.java")
        builder.call("twice")
        builder.call("twice")
        builder.halt()
        builder.function("twice")
        builder.add_reg("n", 2)
        builder.ret()
        vm = fresh_vm()
        thread = vm.spawn(builder.build())
        vm.run()
        assert thread.registers["n"] == 4

    def test_ret_from_main_terminates(self):
        builder = ProgramBuilder("T.java")
        builder.ret()
        vm = fresh_vm()
        thread = vm.spawn(builder.build())
        result = vm.run()
        assert result.status == "completed"
        assert thread.state == ThreadState.TERMINATED

    def test_running_off_the_end_terminates(self):
        builder = ProgramBuilder("T.java")
        builder.nop()
        vm = fresh_vm()
        thread = vm.spawn(builder.build())
        vm.run()
        assert thread.state == ThreadState.TERMINATED

    def test_call_depth_guard(self):
        builder = ProgramBuilder("T.java")
        builder.function("recurse")  # entry == function start
        builder.call("recurse")
        builder.ret()
        vm = fresh_vm()
        vm.spawn(builder.build())
        result = vm.run()
        assert result.faults
        assert isinstance(result.faults[0][1], ProgramError)


class TestTimeAccounting:
    def test_compute_advances_clock(self):
        builder = ProgramBuilder("T.java")
        builder.compute(100)
        builder.halt()
        vm = fresh_vm()
        thread = vm.spawn(builder.build())
        vm.run()
        assert vm.clock >= 100
        assert thread.compute_ticks == 100

    def test_sleep_advances_clock_without_cpu(self):
        builder = ProgramBuilder("T.java")
        builder.sleep(500)
        builder.halt()
        vm = fresh_vm()
        thread = vm.spawn(builder.build())
        vm.run()
        assert vm.clock >= 500
        assert thread.compute_ticks == 0
        assert thread.cpu_ticks < 500

    def test_sleeping_threads_interleave_with_runnable(self):
        sleeper = ProgramBuilder("T.java")
        sleeper.sleep(50)
        sleeper.set_reg("woke", 1)
        sleeper.halt()
        worker = ProgramBuilder("T.java")
        worker.set_reg("i", 30)
        worker.label("loop")
        worker.compute(5)
        worker.loop_dec("i", "loop")
        worker.halt()
        vm = fresh_vm()
        sleeping = vm.spawn(sleeper.build(), "sleeper")
        vm.spawn(worker.build(), "worker")
        result = vm.run()
        assert result.status == "completed"
        assert sleeping.registers["woke"] == 1

    def test_rand_is_seed_deterministic(self):
        def run_with_seed(seed):
            builder = ProgramBuilder("T.java")
            for index in range(6):
                builder.rand(f"r{index}", 100)
            builder.halt()
            vm = DalvikVM(VMConfig(seed=seed).vanilla())
            thread = vm.spawn(builder.build())
            vm.run()
            return [thread.registers[f"r{index}"] for index in range(6)]

        assert run_with_seed(7) == run_with_seed(7)
        assert run_with_seed(7) != run_with_seed(8)

    def test_tick_limit_stops_run(self):
        builder = ProgramBuilder("T.java")
        builder.label("forever")
        builder.compute(10)
        builder.jump("forever")
        vm = fresh_vm()
        vm.spawn(builder.build())
        result = vm.run(max_ticks=500)
        assert result.status == "tick-limit"
        assert vm.clock >= 500

    def test_run_is_resumable(self):
        builder = ProgramBuilder("T.java")
        builder.set_reg("i", 100)
        builder.label("loop")
        builder.compute(10)
        builder.loop_dec("i", "loop")
        builder.halt()
        vm = fresh_vm()
        vm.spawn(builder.build())
        first = vm.run(max_ticks=200)
        assert first.status == "tick-limit"
        second = vm.run()
        assert second.status == "completed"
