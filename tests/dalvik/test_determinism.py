"""Determinism of the virtual-time VM — the property every benchmark
number in this repo rests on: same seed + same workload ⇒ identical
execution, tick for tick."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dalvik.vm import DalvikVM, VMConfig
from repro.workloads.microbench import (
    MicrobenchConfig,
    build_vm_program,
    run_vm_microbench,
)


def _fingerprint(vm: DalvikVM) -> tuple:
    return (
        vm.clock,
        vm.total_syncs,
        tuple((t.name, t.cpu_ticks, t.sync_count, t.state.value) for t in vm.threads),
        len(vm.detections),
    )


def _run(config: MicrobenchConfig, seed: int) -> tuple:
    vm_config = VMConfig(seed=seed, ticks_per_second=200_000)
    vm = DalvikVM(vm_config)
    program = build_vm_program(config)
    for index in range(config.threads):
        vm.spawn(program, name=f"micro-{index}")
    run = vm.run()
    assert run.status == "completed"
    return _fingerprint(vm)


@given(
    seed=st.integers(0, 2**16),
    threads=st.integers(1, 6),
    iterations=st.integers(1, 5),
)
@settings(max_examples=25, deadline=None)
def test_same_seed_same_execution(seed, threads, iterations):
    config = MicrobenchConfig(
        threads=threads,
        locks=8,
        sites=2,
        iterations_per_thread=iterations,
        inside_spin=3,
        outside_spin=5,
        history_size=4,
    )
    assert _run(config, seed) == _run(config, seed)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_pair_measurement_is_reproducible(seed):
    """run_vm_pair-style measurements are exactly repeatable."""
    config = MicrobenchConfig(
        threads=4,
        locks=8,
        sites=2,
        iterations_per_thread=4,
        inside_spin=3,
        outside_spin=5,
        history_size=8,
        seed=seed,
    )
    first = run_vm_microbench(config, dimmunix=True)
    second = run_vm_microbench(config, dimmunix=True)
    assert first.syncs == second.syncs
    assert first.seconds == second.seconds
    assert first.stats is not None and second.stats is not None
    assert first.stats.snapshot() == second.stats.snapshot()


@given(seed_a=st.integers(0, 100), seed_b=st.integers(101, 200))
@settings(max_examples=10, deadline=None)
def test_different_seeds_change_lock_choices_not_totals(seed_a, seed_b):
    """Seeds steer the random lock picks; totals stay workload-defined."""
    config = MicrobenchConfig(
        threads=3,
        locks=8,
        sites=2,
        iterations_per_thread=5,
        inside_spin=3,
        outside_spin=5,
        history_size=4,
    )
    fp_a = _run(config, seed_a)
    fp_b = _run(config, seed_b)
    # Same total syncs regardless of seed (same program).
    assert fp_a[1] == fp_b[1]
