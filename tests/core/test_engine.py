"""Engine tests: the Request/Acquired/Release protocol end to end."""

import pytest

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore, RequestVerdict
from repro.core.history import History


def stack(line):
    return CallStack.single("eng.py", line)


class Harness:
    """A tiny deterministic driver around one core."""

    def __init__(self, history=None, core=None, **config_overrides):
        if core is not None:
            self.core = core
            return
        config = DimmunixConfig(**config_overrides)
        self.core = DimmunixCore(config, history=history)

    def thread(self, name):
        return self.core.register_thread(name)

    def lock(self, name):
        return self.core.register_lock(name)

    def take(self, thread, lock, line):
        result = self.core.request(thread, lock, stack(line))
        assert result.verdict is RequestVerdict.PROCEED
        assert result.detected is None
        self.core.acquired(thread, lock)
        return result


class TestDetection:
    def test_two_thread_deadlock_detected_and_recorded(self):
        h = Harness()
        t1, t2 = h.thread("t1"), h.thread("t2")
        l1, l2 = h.lock("l1"), h.lock("l2")
        h.take(t1, l1, 10)
        h.take(t2, l2, 20)
        result = h.core.request(t1, l2, stack(11))
        assert result.detected is None
        result = h.core.request(t2, l1, stack(21))
        assert result.detected is not None
        assert result.detected.size == 2
        assert h.core.history.contains(result.detected)
        assert h.core.stats.deadlocks_detected == 1

    def test_signature_outer_positions_are_acquisition_sites(self):
        h = Harness()
        t1, t2 = h.thread("t1"), h.thread("t2")
        l1, l2 = h.lock("l1"), h.lock("l2")
        h.take(t1, l1, 10)
        h.take(t2, l2, 20)
        h.core.request(t1, l2, stack(11))
        result = h.core.request(t2, l1, stack(21))
        outers = set(result.detected.outer_position_keys())
        assert outers == {(("eng.py", 10),), (("eng.py", 20),)}

    def test_signature_inner_positions_are_blocking_sites(self):
        h = Harness()
        t1, t2 = h.thread("t1"), h.thread("t2")
        l1, l2 = h.lock("l1"), h.lock("l2")
        h.take(t1, l1, 10)
        h.take(t2, l2, 20)
        h.core.request(t1, l2, stack(11))
        result = h.core.request(t2, l1, stack(21))
        inners = set(result.detected.inner_position_keys())
        assert inners == {(("eng.py", 11),), (("eng.py", 21),)}

    def test_duplicate_deadlock_not_recorded_twice(self):
        history = History()
        for _round in range(2):
            h = Harness(history=history)
            t1, t2 = h.thread("t1"), h.thread("t2")
            l1, l2 = h.lock("l1"), h.lock("l2")
            # Disable avoidance effect by bypassing: use fresh positions
            # only on round one; round two hits the same positions, so we
            # must drain avoidance by releasing first.
            result = h.core.request(t1, l1, stack(10))
            if result.verdict is RequestVerdict.PROCEED:
                h.core.acquired(t1, l1)
            h.core.release(t1, l1)
        assert len(history) <= 1

    def test_self_deadlock_detected(self):
        h = Harness()
        t1 = h.thread("t1")
        l1 = h.lock("l1")
        h.take(t1, l1, 10)
        result = h.core.request(t1, l1, stack(11))
        assert result.detected is not None
        assert result.detected.size == 1

    def test_cancel_request_rolls_back(self):
        h = Harness()
        t1, t2 = h.thread("t1"), h.thread("t2")
        l1, l2 = h.lock("l1"), h.lock("l2")
        h.take(t1, l1, 10)
        h.take(t2, l2, 20)
        h.core.request(t1, l2, stack(11))
        result = h.core.request(t2, l1, stack(21))
        assert result.detected is not None
        h.core.cancel_request(t2, l1)
        assert t2.requesting is None
        position = h.core.positions.get((("eng.py", 21),))
        assert not position.queue.contains_thread(t2)


class TestAvoidance:
    @staticmethod
    def deadlock_history():
        """A history holding one two-position signature (10, 20)."""
        h = Harness()
        t1, t2 = h.thread("t1"), h.thread("t2")
        l1, l2 = h.lock("l1"), h.lock("l2")
        h.take(t1, l1, 10)
        h.take(t2, l2, 20)
        h.core.request(t1, l2, stack(11))
        h.core.request(t2, l1, stack(21))
        return h.core.history

    def test_yield_when_instantiation_possible(self):
        h = Harness(history=self.deadlock_history())
        t1, t2 = h.thread("u1"), h.thread("u2")
        l1, l2 = h.lock("m1"), h.lock("m2")
        h.take(t1, l1, 10)  # occupies position 10
        result = h.core.request(t2, l2, stack(20))
        assert result.verdict is RequestVerdict.YIELD
        assert result.yield_on is not None
        assert h.core.stats.yields == 1
        assert h.core.yielding_threads == 1

    def test_no_yield_without_other_occupant(self):
        h = Harness(history=self.deadlock_history())
        t2 = h.thread("u2")
        l2 = h.lock("m2")
        result = h.core.request(t2, l2, stack(20))
        assert result.verdict is RequestVerdict.PROCEED

    def test_release_notifies_signature(self):
        h = Harness(history=self.deadlock_history())
        t1, t2 = h.thread("u1"), h.thread("u2")
        l1, l2 = h.lock("m1"), h.lock("m2")
        h.take(t1, l1, 10)
        yielded = h.core.request(t2, l2, stack(20))
        assert yielded.verdict is RequestVerdict.YIELD
        release = h.core.release(t1, l1)
        assert yielded.yield_on in release.notify
        # After the wake-up, the retry proceeds.
        retry = h.core.request(t2, l2, stack(20))
        assert retry.verdict is RequestVerdict.PROCEED
        assert h.core.yielding_threads == 0

    def test_release_at_cold_position_notifies_nothing(self):
        h = Harness(history=self.deadlock_history())
        t1 = h.thread("u1")
        l1 = h.lock("m1")
        h.take(t1, l1, 99)  # not a history position
        release = h.core.release(t1, l1)
        assert release.notify == ()

    def test_avoidance_disabled_when_no_history(self):
        h = Harness()
        t1, t2 = h.thread("u1"), h.thread("u2")
        l1, l2 = h.lock("m1"), h.lock("m2")
        h.take(t1, l1, 10)
        result = h.core.request(t2, l2, stack(20))
        assert result.verdict is RequestVerdict.PROCEED

    def test_abandon_yield(self):
        h = Harness(history=self.deadlock_history())
        t1, t2 = h.thread("u1"), h.thread("u2")
        l1, l2 = h.lock("m1"), h.lock("m2")
        h.take(t1, l1, 10)
        result = h.core.request(t2, l2, stack(20))
        assert result.verdict is RequestVerdict.YIELD
        h.core.abandon_yield(t2)
        assert h.core.yielding_threads == 0
        assert t2.yielding_on is None


class TestStarvation:
    def test_immediate_starvation_bypasses(self):
        """If yielding would stall the system right away (the witness is
        blocked on a lock the requester holds), the engine records a
        starvation signature and lets the requester proceed."""
        history = TestAvoidance.deadlock_history()
        h = Harness(history=history)
        t1, t2 = h.thread("u1"), h.thread("u2")
        l1, l2 = h.lock("m1"), h.lock("m2")
        extra = h.lock("extra")
        # t1 occupies history position 10; t2 holds "extra"; t1 blocks
        # waiting for "extra" (request edge t1 -> extra -> owner t2).
        h.take(t1, l1, 10)
        h.take(t2, extra, 51)
        blocked = h.core.request(t1, extra, stack(50))
        assert blocked.verdict is RequestVerdict.PROCEED  # will block
        # t2 requests at position 20: instantiation of the signature is
        # possible (t1 sits at 10), but yielding would starve — the
        # witness t1 is itself waiting for t2. Bypass and proceed.
        result = h.core.request(t2, l2, stack(20))
        assert result.verdict is RequestVerdict.PROCEED
        assert result.starvation is not None
        assert h.core.stats.starvations_detected == 1
        assert h.core.history.starvation_count() >= 1

    def test_force_bypass_records_starvation(self):
        history = TestAvoidance.deadlock_history()
        h = Harness(history=history)
        t1, t2 = h.thread("u1"), h.thread("u2")
        l1, l2 = h.lock("m1"), h.lock("m2")
        h.take(t1, l1, 10)
        result = h.core.request(t2, l2, stack(20))
        assert result.verdict is RequestVerdict.YIELD
        signature = h.core.force_bypass(t2)
        assert signature is not None and signature.is_starvation
        # The retry proceeds: the recorded starvation signature now
        # overrides parking at this position in this configuration.
        retry = h.core.request(t2, l2, stack(20))
        assert retry.verdict is RequestVerdict.PROCEED
        assert h.core.stats.starvation_overrides >= 1

    def test_force_bypass_on_running_thread_is_none(self):
        h = Harness()
        t1 = h.thread("u1")
        assert h.core.force_bypass(t1) is None


class TestLifecycle:
    def test_thread_exit_cleans_queues(self):
        h = Harness()
        t1 = h.thread("t1")
        l1 = h.lock("l1")
        h.take(t1, l1, 10)
        position = h.core.positions.get((("eng.py", 10),))
        assert position.queue.contains_thread(t1)
        h.core.thread_exit(t1)
        assert not position.queue.contains_thread(t1)
        assert l1.owner is None

    def test_acquired_without_request_asserts(self):
        h = Harness()
        t1 = h.thread("t1")
        l1 = h.lock("l1")
        with pytest.raises(AssertionError):
            h.core.acquired(t1, l1)

    def test_snapshot_counts(self):
        h = Harness()
        t1 = h.thread("t1")
        l1 = h.lock("l1")
        h.take(t1, l1, 10)
        snap = h.core.snapshot()
        assert snap.threads == 1
        assert snap.locks == 1
        assert snap.positions == 1

    def test_auto_save_persists_on_detection(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        h = Harness(history_path=path)
        t1, t2 = h.thread("t1"), h.thread("t2")
        l1, l2 = h.lock("l1"), h.lock("l2")
        h.take(t1, l1, 10)
        h.take(t2, l2, 20)
        h.core.request(t1, l2, stack(11))
        h.core.request(t2, l1, stack(21))
        # Persistence is write-behind: the detection path does no file
        # I/O; the explicit flush (or the persister's worker) writes.
        h.core.flush_history()
        assert path.exists()
        loaded = History.load(path)
        assert len(loaded) == 1

    def test_detection_path_does_no_synchronous_io(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        # Deferred persistence: no worker thread races the assertions.
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
            persistence_mode="deferred",
        )
        h = Harness(core=core)
        t1, t2 = h.thread("t1"), h.thread("t2")
        l1, l2 = h.lock("l1"), h.lock("l2")
        h.take(t1, l1, 10)
        h.take(t2, l2, 20)
        h.core.request(t1, l2, stack(11))
        h.core.request(t2, l1, stack(21))
        # At the moment detection returns, the signature is pending in
        # the store, not on disk — the detection path wrote nothing.
        assert not path.exists()
        assert h.core.history.store.pending_count == 1
        assert h.core.flush_history() == 1
        assert path.exists()
        assert h.core.history.store.pending_count == 0

    def test_memory_footprint_grows_with_structures(self):
        h = Harness()
        base = h.core.memory_footprint().bytes_total
        for index in range(10):
            t = h.thread(f"t{index}")
            l = h.lock(f"l{index}")
            h.take(t, l, 100 + index)
        grown = h.core.memory_footprint()
        assert grown.bytes_total > base
        assert grown.thread_nodes == 10
        assert grown.lock_nodes == 10
        assert grown.positions == 10
