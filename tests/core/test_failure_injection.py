"""Failure injection: corrupted persistence, dying threads, full history.

Dimmunix saves its history *during a deadlock* and loads it on every
process start — the unhappy paths are the normal paths here.
"""

from __future__ import annotations

import json

import pytest

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore
from repro.core.history import History, HistoryFullError
from repro.errors import HistoryFormatError
from repro.workloads.synthetic_sigs import make_signature


class TestCorruptHistoryFiles:
    def test_wrong_format_header(self, tmp_path):
        path = tmp_path / "h"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(HistoryFormatError, match="not a Dimmunix history"):
            History.load(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "h"
        path.write_text('{"format": "dimmunix-history", "version": 99}\n')
        with pytest.raises(HistoryFormatError, match="version"):
            History.load(path)

    def test_binary_garbage_header(self, tmp_path):
        path = tmp_path / "h"
        path.write_bytes(b"\x00\x01\x02 not json at all\n")
        with pytest.raises(HistoryFormatError, match="bad history header"):
            History.load(path)

    def test_truncated_signature_line(self, tmp_path):
        history = History()
        history.add(make_signature(("a.py", 1), ("a.py", 2)))
        path = tmp_path / "h"
        history.save(path)
        content = path.read_text()
        path.write_text(content + '{"kind": "deadlock", "entr\n')
        with pytest.raises(HistoryFormatError, match="bad signature at"):
            History.load(path)

    def test_error_names_line_number(self, tmp_path):
        history = History()
        history.add(make_signature(("a.py", 1), ("a.py", 2)))
        path = tmp_path / "h"
        history.save(path)
        path.write_text(path.read_text() + "[1,2,3]\n")
        with pytest.raises(HistoryFormatError, match=":3"):
            History.load(path)

    def test_signature_with_wrong_schema(self, tmp_path):
        header = {"format": "dimmunix-history", "version": 1}
        path = tmp_path / "h"
        path.write_text(
            json.dumps(header) + "\n" + json.dumps({"entries": []}) + "\n"
        )
        with pytest.raises(HistoryFormatError):
            History.load(path)

    def test_blank_lines_are_tolerated(self, tmp_path):
        history = History()
        history.add(make_signature(("a.py", 1), ("a.py", 2)))
        path = tmp_path / "h"
        history.save(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(History.load(path)) == 1

    def test_empty_file_loads_empty(self, tmp_path):
        path = tmp_path / "h"
        path.write_text("")
        assert len(History.load(path)) == 0

    def test_save_is_atomic_leaves_no_temp(self, tmp_path):
        history = History()
        history.add(make_signature(("a.py", 1), ("a.py", 2)))
        path = tmp_path / "h"
        history.save(path)
        leftovers = [p for p in tmp_path.iterdir() if p.name != "h"]
        assert leftovers == []


class TestHistoryFull:
    def test_add_beyond_cap_raises(self):
        history = History(max_signatures=3)
        for index in range(3):
            history.add(make_signature(("a.py", index + 1), ("b.py", index + 1), index))
        with pytest.raises(HistoryFullError):
            history.add(make_signature(("c.py", 50), ("c.py", 51), 99))

    def test_duplicates_do_not_count_against_cap(self):
        history = History(max_signatures=1)
        signature = make_signature(("a.py", 1), ("a.py", 2))
        assert history.add(signature)
        assert not history.add(signature)  # duplicate, no raise
        assert len(history) == 1


class TestDyingThreads:
    def _core(self) -> DimmunixCore:
        return DimmunixCore(DimmunixConfig())

    def test_thread_exit_releases_everything(self):
        core = self._core()
        thread = core.register_thread("doomed")
        locks = [core.register_lock(f"l{i}") for i in range(3)]
        stack = CallStack.single("app.py", 5)
        for lock in locks:
            core.request(thread, lock, stack)
            core.acquired(thread, lock)
        core.thread_exit(thread)
        for lock in locks:
            assert lock.owner is None
        for position in core.positions:
            assert len(position.queue) == 0
        assert core.rag.thread_count() == 0

    def test_thread_exit_with_pending_request(self):
        core = self._core()
        owner = core.register_thread("owner")
        doomed = core.register_thread("doomed")
        lock = core.register_lock("l")
        stack = CallStack.single("app.py", 9)
        core.request(owner, lock, stack)
        core.acquired(owner, lock)
        core.request(doomed, lock, stack)  # blocked
        core.thread_exit(doomed)
        # The owner is unaffected; the doomed request left no residue.
        assert lock.owner is owner
        total_queued = sum(len(p.queue) for p in core.positions)
        assert total_queued == 1  # just the owner's hold entry

    def test_dead_thread_does_not_pin_avoidance(self):
        """A thread that died holding a lock at an in-history position
        must not keep instantiating signatures forever."""
        core = self._core()
        history_sig = make_signature(("app.py", 5), ("app.py", 7))
        core.history.add(history_sig)

        zombie = core.register_thread("zombie")
        lock_a = core.register_lock("a")
        stack_a = CallStack.single("app.py", 5)
        core.request(zombie, lock_a, stack_a)
        core.acquired(zombie, lock_a)

        live = core.register_thread("live")
        lock_b = core.register_lock("b")
        stack_b = CallStack.single("app.py", 7)
        result = core.request(live, lock_b, stack_b)
        assert result.verdict.value == "yield"  # zombie makes it dangerous
        core.abandon_yield(live)

        core.thread_exit(zombie)  # crash cleanup
        result = core.request(live, lock_b, stack_b)
        assert result.verdict.value == "proceed"


class TestEngineMisuse:
    def test_acquired_without_request_raises(self):
        core = DimmunixCore(DimmunixConfig())
        thread = core.register_thread("t")
        lock = core.register_lock("l")
        with pytest.raises(AssertionError, match="without a pending request"):
            core.acquired(thread, lock)

    def test_release_of_never_acquired_lock_is_noop(self):
        core = DimmunixCore(DimmunixConfig())
        thread = core.register_thread("t")
        lock = core.register_lock("l")
        result = core.release(thread, lock)
        assert result.notify == ()

    def test_double_request_is_protocol_violation(self):
        core = DimmunixCore(DimmunixConfig())
        thread = core.register_thread("t")
        lock_a = core.register_lock("a")
        lock_b = core.register_lock("b")
        stack = CallStack.single("x.py", 1)
        core.request(thread, lock_a, stack)
        with pytest.raises(AssertionError, match="already requests"):
            core.request(thread, lock_b, stack)
