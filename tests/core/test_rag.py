"""Unit tests for RAG bookkeeping and invariants."""

import pytest

from repro.core.callstack import CallStack
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable
from repro.core.rag import ResourceAllocationGraph


def wire():
    rag = ResourceAllocationGraph()
    table = PositionTable()
    stack = CallStack.single("rag.py", 1)
    pos = table.intern(stack)
    return rag, pos, stack


class TestEdges:
    def test_request_then_hold(self):
        rag, pos, stack = wire()
        thread, lock = ThreadNode("t"), LockNode("l")
        rag.add_thread(thread)
        rag.add_lock(lock)
        rag.set_request(thread, lock, pos, stack)
        assert thread.requesting is lock
        rag.clear_request(thread)
        rag.set_hold(thread, lock, pos, stack)
        assert lock.owner is thread
        assert lock in thread.held
        rag.check_invariants()

    def test_double_request_different_lock_asserts(self):
        rag, pos, stack = wire()
        thread = ThreadNode("t")
        lock_a, lock_b = LockNode("a"), LockNode("b")
        rag.set_request(thread, lock_a, pos, stack)
        with pytest.raises(AssertionError):
            rag.set_request(thread, lock_b, pos, stack)

    def test_hold_of_owned_lock_by_other_asserts(self):
        rag, pos, stack = wire()
        t1, t2 = ThreadNode("t1"), ThreadNode("t2")
        lock = LockNode("l")
        rag.set_hold(t1, lock, pos, stack)
        with pytest.raises(AssertionError):
            rag.set_hold(t2, lock, pos, stack)

    def test_clear_hold(self):
        rag, pos, stack = wire()
        thread, lock = ThreadNode("t"), LockNode("l")
        rag.set_hold(thread, lock, pos, stack)
        rag.clear_hold(thread, lock)
        assert lock.owner is None
        assert lock not in thread.held

    def test_yield_edges(self):
        rag, pos, stack = wire()
        t1, t2 = ThreadNode("t1"), ThreadNode("t2")
        lock = LockNode("l")
        rag.set_yield(t1, "some-signature", [(t2, lock)])
        assert t1.yielding_on == "some-signature"
        assert t1.is_blocked()
        rag.clear_yield(t1)
        assert not t1.is_blocked()

    def test_edge_count(self):
        rag, pos, stack = wire()
        t1, t2 = ThreadNode("t1"), ThreadNode("t2")
        l1, l2 = LockNode("l1"), LockNode("l2")
        for node in (t1, t2):
            rag.add_thread(node)
        for node in (l1, l2):
            rag.add_lock(node)
        rag.set_hold(t1, l1, pos, stack)
        rag.set_request(t2, l2, pos, stack)
        assert rag.edge_count() == 2

    def test_blocked_threads(self):
        rag, pos, stack = wire()
        t1, t2 = ThreadNode("t1"), ThreadNode("t2")
        lock = LockNode("l")
        rag.add_thread(t1)
        rag.add_thread(t2)
        rag.set_request(t1, lock, pos, stack)
        assert rag.blocked_threads() == [t1]

    def test_invariant_violation_detected(self):
        rag, pos, stack = wire()
        thread, lock = ThreadNode("t"), LockNode("l")
        rag.add_thread(thread)
        rag.add_lock(lock)
        rag.set_hold(thread, lock, pos, stack)
        lock.owner = None  # corrupt
        with pytest.raises(AssertionError):
            rag.check_invariants()

    def test_node_registry(self):
        rag, pos, stack = wire()
        thread, lock = ThreadNode("t"), LockNode("l")
        rag.add_thread(thread)
        rag.add_lock(lock)
        assert rag.thread_by_id(thread.node_id) is thread
        assert rag.lock_by_id(lock.node_id) is lock
        rag.remove_thread(thread)
        rag.remove_lock(lock)
        assert rag.thread_count() == 0
        assert rag.lock_count() == 0
