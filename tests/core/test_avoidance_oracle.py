"""Property tests for the instantiation checker against a brute-force oracle.

``would_instantiate`` is the heart of avoidance (§2.2): a signature with
outer positions p1..pn is instantiable iff one queue entry can be chosen
per position such that the chosen threads are pairwise distinct and the
chosen locks are pairwise distinct. The checker implements a pruned
backtracking search; the oracle below enumerates *all* assignments via
itertools, so any missed or invented instantiation is caught.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore
from repro.core.signature import DeadlockSignature, SignatureEntry

POSITIONS = 3
THREADS = 4
LOCKS = 4


def _stack(position_index: int) -> CallStack:
    return CallStack.single("oracle.py", 100 + position_index)


def _signature(position_indices: tuple[int, ...]) -> DeadlockSignature:
    inner = CallStack.single("<inner>", 1)
    return DeadlockSignature(
        [
            SignatureEntry(outer=_stack(index), inner=inner)
            for index in position_indices
        ]
    )


def _oracle(
    occupancy: dict[int, list[tuple[int, int]]],
    position_indices: tuple[int, ...],
) -> bool:
    """Enumerate every per-position choice of (thread, lock) entries."""
    pools = []
    for index in position_indices:
        pool = occupancy.get(index, [])
        if not pool:
            return False
        pools.append(pool)
    for combo in itertools.product(*pools):
        threads = [thread for thread, _lock in combo]
        locks = [lock for _thread, lock in combo]
        if len(set(threads)) == len(combo) and len(set(locks)) == len(combo):
            return True
    return False


# occupancy: which (thread, lock) pairs sit in which position's queue.
occupancies = st.dictionaries(
    keys=st.integers(0, POSITIONS - 1),
    values=st.lists(
        st.tuples(st.integers(0, THREADS - 1), st.integers(0, LOCKS - 1)),
        max_size=4,
        unique=True,
    ),
    max_size=POSITIONS,
)

signature_shapes = st.lists(
    st.integers(0, POSITIONS - 1), min_size=1, max_size=3
).map(tuple)


def _build_state(occupancy):
    """Materialize queue occupancy in a fresh engine.

    Each (thread, lock) pair is installed as a *hold* at its position —
    the "holds or is allowed to wait for" relation the queues record. A
    thread can hold many locks, but one lock has one holder; duplicate
    lock uses are dropped (and mirrored into the oracle's view).
    """
    core = DimmunixCore(DimmunixConfig())
    threads = [core.register_thread(f"t{i}") for i in range(THREADS)]
    locks = [core.register_lock(f"l{i}") for i in range(LOCKS)]
    effective: dict[int, list[tuple[int, int]]] = {}
    used_locks: set[int] = set()
    for position_index, entries in sorted(occupancy.items()):
        for thread_index, lock_index in entries:
            if lock_index in used_locks:
                continue
            used_locks.add(lock_index)
            core.request(
                threads[thread_index],
                locks[lock_index],
                _stack(position_index),
            )
            core.acquired(threads[thread_index], locks[lock_index])
            effective.setdefault(position_index, []).append(
                (thread_index, lock_index)
            )
    # Intern every position so absent queues exist as empty (not None).
    for index in range(POSITIONS):
        core.positions.intern(_stack(index))
    return core, effective


@given(occupancy=occupancies, shape=signature_shapes)
@settings(max_examples=300, deadline=None)
def test_checker_agrees_with_bruteforce(occupancy, shape):
    core, effective = _build_state(occupancy)
    signature = _signature(shape)
    witnesses = core.checker.would_instantiate(signature)
    expected = _oracle(effective, shape)
    assert (witnesses is not None) == expected


@given(occupancy=occupancies, shape=signature_shapes)
@settings(max_examples=200, deadline=None)
def test_witnesses_are_valid(occupancy, shape):
    """Any returned witness must itself be a valid instantiation."""
    core, effective = _build_state(occupancy)
    witnesses = core.checker.would_instantiate(_signature(shape))
    if witnesses is None:
        return
    assert len(witnesses) == len(shape)
    thread_ids = [thread.node_id for thread, _lock in witnesses]
    lock_ids = [lock.node_id for _thread, lock in witnesses]
    assert len(set(thread_ids)) == len(witnesses)
    assert len(set(lock_ids)) == len(witnesses)
    # Each witness entry must really sit in its position's queue.
    for position_index, (thread, lock) in zip(shape, witnesses):
        position = core.positions.get(((("oracle.py", 100 + position_index)),) )
        assert position is not None
        assert any(
            queued_thread is thread and queued_lock is lock
            for queued_thread, queued_lock in position.queue.entries()
        )
