"""Model-based tests driving the pure engine through random schedules.

The engine is a state machine; these tests execute arbitrary interleaved
request/acquire/release schedules against it and check the global
invariants after every step:

* the RAG's structural invariants (ownership back-pointers, single
  pending request, no request-while-yielding);
* queue conservation — every position's queue holds exactly the threads
  that hold or are allowed to acquire a lock there;
* full teardown — after releasing everything and retiring every thread,
  no queue entry, hold edge, or request edge survives.

An oracle deadlock detector (networkx, on the wait-for digraph) is run
against the engine's chain-walk detector on every generated state.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore, RequestVerdict

THREADS = 4
LOCKS = 4
SITES = 3


def _stack(site: int) -> CallStack:
    return CallStack.single("model.py", 10 + site)


class _Model:
    """Sequential driver mirroring what a blocking adapter would do."""

    def __init__(self, core: DimmunixCore) -> None:
        self.core = core
        self.threads = [core.register_thread(f"t{i}") for i in range(THREADS)]
        self.locks = [core.register_lock(f"l{i}") for i in range(LOCKS)]
        self.holder: dict[int, int] = {}           # lock -> thread
        self.held_by: dict[int, list[int]] = {i: [] for i in range(THREADS)}
        self.pending: dict[int, int] = {}          # thread -> lock
        self.detections = 0

    # -- actions ---------------------------------------------------------

    def try_request(self, thread_id: int, lock_id: int, site: int) -> None:
        if thread_id in self.pending:
            return  # blocked threads issue no new operations
        if lock_id in self.held_by[thread_id]:
            return  # reentrancy is filtered by adapters
        thread = self.threads[thread_id]
        lock = self.locks[lock_id]
        result = self.core.request(thread, lock, _stack(site))
        if result.detected is not None:
            # RAISE-policy adapter: cancel and unwind nothing.
            self.detections += 1
            self.core.cancel_request(thread, lock)
            return
        if result.verdict is RequestVerdict.YIELD:
            # Non-blocking model: abandon instead of parking.
            self.core.abandon_yield(thread)
            return
        if lock_id in self.holder:
            self.pending[thread_id] = lock_id  # physically blocked
        else:
            self.core.acquired(thread, lock)
            self.holder[lock_id] = thread_id
            self.held_by[thread_id].append(lock_id)

    def release_one(self, thread_id: int) -> None:
        if thread_id in self.pending or not self.held_by[thread_id]:
            return
        lock_id = self.held_by[thread_id].pop()  # LIFO, like scoped locks
        self.core.release(self.threads[thread_id], self.locks[lock_id])
        del self.holder[lock_id]
        self._grant_waiters(lock_id)

    def _grant_waiters(self, lock_id: int) -> None:
        for waiter, wanted in list(self.pending.items()):
            if wanted == lock_id and lock_id not in self.holder:
                del self.pending[waiter]
                self.core.acquired(self.threads[waiter], self.locks[lock_id])
                self.holder[lock_id] = waiter
                self.held_by[waiter].append(lock_id)

    # -- invariants --------------------------------------------------------

    def check(self) -> None:
        self.core.rag.check_invariants()
        # Queue conservation: each position queue's entries == model state.
        queued = sorted(
            (thread.name, lock.name)
            for position in self.core.positions
            for thread, lock in position.queue.entries()
        )
        expected = sorted(
            [
                (self.threads[t].name, self.locks[l].name)
                for l, t in self.holder.items()
            ]
            + [
                (self.threads[t].name, self.locks[l].name)
                for t, l in self.pending.items()
            ]
        )
        assert queued == expected
        self._check_detector_against_oracle()

    def _check_detector_against_oracle(self) -> None:
        graph = nx.DiGraph()
        for lock_id, owner in self.holder.items():
            for waiter, wanted in self.pending.items():
                if wanted == lock_id:
                    graph.add_edge(waiter, owner)
        try:
            nx.find_cycle(graph)
            oracle_cycle = True
        except nx.NetworkXNoCycle:
            oracle_cycle = False
        from repro.core.cycle import find_any_lock_cycle

        ours = find_any_lock_cycle(self.threads) is not None
        assert ours == oracle_cycle

    def teardown(self) -> None:
        for thread_id in range(THREADS):
            if thread_id in self.pending:
                self.core.cancel_request(
                    self.threads[thread_id],
                    self.locks[self.pending[thread_id]],
                )
                del self.pending[thread_id]
            while self.held_by[thread_id]:
                self.release_one(thread_id)
        for thread in self.threads:
            self.core.thread_exit(thread)
        for position in self.core.positions:
            assert len(position.queue) == 0
        assert self.core.rag.thread_count() == 0


actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("request"),
            st.integers(0, THREADS - 1),
            st.integers(0, LOCKS - 1),
            st.integers(0, SITES - 1),
        ),
        st.tuples(st.just("release"), st.integers(0, THREADS - 1)),
    ),
    max_size=60,
)


@given(schedule=actions)
@settings(max_examples=120, deadline=None)
def test_random_schedules_preserve_invariants(schedule):
    model = _Model(DimmunixCore(DimmunixConfig()))
    for action in schedule:
        if action[0] == "request":
            _kind, thread_id, lock_id, site = action
            model.try_request(thread_id, lock_id, site)
        else:
            model.release_one(action[1])
        model.check()
    model.teardown()


@given(schedule=actions)
@settings(max_examples=60, deadline=None)
def test_detection_records_signature_and_recovers(schedule):
    """Whenever the model detects, the history grows and stays loadable."""
    core = DimmunixCore(DimmunixConfig())
    model = _Model(core)
    for action in schedule:
        if action[0] == "request":
            _kind, thread_id, lock_id, site = action
            before = len(core.history)
            model.try_request(thread_id, lock_id, site)
            after = len(core.history)
            # Detection implies a recorded (or duplicate) signature.
            assert after >= before
        else:
            model.release_one(action[1])
    assert core.stats.deadlocks_detected == model.detections
    # Deadlock signatures only come from detections (dedup can make
    # them fewer); the history may additionally hold starvation
    # signatures recorded at yield time, so count kinds separately.
    assert core.history.deadlock_count() <= model.detections
    assert core.history.starvation_count() <= core.stats.starvations_detected
    if model.detections:
        assert core.history.deadlock_count() >= 1
    model.teardown()


@given(schedule=actions)
@settings(max_examples=40, deadline=None)
def test_avoidance_never_parks_without_history(schedule):
    """While the history is empty nothing is instantiable: no yields.

    A detection mid-schedule adds a signature, after which avoidance
    may legitimately park threads — so the invariant is checked only up
    to the moment the history first becomes non-empty.
    """
    core = DimmunixCore(DimmunixConfig())
    model = _Model(core)
    for action in schedule:
        if action[0] == "request":
            _kind, thread_id, lock_id, site = action
            model.try_request(thread_id, lock_id, site)
        else:
            model.release_one(action[1])
        if len(core.history) == 0:
            assert core.stats.yields == 0
            assert core.stats.avoided_instantiations == 0
    model.teardown()
