"""Unit tests for the persistent deadlock history."""

import json

import pytest

from repro.core.callstack import CallStack
from repro.core.history import (
    FORMAT_NAME,
    History,
    HistoryFullError,
    load_or_empty,
)
from repro.core.signature import (
    KIND_STARVATION,
    DeadlockSignature,
    SignatureEntry,
)
from repro.errors import HistoryFormatError


def sig(outer_a=1, outer_b=3, inner_a=2, inner_b=4, kind="deadlock"):
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("h.py", outer_a),
                CallStack.single("h.py", inner_a),
            ),
            SignatureEntry(
                CallStack.single("h.py", outer_b),
                CallStack.single("h.py", inner_b),
            ),
        ],
        kind=kind,
    )


class TestHistoryBasics:
    def test_add_and_contains(self):
        history = History()
        signature = sig()
        assert history.add(signature)
        assert history.contains(signature)
        assert signature in history
        assert len(history) == 1

    def test_duplicate_rejected(self):
        history = History()
        assert history.add(sig())
        assert not history.add(sig())
        assert len(history) == 1

    def test_signatures_at_outer_position(self):
        history = History()
        signature = sig(outer_a=10, outer_b=20)
        history.add(signature)
        assert history.signatures_at((("h.py", 10),)) == (signature,)
        assert history.signatures_at((("h.py", 20),)) == (signature,)
        assert history.signatures_at((("h.py", 2),)) == ()

    def test_signatures_at_excluding_starvation(self):
        history = History()
        deadlock = sig(outer_a=10, outer_b=20)
        starvation = sig(outer_a=10, outer_b=30, kind=KIND_STARVATION)
        history.add(deadlock)
        history.add(starvation)
        at_10 = history.signatures_at((("h.py", 10),))
        assert set(at_10) == {deadlock, starvation}
        only_deadlocks = history.signatures_at(
            (("h.py", 10),), include_starvation=False
        )
        assert only_deadlocks == (deadlock,)

    def test_counts_by_kind(self):
        history = History()
        history.add(sig())
        history.add(sig(outer_a=7, kind=KIND_STARVATION))
        assert history.deadlock_count() == 1
        assert history.starvation_count() == 1

    def test_max_signatures_enforced(self):
        history = History(max_signatures=2)
        history.add(sig(outer_a=1))
        history.add(sig(outer_a=2))
        with pytest.raises(HistoryFullError):
            history.add(sig(outer_a=3))

    def test_merge_from(self):
        a = History()
        a.add(sig(outer_a=1))
        b = History()
        b.add(sig(outer_a=1))
        b.add(sig(outer_a=2))
        added = a.merge_from(b)
        assert added == 1
        assert len(a) == 2

    def test_shared_position_indexes_both_signatures(self):
        history = History()
        first = sig(outer_a=10, outer_b=20)
        second = sig(outer_a=10, outer_b=30)
        history.add(first)
        history.add(second)
        assert set(history.signatures_at((("h.py", 10),))) == {first, second}


class TestHistoryPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        history = History()
        history.add(sig(outer_a=1))
        history.add(sig(outer_a=5, kind=KIND_STARVATION))
        path = tmp_path / "history.jsonl"
        history.save(path)
        loaded = History.load(path)
        assert len(loaded) == 2
        assert loaded.contains(sig(outer_a=1))
        assert loaded.starvation_count() == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        loaded = History.load(tmp_path / "absent.jsonl")
        assert len(loaded) == 0

    def test_load_or_empty_none_path(self):
        assert len(load_or_empty(None)) == 0

    def test_header_format_checked(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(HistoryFormatError):
            History.load(path)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": FORMAT_NAME, "version": 99}) + "\n")
        with pytest.raises(HistoryFormatError):
            History.load(path)

    def test_corrupt_signature_line_reported_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": FORMAT_NAME, "version": 1})
            + "\n{not json}\n"
        )
        with pytest.raises(HistoryFormatError) as exc_info:
            History.load(path)
        assert ":2" in str(exc_info.value)

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        history = History()
        history.add(sig())
        path = tmp_path / "history.jsonl"
        history.save(path)
        assert path.exists()
        assert not (tmp_path / "history.jsonl.tmp").exists()

    def test_empty_file_loads_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert len(History.load(path)) == 0

    def test_blank_lines_skipped(self, tmp_path):
        history = History()
        history.add(sig())
        path = tmp_path / "history.jsonl"
        history.save(path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(History.load(path)) == 1
