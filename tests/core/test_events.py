"""The typed event stream: bus semantics, engine emission, stats parity.

Three properties are load-bearing for everything downstream:

1. **Ordering** — ``seq`` is bus-wide and strictly increasing, and a
   subscriber observes events in exactly ``seq`` order even under
   concurrent lock traffic from many real threads.
2. **Isolation** — a subscriber that raises never perturbs the lock
   path, the other subscribers, or the stats counters.
3. **Parity** — the legacy ``DimmunixStats`` lifecycle counters are
   *derived from* the stream, so event-derived counts and counters can
   never drift apart.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.config import DetectionPolicy, DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore
from repro.core.events import (
    EVENT_TYPES,
    AcquiredEvent,
    DetectionEvent,
    EventBus,
    EventCounter,
    EventLog,
    JsonlWriter,
    ReleaseEvent,
    RequestEvent,
    YieldEvent,
    event_from_dict,
    event_to_dict,
)
from repro.core.signature import (
    KIND_STARVATION,
    DeadlockSignature,
    SignatureEntry,
)

from tests.conftest import make_runtime


def stack(line: int, file: str = "Ev.java") -> CallStack:
    return CallStack.single(file, line, "f")


def sample_signature(kind: str = "deadlock") -> DeadlockSignature:
    return DeadlockSignature(
        entries=(
            SignatureEntry(outer=stack(1), inner=stack(2)),
            SignatureEntry(outer=stack(3), inner=stack(4)),
        ),
        kind=kind,
    )


# ----------------------------------------------------------------------
# bus semantics
# ----------------------------------------------------------------------

class TestEventBus:
    def test_publish_assigns_strictly_increasing_seq(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        for _ in range(5):
            bus.publish(RequestEvent(thread="t", lock="l"))
        seqs = [event.seq for event in log.events]
        assert seqs == [1, 2, 3, 4, 5]
        assert bus.published == 5
        assert bus.delivered == 5

    def test_kind_filter_accepts_strings_and_classes(self):
        bus = EventBus()
        seen: list = []
        bus.subscribe(seen.append, kinds=("request", AcquiredEvent))
        bus.publish(RequestEvent())
        bus.publish(AcquiredEvent())
        bus.publish(ReleaseEvent())
        assert [event.kind for event in seen] == ["request", "acquired"]

    def test_unknown_kind_is_rejected_eagerly(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kinds"):
            bus.subscribe(lambda e: None, kinds=("no-such-kind",))

    def test_source_filter(self):
        bus = EventBus()
        seen: list = []
        bus.subscribe(seen.append, source="vm-1")
        bus.publish(RequestEvent(source="vm-0"))
        bus.publish(RequestEvent(source="vm-1"))
        assert [event.source for event in seen] == ["vm-1"]

    def test_unsubscribe_by_handle_and_by_callback(self):
        bus = EventBus()
        seen: list = []
        handle = bus.subscribe(seen.append)
        assert bus.unsubscribe(handle)
        bus.publish(RequestEvent())
        assert seen == []

        bus.subscribe(seen.append)
        assert bus.unsubscribe(seen.append)
        bus.publish(RequestEvent())
        assert seen == []
        assert not bus.unsubscribe(seen.append)  # already gone

    def test_subscriber_exception_is_isolated(self):
        bus = EventBus()
        after: list = []

        def broken(event):
            raise RuntimeError("observer bug")

        bus.subscribe(broken)
        bus.subscribe(after.append)
        event = bus.publish(RequestEvent(thread="t"))
        # The publisher never sees the error; later subscribers still run.
        assert event.seq == 1
        assert len(after) == 1
        assert bus.subscriber_errors == 1

    def test_subscribe_during_dispatch_does_not_deadlock(self):
        bus = EventBus()
        late: list = []

        def self_modifying(event):
            bus.subscribe(late.append)

        bus.subscribe(self_modifying)
        bus.publish(RequestEvent())
        bus.unsubscribe(self_modifying)
        bus.publish(RequestEvent())
        # Two subscriptions were added by the two dispatches of
        # self_modifying... no: one dispatch each publish; after the
        # first publish one late subscriber exists and sees event 2.
        assert [event.seq for event in late] == [2]


# ----------------------------------------------------------------------
# wire form
# ----------------------------------------------------------------------

class TestWireForm:
    def test_roundtrip_plain_event(self):
        event = RequestEvent(
            source="rt", ts=1.5, thread="t", lock="l", position=(("F.py", 3),)
        )
        object.__setattr__(event, "seq", 7)
        rebuilt = event_from_dict(json.loads(json.dumps(event_to_dict(event))))
        assert isinstance(rebuilt, RequestEvent)
        assert rebuilt.seq == 7
        assert rebuilt.thread == "t"
        assert rebuilt.position == (("F.py", 3),)

    def test_roundtrip_keeps_ts_ns(self):
        event = RequestEvent(
            source="rt", ts=1.5, ts_ns=123_456_789, thread="t", lock="l"
        )
        data = event_to_dict(event)
        assert data["ts_ns"] == 123_456_789
        rebuilt = event_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.ts_ns == 123_456_789

    def test_missing_ts_ns_defaults_to_zero(self):
        # Recordings that predate the monotonic stamp must still load.
        rebuilt = event_from_dict(
            {"kind": "request", "source": "old", "thread": "t", "lock": "l"}
        )
        assert rebuilt.ts_ns == 0

    def test_engine_stamps_monotonic_ts_ns(self):
        core = DimmunixCore(DimmunixConfig(auto_save=False))
        log = EventLog()
        core.events.subscribe(log)
        thread = core.register_thread("t")
        lock = core.register_lock("l")
        core.request(thread, lock, CallStack.single("f.py", 1))
        core.acquired(thread, lock)
        core.release(thread, lock)
        stamps = [event.ts_ns for event in log.events]
        assert len(stamps) == 3
        assert all(ts_ns > 0 for ts_ns in stamps)
        assert stamps == sorted(stamps)

    def test_roundtrip_signature_event(self):
        signature = sample_signature()
        event = DetectionEvent(
            source="vm", thread="t", lock="l", signature=signature
        )
        rebuilt = event_from_dict(
            json.loads(json.dumps(event_to_dict(event)))
        )
        assert isinstance(rebuilt, DetectionEvent)
        assert rebuilt.signature == signature  # canonical-key equality

    def test_starvation_signature_keeps_kind(self):
        signature = sample_signature(KIND_STARVATION)
        data = event_to_dict(YieldEvent(signature=signature))
        rebuilt = event_from_dict(data)
        assert rebuilt.signature.is_starvation

    def test_every_kind_is_registered(self):
        assert set(EVENT_TYPES) == {
            "request",
            "acquired",
            "release",
            "yield",
            "resume",
            "detection",
            "starvation",
            "match-capped",
            "history-saved",
            "predicted-seeded",
            "fleet-sync",
            "livelock-suspected",
            "watchdog-mitigation",
        }

    def test_roundtrip_livelock_suspected_keeps_report(self):
        from repro.core.events import LivelockSuspectedEvent

        report = {
            "scan": 4,
            "source": "core",
            "oldest_waiter_age_ns": 1_500_000_000,
            "suspects": [
                {
                    "node": "waiter",
                    "reason": "stall",
                    "age_ns": 1_500_000_000,
                    "window": {"request": 1, "acquired": 0},
                }
            ],
            "rag": {"threads": [], "locks": [], "edges": []},
        }
        event = LivelockSuspectedEvent(
            source="core",
            thread="waiter",
            reason="stall",
            age_ns=1_500_000_000,
            scan=4,
            report=report,
        )
        rebuilt = event_from_dict(
            json.loads(json.dumps(event_to_dict(event)))
        )
        assert isinstance(rebuilt, LivelockSuspectedEvent)
        assert rebuilt.kind == "livelock-suspected"
        assert rebuilt.reason == "stall"
        assert rebuilt.age_ns == 1_500_000_000
        # The structured stall report survives the wire untouched.
        assert rebuilt.report == report

    def test_roundtrip_watchdog_mitigation(self):
        from repro.core.events import WatchdogMitigationEvent

        event = WatchdogMitigationEvent(
            source="core",
            thread="victim",
            policy="break_youngest",
            action="bypass-granted",
            reason="yield-storm",
            age_ns=42,
            scan=7,
        )
        rebuilt = event_from_dict(
            json.loads(json.dumps(event_to_dict(event)))
        )
        assert isinstance(rebuilt, WatchdogMitigationEvent)
        assert rebuilt.policy == "break_youngest"
        assert rebuilt.action == "bypass-granted"
        assert rebuilt.scan == 7

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "mystery"})

    def test_jsonl_writer_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlWriter(path) as writer:
            bus.subscribe(writer)
            bus.publish(RequestEvent(thread="t", lock="l"))
            bus.publish(DetectionEvent(signature=sample_signature()))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        events = [event_from_dict(json.loads(line)) for line in lines]
        assert [event.kind for event in events] == ["request", "detection"]
        assert [event.seq for event in events] == [1, 2]


# ----------------------------------------------------------------------
# engine emission + stats parity (single-threaded, scripted)
# ----------------------------------------------------------------------

def drive_abba_deadlock(core: DimmunixCore) -> None:
    """Two threads, AB/BA: the second B-request closes the cycle."""
    t1, t2 = core.register_thread("t1"), core.register_thread("t2")
    a, b = core.register_lock("A"), core.register_lock("B")
    core.request(t1, a, stack(10))
    core.acquired(t1, a)
    core.request(t2, b, stack(20))
    core.acquired(t2, b)
    core.request(t1, b, stack(11))
    result = core.request(t2, a, stack(21))
    assert result.detected is not None


class TestEngineEmission:
    def test_lifecycle_counters_are_event_derived(self):
        core = DimmunixCore(DimmunixConfig(yield_timeout=None))
        counter = EventCounter()
        core.events.subscribe(counter)
        drive_abba_deadlock(core)

        assert core.stats.requests == counter.count("request") == 4
        assert core.stats.acquisitions == counter.count("acquired") == 2
        assert core.stats.deadlocks_detected == counter.count("detection") == 1
        assert core.stats.releases == counter.count("release") == 0

    def test_watchdog_kinds_reach_stats_and_counter(self):
        from repro.core.events import (
            LivelockSuspectedEvent,
            WatchdogMitigationEvent,
        )

        core = DimmunixCore(DimmunixConfig(yield_timeout=None))
        counter = EventCounter()
        core.events.subscribe(counter)
        # The watchdog publishes under the owning core's source, which
        # is all it takes to reach the stats subscription — same 1:1
        # lifecycle rule as every other kind.
        core.events.publish(
            LivelockSuspectedEvent(source=core.source, thread="w")
        )
        core.events.publish(
            WatchdogMitigationEvent(source=core.source, thread="w")
        )
        core.events.publish(
            LivelockSuspectedEvent(source="someone-else", thread="w")
        )
        assert core.stats.livelock_suspects == 1
        assert core.stats.watchdog_mitigations == 1
        assert counter.count("livelock-suspected") == 2
        assert counter.count("watchdog-mitigation") == 1
        assert counter.count("livelock-suspected", source=core.source) == 1

    def test_detection_event_carries_the_recorded_signature(self):
        core = DimmunixCore(DimmunixConfig(yield_timeout=None))
        log = EventLog()
        core.events.subscribe(log, kinds=("detection",))
        drive_abba_deadlock(core)
        (detection,) = log.events
        assert detection.recorded is True
        assert core.history.contains(detection.signature)
        assert detection.thread == "t2"
        assert detection.lock == "A"

    def test_yield_event_emitted_on_avoidance(self):
        history_core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, starvation_detection=False)
        )
        drive_abba_deadlock(history_core)

        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, starvation_detection=False),
            history=history_core.history,
        )
        log = EventLog()
        core.events.subscribe(log)
        # Replay the interleaving *through* avoidance: t1 yields at the
        # dangerous position, then the direct cycle is forced by the
        # other order, deduplicating against the history.
        t1, t2 = core.register_thread("t1"), core.register_thread("t2")
        a, b = core.register_lock("A"), core.register_lock("B")
        core.request(t2, b, stack(20))
        core.acquired(t2, b)
        result = core.request(t1, a, stack(10))
        assert result.verdict.value == "yield"
        yields = log.of_kind("yield")
        assert len(yields) == 1
        assert yields[0].signature is not None
        assert core.stats.yields == 1

    def test_release_event_reports_notifications(self):
        core = DimmunixCore(DimmunixConfig(yield_timeout=None))
        drive_abba_deadlock(core)
        log = EventLog()
        core.events.subscribe(log, kinds=("release",))
        # Both outer positions are now in the history: releasing A at
        # position 10 must notify the signature that contains it.
        t1 = next(t for t in core.rag.threads() if t.name == "t1")
        a = next(l for l in core.rag.locks() if l.name == "A")
        result = core.release(t1, a)
        (release,) = log.events
        assert release.notified == len(result.notify) == 1
        assert core.stats.notifications == 1

    def test_history_saved_event_on_auto_save(self, tmp_path):
        path = tmp_path / "auto.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path)
        )
        log = EventLog()
        core.events.subscribe(log, kinds=("history-saved",))
        drive_abba_deadlock(core)
        # Write-behind: the flush (worker or explicit) emits exactly one
        # history-saved event; flush_history waits out any worker race.
        core.flush_history()
        (saved,) = log.events
        assert saved.path == str(path)
        assert saved.signatures == 1
        assert path.exists()

    def test_flush_emits_exactly_one_event_per_batch(self, tmp_path):
        path = tmp_path / "auto.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
            persistence_mode="deferred",
        )
        log = EventLog()
        core.events.subscribe(log, kinds=("history-saved",))
        drive_abba_deadlock(core)
        assert len(log.events) == 0  # nothing saved on the lock path
        core.flush_history()
        assert len(log.events) == 1
        core.flush_history()  # clean store: no second event
        assert len(log.events) == 1

    def test_shared_bus_keeps_per_core_stats_separate(self):
        bus = EventBus()
        core_a = DimmunixCore(
            DimmunixConfig(yield_timeout=None), events=bus, source="a"
        )
        core_b = DimmunixCore(
            DimmunixConfig(yield_timeout=None), events=bus, source="b"
        )
        drive_abba_deadlock(core_a)
        # core_b saw the same bus traffic but none of it was its own.
        assert core_a.stats.requests == 4
        assert core_b.stats.requests == 0
        counter = EventCounter()
        bus.subscribe(counter)
        drive_abba_deadlock(core_b)
        assert core_b.stats.requests == counter.count("request", source="b") == 4

    def test_same_source_on_one_bus_is_rejected(self):
        bus = EventBus()
        DimmunixCore(DimmunixConfig(yield_timeout=None), events=bus)
        with pytest.raises(ValueError, match="already claimed"):
            DimmunixCore(DimmunixConfig(yield_timeout=None), events=bus)
        # detach_events releases the name for a successor core.
        other = DimmunixCore(
            DimmunixConfig(yield_timeout=None), events=bus, source="other"
        )
        other.detach_events()
        DimmunixCore(
            DimmunixConfig(yield_timeout=None), events=bus, source="other"
        )

    def test_broken_subscriber_never_reaches_the_lock_path(self):
        core = DimmunixCore(DimmunixConfig(yield_timeout=None))

        def broken(event):
            raise RuntimeError("boom")

        core.events.subscribe(broken)
        drive_abba_deadlock(core)  # must not raise
        assert core.events.subscriber_errors > 0
        # Stats subscribed before the broken one: counters unharmed.
        assert core.stats.requests == 4


# ----------------------------------------------------------------------
# ordering + parity under real concurrent lock traffic
# ----------------------------------------------------------------------

class TestConcurrentOrdering:
    def test_stream_is_totally_ordered_under_contention(self):
        runtime = make_runtime()
        log = EventLog()
        runtime.subscribe(log)
        locks = [runtime.lock(f"l{i}") for i in range(4)]

        def worker(start: int) -> None:
            # Nested pairs in a globally consistent order (lower index
            # first): plenty of contention, structurally deadlock-free,
            # so the stream stays pure request/acquired/release.
            for i in range(25):
                low, high = sorted(((start + i) % 4, (start + i + 1) % 4))
                with locks[low]:
                    with locks[high]:
                        pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        seqs = [event.seq for event in log.events]
        # Dispatch is serialized: arrival order IS seq order, gap-free.
        assert seqs == list(range(1, len(seqs) + 1))
        assert len(seqs) >= 4 * 25 * 2 * 2  # request+acquired per lock, min

        # Per-thread sanity: each thread's events alternate
        # request -> acquired (never two un-acquired requests in a row
        # for real threading traffic that never parks on signatures).
        per_thread: dict[str, list[str]] = {}
        for event in log.events:
            if event.kind in ("request", "acquired"):
                per_thread.setdefault(event.thread, []).append(event.kind)
        for kinds in per_thread.values():
            for first, second in zip(kinds, kinds[1:]):
                if first == "request":
                    assert second == "acquired"

    def test_event_counts_match_stats_under_contention(self):
        runtime = make_runtime()
        counter = EventCounter()
        runtime.subscribe(counter)
        lock = runtime.lock("hot")

        def worker() -> None:
            for _ in range(50):
                with lock:
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        stats = runtime.stats
        assert counter.count("request") == stats.requests == 400
        assert counter.count("acquired") == stats.acquisitions == 400
        assert counter.count("release") == stats.releases == 400
