"""Unit tests for signature instantiation matching.

Covers the exact search (grouping, witness order, distinctness), the
per-check step budget with its two cap policies, and the regression for
the A7 collapsed-position stall: an N=12 signature on a single shared
line must return in bounded steps instead of wedging the check.
"""

import time

import pytest

from repro.config import DimmunixConfig, MatchCapPolicy
from repro.core.avoidance import InstantiationChecker
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore, RequestVerdict
from repro.core.events import EventLog
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.core.stats import DimmunixStats
from repro.workloads.synthetic_sigs import (
    hard_matching_entries,
    make_collapsed_signature,
)


def make_signature(*outer_lines):
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("av.py", line),
                CallStack.single("av.py", line + 100),
            )
            for line in outer_lines
        ]
    )


class Setup:
    def __init__(self):
        self.table = PositionTable()
        self.stats = DimmunixStats()
        self.checker = InstantiationChecker(self.table, self.stats)

    def occupy(self, line, thread, lock):
        position = self.table.intern(CallStack.single("av.py", line))
        position.queue.add(thread, lock)
        return position


class TestWouldInstantiate:
    def test_full_occupancy_matches(self):
        setup = Setup()
        sig = make_signature(1, 2)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses is not None
        assert len(witnesses) == 2

    def test_missing_position_no_match(self):
        setup = Setup()
        sig = make_signature(1, 2)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        assert setup.checker.would_instantiate(sig) is None

    def test_empty_queue_no_match(self):
        setup = Setup()
        sig = make_signature(1, 2)
        thread, lock = ThreadNode("a"), LockNode("x")
        position = setup.occupy(1, thread, lock)
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        position.queue.remove(thread, lock)
        assert setup.checker.would_instantiate(sig) is None

    def test_same_thread_cannot_fill_two_roles(self):
        """Distinct threads are required: one thread at both positions is
        not a deadlock (it would be a self-deadlock, a different bug)."""
        setup = Setup()
        sig = make_signature(1, 2)
        thread = ThreadNode("a")
        setup.occupy(1, thread, LockNode("x"))
        setup.occupy(2, thread, LockNode("y"))
        assert setup.checker.would_instantiate(sig) is None

    def test_same_lock_cannot_fill_two_roles(self):
        setup = Setup()
        sig = make_signature(1, 2)
        lock = LockNode("x")
        setup.occupy(1, ThreadNode("a"), lock)
        setup.occupy(2, ThreadNode("b"), lock)
        assert setup.checker.would_instantiate(sig) is None

    def test_backtracking_finds_valid_assignment(self):
        """Greedy would fail: thread A is in both queues; matching must
        route A to one slot and B to the other."""
        setup = Setup()
        sig = make_signature(1, 2)
        thread_a, thread_b = ThreadNode("a"), ThreadNode("b")
        lock_x, lock_y = LockNode("x"), LockNode("y")
        # Queue at 1: most-recent-first iteration sees (a, x) first.
        setup.occupy(1, thread_b, lock_y)
        setup.occupy(1, thread_a, lock_x)
        # Queue at 2: only (a, x) — so slot 1 must pick (b, y).
        setup.occupy(2, thread_a, lock_x)
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses is not None
        chosen = dict((t.name, l.name) for t, l in witnesses)
        assert chosen == {"b": "y", "a": "x"}

    def test_repeated_position_needs_two_occupants(self):
        """A signature may have the same outer position twice (two threads
        deadlocking through one site); instantiation then needs two
        distinct occupants of that one queue."""
        setup = Setup()
        sig = make_signature(7, 7)
        thread_a = ThreadNode("a")
        setup.occupy(7, thread_a, LockNode("x"))
        assert setup.checker.would_instantiate(sig) is None
        setup.occupy(7, ThreadNode("b"), LockNode("y"))
        assert setup.checker.would_instantiate(sig) is not None

    def test_three_entry_signature(self):
        setup = Setup()
        sig = make_signature(1, 2, 3)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        assert setup.checker.would_instantiate(sig) is None
        setup.occupy(3, ThreadNode("c"), LockNode("z"))
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses is not None and len(witnesses) == 3

    def test_witnesses_in_entry_order(self):
        setup = Setup()
        sig = make_signature(1, 2)
        thread_a, lock_x = ThreadNode("a"), LockNode("x")
        thread_b, lock_y = ThreadNode("b"), LockNode("y")
        setup.occupy(1, thread_a, lock_x)
        setup.occupy(2, thread_b, lock_y)
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses[0] == (thread_a, lock_x)
        assert witnesses[1] == (thread_b, lock_y)

    def test_stats_counted(self):
        setup = Setup()
        sig = make_signature(1, 2)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        setup.checker.would_instantiate(sig)
        assert setup.stats.instantiation_checks == 1
        assert setup.stats.matching_steps >= 2

    def test_collapsed_feasible_signature_matches_fast(self):
        """Grouping removes the factorial: N collapsed slots over N
        all-distinct occupants match on the first combination, not after
        permuting the queue."""
        setup = Setup()
        entries = 12
        sig = make_signature(*([7] * entries))
        for index in range(entries):
            setup.occupy(7, ThreadNode(f"t{index}"), LockNode(f"l{index}"))
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses is not None and len(witnesses) == entries
        thread_ids = {thread.node_id for thread, _lock in witnesses}
        lock_ids = {lock.node_id for _thread, lock in witnesses}
        assert len(thread_ids) == len(lock_ids) == entries
        assert setup.stats.matching_steps <= 2 * entries

    def test_union_short_circuit_refutes_without_search(self):
        """Four slots but only three distinct threads across all queues:
        the Hall-style counting refutes before any backtracking step.
        (2–3-entry signatures intentionally skip the precheck — their
        exact search is cheaper than the counting.)"""
        setup = Setup()
        sig = make_signature(1, 2, 3, 4)
        thread_a, thread_b, thread_c = (
            ThreadNode("a"), ThreadNode("b"), ThreadNode("c"),
        )
        setup.occupy(1, thread_a, LockNode("x"))
        setup.occupy(2, thread_b, LockNode("y"))
        setup.occupy(3, thread_c, LockNode("z"))
        setup.occupy(4, thread_a, LockNode("v"))
        setup.occupy(4, thread_b, LockNode("w"))
        assert setup.checker.would_instantiate(sig) is None
        assert setup.stats.matching_steps == 0


# ----------------------------------------------------------------------
# the step budget and its cap policies
# ----------------------------------------------------------------------

ADVERSARIAL_SITE = ("adv.py", 42)


def adversarial_setup(entries, budget, policy):
    """A checker over the collapsed-position occupancy that defeats
    counting but not search (see workloads.synthetic_sigs)."""
    table = PositionTable()
    stats = DimmunixStats()
    checker = InstantiationChecker(
        table, stats, budget=budget, policy=policy
    )
    position = table.intern(CallStack.single(*ADVERSARIAL_SITE))
    pairs = hard_matching_entries(entries)
    threads = [
        ThreadNode(f"t{i}")
        for i in range(max(t for t, _ in pairs) + 1)
    ]
    locks = [
        LockNode(f"l{i}") for i in range(max(l for _, l in pairs) + 1)
    ]
    for thread_index, lock_index in pairs:
        position.queue.add(threads[thread_index], locks[lock_index])
    signature = make_collapsed_signature(ADVERSARIAL_SITE, entries)
    return checker, stats, signature


class TestStepBudget:
    def test_a7_stall_returns_in_bounded_steps_grant(self):
        """The A7 regression: an N=12 single-line signature used to
        backtrack for minutes; under the default budget it must return
        in bounded steps, reporting the cap."""
        budget = DimmunixConfig().match_step_budget
        checker, stats, signature = adversarial_setup(
            12, budget, MatchCapPolicy.GRANT
        )
        started = time.perf_counter()
        result = checker.would_instantiate(signature)
        elapsed = time.perf_counter() - started
        assert result is None  # grant: cap reads as "not instantiable"
        assert checker.last_capped
        assert not checker.last_weak_fallback
        assert checker.last_steps <= budget + 1
        assert stats.match_caps == 1
        assert stats.weak_fallbacks == 0
        assert elapsed < 1.0  # loose CI bound; the bench asserts 50 ms

    def test_a7_stall_returns_in_bounded_steps_weak(self):
        budget = DimmunixConfig().match_step_budget
        checker, stats, signature = adversarial_setup(
            12, budget, MatchCapPolicy.WEAK
        )
        started = time.perf_counter()
        result = checker.would_instantiate(signature)
        elapsed = time.perf_counter() - started
        # weak: the counting over-approximation held, so the capped
        # check answers "instantiable" with the candidate pool.
        assert result is not None
        assert checker.last_capped and checker.last_weak_fallback
        assert checker.last_steps <= budget + 1
        assert stats.match_caps == 1
        assert stats.weak_fallbacks == 1
        assert elapsed < 1.0

    def test_small_adversarial_shape_refutes_exactly(self):
        """N=4 of the same shape is within any sane budget: both
        policies agree with the exact (unbounded) answer."""
        for policy in (MatchCapPolicy.GRANT, MatchCapPolicy.WEAK):
            checker, stats, signature = adversarial_setup(
                4, DimmunixConfig().match_step_budget, policy
            )
            assert checker.would_instantiate(signature) is None
            assert not checker.last_capped
            assert stats.match_caps == 0

    def test_zero_budget_is_unbounded(self):
        checker, stats, signature = adversarial_setup(
            8, 0, MatchCapPolicy.GRANT
        )
        assert checker.would_instantiate(signature) is None
        assert not checker.last_capped
        # The exact refutation needs far more steps than the default
        # budget — proof the budget is what bounds the other tests.
        assert stats.matching_steps > DimmunixConfig().match_step_budget

    def test_policies_agree_on_real_signatures(self):
        """On 2–3-entry signatures the budget never engages, so both
        policies are byte-for-byte the exact matcher."""
        cases = []
        for policy in (MatchCapPolicy.GRANT, MatchCapPolicy.WEAK):
            table = PositionTable()
            checker = InstantiationChecker(
                table, DimmunixStats(), policy=policy
            )
            outcomes = []
            thread_a, thread_b = ThreadNode("a"), ThreadNode("b")
            lock_x, lock_y = LockNode("x"), LockNode("y")
            for line, thread, lock in (
                (1, thread_a, lock_x),
                (2, thread_b, lock_y),
                (1, thread_b, lock_y),
            ):
                position = table.intern(CallStack.single("av.py", line))
                position.queue.add(thread, lock)
                outcomes.append(
                    (
                        checker.would_instantiate(make_signature(1, 2))
                        is not None,
                        checker.would_instantiate(make_signature(1, 2, 3))
                        is not None,
                        checker.last_capped,
                    )
                )
            cases.append(outcomes)
        assert cases[0] == cases[1]
        assert all(not capped for run in cases for *_x, capped in run)

    def test_weak_overapproximates_exact(self):
        """Whenever the exact search finds a witness, the weak counting
        check must also say instantiable (never the reverse direction)."""
        setup = Setup()
        sig = make_signature(1, 2)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        assert not setup.checker.weak_instantiable(sig)
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        assert setup.checker.would_instantiate(sig) is not None
        assert setup.checker.weak_instantiable(sig)

    def test_weak_refutes_counting_violations(self):
        checker, _stats, signature = adversarial_setup(
            12, 0, MatchCapPolicy.WEAK
        )
        # The adversarial shape passes counting by construction …
        assert checker.weak_instantiable(signature)
        # … but a signature needing more entries than the queue holds
        # fails the per-slot occupancy bound.
        oversized = make_collapsed_signature(ADVERSARIAL_SITE, 200)
        assert not checker.weak_instantiable(oversized)


# ----------------------------------------------------------------------
# engine wiring: MatchCappedEvent + verdicts under both policies
# ----------------------------------------------------------------------

def engine_with_adversarial_history(entries, policy, budget):
    """A core whose history holds the collapsed-position signature and
    whose position queue carries the counting-defeating occupancy."""
    core = DimmunixCore(
        DimmunixConfig(
            match_step_budget=budget,
            match_cap_policy=policy,
            yield_timeout=None,
        )
    )
    signature = make_collapsed_signature(ADVERSARIAL_SITE, entries)
    core.history.add(signature)
    position = core.positions.intern(CallStack.single(*ADVERSARIAL_SITE))
    # deficiency=2: the request below pretend-grants the requester's own
    # entry into this queue, raising the max matching by one — the shape
    # must stay short of instantiable even then.
    pairs = hard_matching_entries(entries, deficiency=2)
    threads = [
        core.register_thread(f"t{i}")
        for i in range(max(t for t, _ in pairs) + 1)
    ]
    locks = [
        core.register_lock(f"l{i}")
        for i in range(max(l for _, l in pairs) + 1)
    ]
    for thread_index, lock_index in pairs:
        position.queue.add(threads[thread_index], locks[lock_index])
    return core, signature


class TestEngineCapWiring:
    def test_grant_proceeds_and_announces_the_cap(self):
        core, signature = engine_with_adversarial_history(
            12, MatchCapPolicy.GRANT, budget=500
        )
        log = EventLog()
        core.events.subscribe(log, kinds=("match-capped",))
        requester = core.register_thread("requester")
        lock = core.register_lock("requested")
        result = core.request(
            requester, lock, CallStack.single(*ADVERSARIAL_SITE)
        )
        assert result.verdict is RequestVerdict.PROCEED
        events = log.of_kind("match-capped")
        assert len(events) == 1
        event = events[0]
        assert event.policy == "grant"
        assert not event.instantiable
        assert event.thread == "requester"
        assert event.steps >= 500
        assert event.signature == signature
        assert core.stats.match_caps == 1
        assert core.stats.weak_fallbacks == 0

    def test_weak_parks_and_announces_the_cap(self):
        core, signature = engine_with_adversarial_history(
            12, MatchCapPolicy.WEAK, budget=500
        )
        log = EventLog()
        core.events.subscribe(log, kinds=("match-capped", "yield"))
        requester = core.register_thread("requester")
        lock = core.register_lock("requested")
        result = core.request(
            requester, lock, CallStack.single(*ADVERSARIAL_SITE)
        )
        assert result.verdict is RequestVerdict.YIELD
        assert result.yield_on == signature
        capped = log.of_kind("match-capped")
        assert len(capped) == 1
        assert capped[0].policy == "weak"
        assert capped[0].instantiable
        assert log.of_kind("yield")  # the park itself is announced too
        assert core.stats.match_caps == 1
        assert core.stats.weak_fallbacks == 1
        # The conservative witness pool excludes the requester itself.
        assert all(
            witness_thread is not requester
            for witness_thread, _lock in requester.yield_witnesses
        )

    @pytest.mark.parametrize(
        "policy", [MatchCapPolicy.GRANT, MatchCapPolicy.WEAK]
    )
    def test_starvation_recheck_is_bounded_too(self, policy):
        """The starvation-relief recheck runs the same budgeted matcher:
        a capped starvation-signature recheck emits the event instead of
        wedging the request."""
        core, _signature = engine_with_adversarial_history(
            12, policy, budget=500
        )
        starvation = DeadlockSignature(
            make_collapsed_signature(ADVERSARIAL_SITE, 12).entries,
            kind="starvation",
        )
        core.history.add(starvation)
        log = EventLog()
        core.events.subscribe(log, kinds=("match-capped",))
        requester = core.register_thread("requester")
        lock = core.register_lock("requested")
        started = time.perf_counter()
        core.request(requester, lock, CallStack.single(*ADVERSARIAL_SITE))
        elapsed = time.perf_counter() - started
        # Both the override recheck and the avoidance check announced.
        assert len(log.of_kind("match-capped")) >= 1
        assert core.stats.match_caps >= 1
        assert elapsed < 1.0
