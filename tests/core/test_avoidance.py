"""Unit tests for signature instantiation matching."""

from repro.core.avoidance import InstantiationChecker
from repro.core.callstack import CallStack
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.core.stats import DimmunixStats


def make_signature(*outer_lines):
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("av.py", line),
                CallStack.single("av.py", line + 100),
            )
            for line in outer_lines
        ]
    )


class Setup:
    def __init__(self):
        self.table = PositionTable()
        self.stats = DimmunixStats()
        self.checker = InstantiationChecker(self.table, self.stats)

    def occupy(self, line, thread, lock):
        position = self.table.intern(CallStack.single("av.py", line))
        position.queue.add(thread, lock)
        return position


class TestWouldInstantiate:
    def test_full_occupancy_matches(self):
        setup = Setup()
        sig = make_signature(1, 2)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses is not None
        assert len(witnesses) == 2

    def test_missing_position_no_match(self):
        setup = Setup()
        sig = make_signature(1, 2)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        assert setup.checker.would_instantiate(sig) is None

    def test_empty_queue_no_match(self):
        setup = Setup()
        sig = make_signature(1, 2)
        thread, lock = ThreadNode("a"), LockNode("x")
        position = setup.occupy(1, thread, lock)
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        position.queue.remove(thread, lock)
        assert setup.checker.would_instantiate(sig) is None

    def test_same_thread_cannot_fill_two_roles(self):
        """Distinct threads are required: one thread at both positions is
        not a deadlock (it would be a self-deadlock, a different bug)."""
        setup = Setup()
        sig = make_signature(1, 2)
        thread = ThreadNode("a")
        setup.occupy(1, thread, LockNode("x"))
        setup.occupy(2, thread, LockNode("y"))
        assert setup.checker.would_instantiate(sig) is None

    def test_same_lock_cannot_fill_two_roles(self):
        setup = Setup()
        sig = make_signature(1, 2)
        lock = LockNode("x")
        setup.occupy(1, ThreadNode("a"), lock)
        setup.occupy(2, ThreadNode("b"), lock)
        assert setup.checker.would_instantiate(sig) is None

    def test_backtracking_finds_valid_assignment(self):
        """Greedy would fail: thread A is in both queues; matching must
        route A to one slot and B to the other."""
        setup = Setup()
        sig = make_signature(1, 2)
        thread_a, thread_b = ThreadNode("a"), ThreadNode("b")
        lock_x, lock_y = LockNode("x"), LockNode("y")
        # Queue at 1: most-recent-first iteration sees (a, x) first.
        setup.occupy(1, thread_b, lock_y)
        setup.occupy(1, thread_a, lock_x)
        # Queue at 2: only (a, x) — so slot 1 must pick (b, y).
        setup.occupy(2, thread_a, lock_x)
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses is not None
        chosen = dict((t.name, l.name) for t, l in witnesses)
        assert chosen == {"b": "y", "a": "x"}

    def test_repeated_position_needs_two_occupants(self):
        """A signature may have the same outer position twice (two threads
        deadlocking through one site); instantiation then needs two
        distinct occupants of that one queue."""
        setup = Setup()
        sig = make_signature(7, 7)
        thread_a = ThreadNode("a")
        setup.occupy(7, thread_a, LockNode("x"))
        assert setup.checker.would_instantiate(sig) is None
        setup.occupy(7, ThreadNode("b"), LockNode("y"))
        assert setup.checker.would_instantiate(sig) is not None

    def test_three_entry_signature(self):
        setup = Setup()
        sig = make_signature(1, 2, 3)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        assert setup.checker.would_instantiate(sig) is None
        setup.occupy(3, ThreadNode("c"), LockNode("z"))
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses is not None and len(witnesses) == 3

    def test_witnesses_in_entry_order(self):
        setup = Setup()
        sig = make_signature(1, 2)
        thread_a, lock_x = ThreadNode("a"), LockNode("x")
        thread_b, lock_y = ThreadNode("b"), LockNode("y")
        setup.occupy(1, thread_a, lock_x)
        setup.occupy(2, thread_b, lock_y)
        witnesses = setup.checker.would_instantiate(sig)
        assert witnesses[0] == (thread_a, lock_x)
        assert witnesses[1] == (thread_b, lock_y)

    def test_stats_counted(self):
        setup = Setup()
        sig = make_signature(1, 2)
        setup.occupy(1, ThreadNode("a"), LockNode("x"))
        setup.occupy(2, ThreadNode("b"), LockNode("y"))
        setup.checker.would_instantiate(sig)
        assert setup.stats.instantiation_checks == 1
        assert setup.stats.matching_steps >= 2
