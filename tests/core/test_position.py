"""Unit tests for positions, queues, and the free-list discipline."""

from repro.core.callstack import CallStack
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable


def make_table_and_pos(line=10):
    table = PositionTable()
    return table, table.intern(CallStack.single("a.py", line))


class TestPositionTable:
    def test_intern_is_idempotent(self):
        table = PositionTable()
        a = table.intern(CallStack.single("a.py", 10))
        b = table.intern(CallStack.single("a.py", 10))
        assert a is b
        assert len(table) == 1

    def test_distinct_lines_distinct_positions(self):
        table = PositionTable()
        a = table.intern(CallStack.single("a.py", 10))
        b = table.intern(CallStack.single("a.py", 11))
        assert a is not b
        assert len(table) == 2

    def test_get_by_key(self):
        table, pos = make_table_and_pos()
        assert table.get(pos.key) is pos
        assert table.get((("missing.py", 1),)) is None

    def test_iteration_in_creation_order(self):
        table = PositionTable()
        first = table.intern(CallStack.single("a.py", 1))
        second = table.intern(CallStack.single("a.py", 2))
        assert list(table) == [first, second]

    def test_indices_are_sequential(self):
        table = PositionTable()
        positions = [
            table.intern(CallStack.single("a.py", line)) for line in range(5)
        ]
        assert [p.index for p in positions] == list(range(5))


class TestPositionQueue:
    def test_add_then_remove(self):
        _table, pos = make_table_and_pos()
        thread, lock = ThreadNode("t"), LockNode("l")
        pos.queue.add(thread, lock)
        assert len(pos.queue) == 1
        assert pos.queue.contains_thread(thread)
        assert pos.queue.remove(thread, lock)
        assert len(pos.queue) == 0

    def test_remove_missing_returns_false(self):
        _table, pos = make_table_and_pos()
        assert not pos.queue.remove(ThreadNode(), LockNode())

    def test_entries_most_recent_first(self):
        _table, pos = make_table_and_pos()
        t1, l1 = ThreadNode("t1"), LockNode("l1")
        t2, l2 = ThreadNode("t2"), LockNode("l2")
        pos.queue.add(t1, l1)
        pos.queue.add(t2, l2)
        assert list(pos.queue.entries()) == [(t2, l2), (t1, l1)]

    def test_free_list_reuse(self):
        """The paper's second queue: removed cells are reused, not freed."""
        _table, pos = make_table_and_pos()
        thread, lock = ThreadNode(), LockNode()
        for _ in range(100):
            pos.queue.add(thread, lock)
            pos.queue.remove(thread, lock)
        assert pos.queue.allocations == 1
        assert pos.queue.reuses == 99

    def test_free_list_cells_drop_references(self):
        _table, pos = make_table_and_pos()
        thread, lock = ThreadNode(), LockNode()
        pos.queue.add(thread, lock)
        pos.queue.remove(thread, lock)
        cell = pos.queue._free
        assert cell is not None
        assert cell.thread is None and cell.lock is None

    def test_removing_middle_entry(self):
        _table, pos = make_table_and_pos()
        pairs = [(ThreadNode(), LockNode()) for _ in range(3)]
        for thread, lock in pairs:
            pos.queue.add(thread, lock)
        middle_thread, middle_lock = pairs[1]
        assert pos.queue.remove(middle_thread, middle_lock)
        remaining = {t for t, _ in pos.queue.entries()}
        assert middle_thread not in remaining
        assert len(pos.queue) == 2

    def test_duplicate_entries_removed_one_at_a_time(self):
        _table, pos = make_table_and_pos()
        thread, lock = ThreadNode(), LockNode()
        pos.queue.add(thread, lock)
        pos.queue.add(thread, lock)
        assert pos.queue.remove(thread, lock)
        assert len(pos.queue) == 1
        assert pos.queue.remove(thread, lock)
        assert len(pos.queue) == 0

    def test_allocation_counters_visible_at_table_level(self):
        table = PositionTable()
        pos_a = table.intern(CallStack.single("a.py", 1))
        pos_b = table.intern(CallStack.single("a.py", 2))
        thread, lock = ThreadNode(), LockNode()
        pos_a.queue.add(thread, lock)
        pos_b.queue.add(thread, lock)
        pos_b.queue.remove(thread, lock)
        pos_b.queue.add(thread, lock)
        assert table.total_queue_allocations() == 2
        assert table.total_queue_reuses() == 1

    def test_free_list_length(self):
        _table, pos = make_table_and_pos()
        entries = [(ThreadNode(), LockNode()) for _ in range(4)]
        for thread, lock in entries:
            pos.queue.add(thread, lock)
        for thread, lock in entries:
            pos.queue.remove(thread, lock)
        assert pos.queue.free_list_length() == 4
