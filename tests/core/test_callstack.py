"""Unit tests for frames and call stacks."""

import pytest

from repro.core.callstack import EMPTY_STACK, CallStack, Frame


class TestFrame:
    def test_key_ignores_function_name(self):
        a = Frame("file.py", 10, "f")
        b = Frame("file.py", 10, "g")
        assert a.key() == b.key()

    def test_json_roundtrip(self):
        frame = Frame("app.py", 42, "handler")
        assert Frame.from_json(frame.to_json()) == frame

    def test_str_contains_location(self):
        text = str(Frame("app.py", 42, "handler"))
        assert "app.py:42" in text
        assert "handler" in text


class TestCallStack:
    def test_top_is_innermost(self):
        stack = CallStack([Frame("a.py", 1, "inner"), Frame("b.py", 2, "outer")])
        assert stack.top().function == "inner"

    def test_top_of_empty_raises(self):
        with pytest.raises(IndexError):
            EMPTY_STACK.top()

    def test_truncated_keeps_innermost(self):
        stack = CallStack(
            [Frame("a.py", 1), Frame("b.py", 2), Frame("c.py", 3)]
        )
        truncated = stack.truncated(1)
        assert truncated.depth == 1
        assert truncated.top().file == "a.py"

    def test_truncated_deeper_than_stack_is_identity(self):
        stack = CallStack([Frame("a.py", 1)])
        assert stack.truncated(5) is stack

    def test_truncated_zero_raises(self):
        with pytest.raises(ValueError):
            CallStack([Frame("a.py", 1)]).truncated(0)

    def test_equality_by_position_not_function(self):
        a = CallStack([Frame("a.py", 1, "f")])
        b = CallStack([Frame("a.py", 1, "other_name")])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_line(self):
        assert CallStack([Frame("a.py", 1)]) != CallStack([Frame("a.py", 2)])

    def test_json_roundtrip(self):
        stack = CallStack([Frame("a.py", 1, "f"), Frame("b.py", 2, "g")])
        assert CallStack.from_json(stack.to_json()) == stack

    def test_single_constructor(self):
        stack = CallStack.single("x.py", 7, "go")
        assert stack.depth == 1
        assert stack.key() == (("x.py", 7),)

    def test_iteration_order(self):
        frames = [Frame("a.py", 1), Frame("b.py", 2)]
        assert list(CallStack(frames)) == frames

    def test_len(self):
        assert len(CallStack.single("a.py", 1)) == 1
        assert len(EMPTY_STACK) == 0
