"""Unit tests for the stats counters."""

from repro.core.stats import DimmunixStats, MemoryFootprint


class TestDimmunixStats:
    def test_snapshot_is_plain_dict(self):
        stats = DimmunixStats()
        stats.requests = 5
        snap = stats.snapshot()
        assert snap["requests"] == 5
        snap["requests"] = 99
        assert stats.requests == 5

    def test_merge_accumulates(self):
        a = DimmunixStats(requests=1, yields=2)
        b = DimmunixStats(requests=10, deadlocks_detected=3)
        a.merge(b)
        assert a.requests == 11
        assert a.yields == 2
        assert a.deadlocks_detected == 3

    def test_reset(self):
        stats = DimmunixStats(requests=7, releases=3)
        stats.reset()
        assert stats.requests == 0
        assert stats.releases == 0

    def test_all_fields_default_zero(self):
        assert all(v == 0 for v in DimmunixStats().snapshot().values())


class TestMemoryFootprint:
    def test_as_dict_includes_extras(self):
        footprint = MemoryFootprint(positions=3, bytes_total=100)
        footprint.extra["special"] = 42
        data = footprint.as_dict()
        assert data["positions"] == 3
        assert data["special"] == 42
