"""Unit tests for the cycle detectors."""

from repro.core.callstack import CallStack
from repro.core.cycle import (
    find_any_lock_cycle,
    find_extended_cycle,
    find_lock_cycle,
)
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable
from repro.core.rag import ResourceAllocationGraph


def stack(line):
    return CallStack.single("cycle.py", line)


class Fixture:
    """A RAG with helpers to wire edges concisely."""

    def __init__(self, threads=4, locks=4):
        self.rag = ResourceAllocationGraph()
        self.table = PositionTable()
        self.threads = [ThreadNode(f"t{i}") for i in range(threads)]
        self.locks = [LockNode(f"l{i}") for i in range(locks)]
        for thread in self.threads:
            self.rag.add_thread(thread)
        for lock in self.locks:
            self.rag.add_lock(lock)

    def hold(self, t, l, line=1):
        s = stack(line)
        self.rag.set_hold(self.threads[t], self.locks[l], self.table.intern(s), s)

    def request(self, t, l, line=2):
        s = stack(line)
        self.rag.set_request(self.threads[t], self.locks[l], self.table.intern(s), s)


class TestFindLockCycle:
    def test_two_thread_cycle(self):
        fx = Fixture()
        fx.hold(0, 0)
        fx.hold(1, 1)
        fx.request(1, 0)
        fx.request(0, 1)  # closes the cycle
        cycle = find_lock_cycle(fx.threads[0], fx.locks[1])
        assert cycle is not None
        assert len(cycle) == 2
        assert set(cycle.threads) == {fx.threads[0], fx.threads[1]}

    def test_no_cycle_when_lock_free(self):
        fx = Fixture()
        fx.hold(0, 0)
        fx.request(0, 1)
        assert find_lock_cycle(fx.threads[0], fx.locks[1]) is None

    def test_chain_without_cycle(self):
        fx = Fixture()
        fx.hold(1, 1)
        fx.hold(2, 2)
        fx.request(1, 2)
        # t0 requests l1 (held by t1, which waits on l2 held by idle t2).
        fx.request(0, 1)
        assert find_lock_cycle(fx.threads[0], fx.locks[1]) is None

    def test_three_thread_cycle(self):
        fx = Fixture()
        fx.hold(0, 0)
        fx.hold(1, 1)
        fx.hold(2, 2)
        fx.request(0, 1)
        fx.request(1, 2)
        fx.request(2, 0)
        cycle = find_lock_cycle(fx.threads[2], fx.locks[0])
        assert cycle is not None
        assert len(cycle) == 3

    def test_self_cycle_single_thread(self):
        """A thread re-requesting its own (non-reentrant) lock."""
        fx = Fixture()
        fx.hold(0, 0)
        fx.request(0, 0)
        cycle = find_lock_cycle(fx.threads[0], fx.locks[0])
        assert cycle is not None
        assert len(cycle) == 1

    def test_cycle_not_through_requester_is_ignored(self):
        fx = Fixture()
        # t1 <-> t2 deadlock exists; t0 requests into it.
        fx.hold(1, 1)
        fx.hold(2, 2)
        fx.request(1, 2)
        fx.request(2, 1)
        fx.request(0, 1)
        assert find_lock_cycle(fx.threads[0], fx.locks[1]) is None
        # ... but the global scan still reports it.
        assert find_any_lock_cycle(fx.threads) is not None

    def test_held_lock_of_convention(self):
        fx = Fixture()
        fx.hold(0, 0)
        fx.hold(1, 1)
        fx.request(1, 0)
        fx.request(0, 1)
        cycle = find_lock_cycle(fx.threads[0], fx.locks[1])
        for index, thread in enumerate(cycle.threads):
            held = cycle.held_lock_of(index)
            assert held.owner is thread


class TestFindExtendedCycle:
    def test_yield_edge_cycle_is_starvation(self):
        fx = Fixture()
        # t0 holds l0, yields on a signature whose witness is t1;
        # t1 requests l0 -> cycle through the yield edge.
        fx.hold(0, 0)
        fx.rag.set_yield(fx.threads[0], object(), [(fx.threads[1], fx.locks[1])])
        fx.hold(1, 1)
        fx.request(1, 0)
        cycle = find_extended_cycle(fx.threads[1])
        assert cycle is not None
        assert cycle.is_starvation
        assert fx.threads[0] in cycle.yielders

    def test_no_cycle_without_closing_edge(self):
        fx = Fixture()
        fx.hold(0, 0)
        fx.rag.set_yield(fx.threads[0], object(), [(fx.threads[1], fx.locks[1])])
        fx.hold(1, 1)
        assert find_extended_cycle(fx.threads[1]) is None

    def test_pure_lock_cycle_reported_not_starvation(self):
        fx = Fixture()
        fx.hold(0, 0)
        fx.hold(1, 1)
        fx.request(1, 0)
        fx.request(0, 1)
        cycle = find_extended_cycle(fx.threads[0])
        assert cycle is not None
        assert not cycle.is_starvation

    def test_branching_yield_witnesses(self):
        fx = Fixture()
        # t0 yields on two witnesses; only the second closes a cycle.
        fx.hold(0, 0)
        fx.rag.set_yield(
            fx.threads[0],
            object(),
            [(fx.threads[2], fx.locks[2]), (fx.threads[1], fx.locks[1])],
        )
        fx.hold(1, 1)
        fx.request(1, 0)
        cycle = find_extended_cycle(fx.threads[1])
        assert cycle is not None and cycle.is_starvation

    def test_long_chain_does_not_recurse(self):
        """600 threads in a chain: must not hit the recursion limit."""
        count = 600
        threads = [ThreadNode(f"c{i}") for i in range(count)]
        locks = [LockNode(f"cl{i}") for i in range(count)]
        rag = ResourceAllocationGraph()
        table = PositionTable()
        s = stack(1)
        pos = table.intern(s)
        for i in range(count):
            rag.add_thread(threads[i])
            rag.add_lock(locks[i])
        for i in range(count):
            rag.set_hold(threads[i], locks[i], pos, s)
        for i in range(count - 1):
            rag.set_request(threads[i], locks[i + 1], pos, s)
        rag.set_request(threads[count - 1], locks[0], pos, s)
        cycle = find_extended_cycle(threads[0])
        assert cycle is not None
        assert len(cycle.threads) == count
