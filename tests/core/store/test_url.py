"""DSN parsing for history backends."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.store import open_store
from repro.core.store.url import (
    HistoryUrlError,
    format_history_url,
    parse_history_url,
)


class TestParse:
    def test_mem(self):
        url = parse_history_url("mem://")
        assert url.scheme == "mem"
        assert url.path is None
        assert not url.persistent

    def test_jsonl_absolute(self):
        url = parse_history_url("jsonl:///var/dimmunix/a.history")
        assert url.scheme == "jsonl"
        assert url.path == Path("/var/dimmunix/a.history")
        assert url.persistent

    def test_jsonl_relative(self):
        url = parse_history_url("jsonl://histories/a.history")
        assert url.path == Path("histories/a.history")

    def test_sqlite(self):
        url = parse_history_url("sqlite:///data/history.db")
        assert url.scheme == "sqlite"
        assert url.path == Path("/data/history.db")

    def test_bare_path_means_jsonl(self):
        url = parse_history_url("/data/system_server.history")
        assert url.scheme == "jsonl"
        assert url.path == Path("/data/system_server.history")

    def test_path_object_means_jsonl(self):
        url = parse_history_url(Path("/data/a.history"))
        assert url.scheme == "jsonl"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(HistoryUrlError, match="unknown history backend"):
            parse_history_url("redis://localhost/0")

    def test_mem_with_path_rejected(self):
        with pytest.raises(HistoryUrlError, match="takes no path"):
            parse_history_url("mem:///tmp/x")

    def test_file_scheme_without_path_rejected(self):
        with pytest.raises(HistoryUrlError, match="needs a file path"):
            parse_history_url("sqlite://")

    def test_empty_rejected(self):
        with pytest.raises(HistoryUrlError):
            parse_history_url("")


class TestFormat:
    def test_round_trip(self):
        for text in (
            "mem://",
            "jsonl:///var/a.history",
            "sqlite:///var/h.db",
        ):
            parsed = parse_history_url(text)
            assert str(parsed) == text
            assert parse_history_url(str(parsed)) == parsed

    def test_format_helper(self):
        assert format_history_url("mem", None) == "mem://"
        assert (
            format_history_url("jsonl", "/a/b.history")
            == "jsonl:///a/b.history"
        )


class TestDurability:
    def test_default_is_unset(self):
        assert parse_history_url("sqlite:///var/h.db").durability is None

    def test_parse_sqlite(self):
        url = parse_history_url("sqlite:///var/h.db?durability=full")
        assert url.scheme == "sqlite"
        assert url.path == Path("/var/h.db")
        assert url.durability == "full"

    def test_parse_shard_alongside_shards(self):
        url = parse_history_url("shard:///var/pool?shards=4&durability=full")
        assert url.shards == 4
        assert url.durability == "full"

    def test_round_trip(self):
        for text in (
            "sqlite:///var/h.db?durability=full",
            "shard:///var/pool?shards=4&durability=full",
        ):
            parsed = parse_history_url(text)
            assert str(parsed) == text
            assert parse_history_url(str(parsed)) == parsed

    def test_junk_value_rejected(self):
        with pytest.raises(HistoryUrlError, match="durability must be"):
            parse_history_url("sqlite:///var/h.db?durability=paranoid")

    def test_shards_is_not_a_sqlite_parameter(self):
        with pytest.raises(
            HistoryUrlError, match="unknown sqlite:// parameter"
        ):
            parse_history_url("sqlite:///var/h.db?shards=4")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(
            HistoryUrlError, match="unknown shard:// parameter"
        ):
            parse_history_url("shard:///var/pool?wal=off")

    def test_open_store_passes_durability_through(self, tmp_path):
        store = open_store(f"sqlite://{tmp_path / 'a.db'}?durability=full")
        assert store.durability == "full"
        # The knob must actually land: synchronous=FULL is 2.
        assert store._conn.execute("PRAGMA synchronous").fetchone()[0] == 2
        assert store.url.endswith("?durability=full")
        url = store.url
        store.close()
        again = open_store(url)
        assert again.durability == "full"
        assert again.url == url
        again.close()

    def test_normal_durability_keeps_a_bare_url(self, tmp_path):
        store = open_store(f"sqlite://{tmp_path / 'a.db'}")
        assert store.durability == "normal"
        assert "?" not in store.url
        store.close()


class TestOpenStore:
    def test_open_each_backend(self, tmp_path):
        mem = open_store("mem://")
        assert mem.scheme == "mem"
        jsonl = open_store(f"jsonl://{tmp_path / 'a.history'}")
        assert jsonl.scheme == "jsonl"
        sqlite = open_store(f"sqlite://{tmp_path / 'a.db'}")
        assert sqlite.scheme == "sqlite"
        sqlite.close()

    def test_store_urls_are_reopenable(self, tmp_path):
        store = open_store(f"sqlite://{tmp_path / 'a.db'}")
        url = store.url
        store.close()
        again = open_store(url)
        assert again.url == url
        again.close()


class TestConfigIntegration:
    def test_resolved_url_from_legacy_path(self, tmp_path):
        from repro.config import DimmunixConfig

        path = tmp_path / "h.history"
        config = DimmunixConfig(history_path=path)
        assert config.resolved_history_url() == f"jsonl://{path}"
        assert config.history_location() == path

    def test_resolved_url_direct(self, tmp_path):
        from repro.config import DimmunixConfig

        url = f"sqlite://{tmp_path / 'h.db'}"
        config = DimmunixConfig(history_url=url)
        assert config.resolved_history_url() == url
        assert config.history_location() == tmp_path / "h.db"

    def test_no_history_resolves_none(self):
        from repro.config import DimmunixConfig

        config = DimmunixConfig()
        assert config.resolved_history_url() is None
        assert config.history_location() is None

    def test_both_path_and_url_rejected(self, tmp_path):
        from repro.config import DimmunixConfig

        with pytest.raises(ValueError, match="not both"):
            DimmunixConfig(
                history_path=tmp_path / "a",
                history_url="mem://",
            )

    def test_bad_url_rejected_at_config_time(self):
        from repro.config import DimmunixConfig

        with pytest.raises(HistoryUrlError):
            DimmunixConfig(history_url="redis://nope")

    def test_evolve_between_spellings(self, tmp_path):
        from repro.config import DimmunixConfig

        legacy = DimmunixConfig(history_path=tmp_path / "h.history")
        modern = legacy.evolve(
            history_path=None, history_url=f"sqlite://{tmp_path / 'h.db'}"
        )
        assert modern.resolved_history_url().startswith("sqlite://")
