"""The HistoryStore conformance suite.

One behavioural contract, five backends: every test in
``TestStoreConformance`` runs against ``mem://``, ``jsonl://``,
``sqlite://``, ``shard://``, and ``tcp://`` (the latter against an
in-process :class:`~repro.fleet.server.FleetServer`) via the
parameterised ``backend`` fixture. A backend that passes is a drop-in
replacement on the engine's avoidance hot path and in every tool.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.callstack import CallStack
from repro.core.history import History
from repro.core.signature import (
    KIND_STARVATION,
    DeadlockSignature,
    SignatureEntry,
)
from repro.core.store import (
    HistoryFullError,
    JsonlStore,
    MemoryStore,
    SqliteStore,
    open_store,
    parse_history_url,
)

FIXTURE = Path(__file__).parent.parent.parent / "fixtures" / "legacy_v1.history"


def sig(outer_a=1, outer_b=3, inner_a=2, inner_b=4, kind="deadlock"):
    return DeadlockSignature(
        [
            SignatureEntry(
                CallStack.single("h.py", outer_a),
                CallStack.single("h.py", inner_a),
            ),
            SignatureEntry(
                CallStack.single("h.py", outer_b),
                CallStack.single("h.py", inner_b),
            ),
        ],
        kind=kind,
    )


class Backend:
    """One parameterised backend: build fresh stores, reopen them."""

    def __init__(self, scheme: str, tmp_path: Path) -> None:
        self.scheme = scheme
        self.tmp_path = tmp_path
        self._counter = 0
        self._last_target: Path | None = None
        self._servers: list = []

    @property
    def persistent(self) -> bool:
        return self.scheme != "mem"

    def dsn_at(self, directory: Path) -> str | None:
        """A DSN whose durable state lives under ``directory``, or
        ``None`` for backends without a local directory of their own."""
        if self.scheme == "jsonl":
            return f"jsonl://{directory / 'h.history'}"
        if self.scheme == "sqlite":
            return f"sqlite://{directory / 'h.db'}"
        if self.scheme == "shard":
            return f"shard://{directory / 'pool'}?shards=2"
        return None  # mem:// and remote have no local directory

    def _start_server(self):
        from repro.fleet.server import FleetServer

        backing = open_store(
            f"sqlite://{self.tmp_path / f'server{self._counter}.db'}",
            max_signatures=65536,
        )
        server = FleetServer(backing, port=0)
        server.start_background()
        self._servers.append(server)
        return server

    def fresh(self, max_signatures: int = 4096):
        """A store on a new, empty location."""
        self._counter += 1
        if self.scheme == "mem":
            self._last_target = None
            return MemoryStore(max_signatures=max_signatures)
        if self.scheme == "remote":
            from repro.fleet.remote import RemoteStore

            server = self._start_server()
            return RemoteStore(
                server.host,
                server.port,
                max_signatures=max_signatures,
                spill_path=self.tmp_path / f"spill{self._counter}.history",
            )
        if self.scheme == "shard":
            self._last_target = self.tmp_path / f"s{self._counter}.pool"
            return open_store(
                f"shard://{self._last_target}?shards=2",
                max_signatures=max_signatures,
            )
        suffix = "history" if self.scheme == "jsonl" else "db"
        self._last_target = self.tmp_path / f"s{self._counter}.{suffix}"
        return open_store(
            f"{self.scheme}://{self._last_target}",
            max_signatures=max_signatures,
        )

    def reopen(self, store, max_signatures: int = 4096):
        """Close ``store`` and open the same durable location again.

        For ``mem://`` the round trip goes through a legacy snapshot —
        the only durability an in-memory store has. For ``tcp://`` a new
        client joins the same server: durability lives fleet-side.
        """
        if self.scheme == "mem":
            snapshot = self.tmp_path / f"mem-snap-{self._counter}.history"
            store.snapshot_to(snapshot)
            store.close()
            reloaded = MemoryStore(max_signatures=max_signatures)
            reloaded.merge_from(
                History.load(snapshot, max_signatures=max_signatures)
            )
            reloaded.mark_clean()
            return reloaded
        if self.scheme == "remote":
            from repro.fleet.remote import RemoteStore

            parsed = parse_history_url(store.url)
            spill = store.spill_path
            store.close()
            return RemoteStore(
                parsed.host,
                parsed.port,
                max_signatures=max_signatures,
                spill_path=spill,
            )
        location = store.location
        store.close()
        return open_store(
            f"{self.scheme}://{location}", max_signatures=max_signatures
        )

    def cleanup(self) -> None:
        for server in self._servers:
            server.stop()
            server.store.close()


@pytest.fixture(params=["mem", "jsonl", "sqlite", "shard", "remote"])
def backend(request, tmp_path) -> Backend:
    built = Backend(request.param, tmp_path)
    yield built
    built.cleanup()


class TestStoreConformance:
    def test_add_and_contains(self, backend):
        store = backend.fresh()
        signature = sig()
        assert store.add(signature)
        assert store.contains(signature)
        assert signature in store
        assert len(store) == 1

    def test_duplicate_rejected(self, backend):
        store = backend.fresh()
        assert store.add(sig())
        assert not store.add(sig())
        assert len(store) == 1
        assert store.pending_count == 1  # the duplicate added nothing

    def test_capacity_enforced(self, backend):
        store = backend.fresh(max_signatures=2)
        store.add(sig(outer_a=1))
        store.add(sig(outer_a=2))
        with pytest.raises(HistoryFullError):
            store.add(sig(outer_a=3))

    def test_position_lookup(self, backend):
        store = backend.fresh()
        signature = sig(outer_a=10, outer_b=20)
        store.add(signature)
        assert store.signatures_at((("h.py", 10),)) == (signature,)
        assert store.signatures_at((("h.py", 20),)) == (signature,)
        assert store.signatures_at((("h.py", 2),)) == ()
        assert store.contains_position((("h.py", 10),))
        assert not store.contains_position((("h.py", 2),))

    def test_starvation_filtering(self, backend):
        store = backend.fresh()
        deadlock = sig(outer_a=10, outer_b=20)
        starvation = sig(outer_a=10, outer_b=30, kind=KIND_STARVATION)
        store.add(deadlock)
        store.add(starvation)
        at_10 = store.signatures_at((("h.py", 10),))
        assert set(at_10) == {deadlock, starvation}
        assert store.signatures_at(
            (("h.py", 10),), include_starvation=False
        ) == (deadlock,)
        assert store.starvation_signatures_at((("h.py", 10),)) == (
            starvation,
        )
        assert store.deadlock_count() == 1
        assert store.starvation_count() == 1

    def test_save_load_round_trip(self, backend):
        store = backend.fresh()
        store.add(sig(outer_a=1))
        store.add(sig(outer_a=5, kind=KIND_STARVATION))
        store.flush()
        reloaded = backend.reopen(store)
        assert len(reloaded) == 2
        assert reloaded.contains(sig(outer_a=1))
        assert reloaded.starvation_count() == 1
        # The index survives the round trip, not just the rows.
        assert reloaded.contains_position((("h.py", 1),))
        reloaded.close()

    def test_merge_from(self, backend):
        a = backend.fresh()
        a.add(sig(outer_a=1))
        b = backend.fresh()
        b.add(sig(outer_a=1))
        b.add(sig(outer_a=2))
        assert a.merge_from(b) == 1
        assert len(a) == 2

    def test_flush_is_idempotent(self, backend):
        store = backend.fresh()
        store.add(sig())
        # Durable backends report what they wrote; mem:// drains the
        # batch but wrote nothing durable, and must say so.
        assert store.flush() == (1 if backend.persistent else 0)
        assert store.flush() == 0
        assert not store.dirty

    def test_flush_into_missing_directory_creates_it(self, backend, tmp_path):
        deep = tmp_path / "not" / "yet" / "made"
        dsn = backend.dsn_at(deep)
        if dsn is None:
            pytest.skip(f"{backend.scheme} has no local directory")
        store = open_store(dsn)
        store.add(sig())
        assert store.flush() == 1
        assert deep.exists()
        assert store.location.exists()
        store.close()

    def test_purge_empties_backend(self, backend):
        store = backend.fresh()
        store.add(sig(outer_a=1))
        store.add(sig(outer_a=2))
        store.flush()
        assert store.purge() == 2
        assert len(store) == 0
        assert not store.contains_position((("h.py", 1),))
        if backend.persistent:
            reloaded = backend.reopen(store)
            assert len(reloaded) == 0
            reloaded.close()

    def test_iteration_preserves_insertion_order(self, backend):
        store = backend.fresh()
        first, second = sig(outer_a=1), sig(outer_a=2)
        store.add(first)
        store.add(second)
        assert list(store) == [first, second]

    def test_snapshot_to_legacy_format(self, backend, tmp_path):
        store = backend.fresh()
        store.add(sig(outer_a=7))
        target = tmp_path / "snapshot.history"
        store.snapshot_to(target)
        loaded = History.load(target)
        assert len(loaded) == 1
        assert loaded.contains(sig(outer_a=7))


class TestLegacyFileCompat:
    """Both durable backends load the committed legacy fixture unchanged."""

    def test_fixture_exists_and_is_legacy_format(self):
        header = json.loads(FIXTURE.read_text().splitlines()[0])
        assert header == {"format": "dimmunix-history", "version": 1}

    @pytest.mark.parametrize("scheme", ["jsonl", "sqlite"])
    def test_backends_load_legacy_fixture(self, scheme, tmp_path):
        # Work on a copy: sqlite:// upgrades the file in place.
        work = tmp_path / "legacy.history"
        work.write_bytes(FIXTURE.read_bytes())
        store = open_store(f"{scheme}://{work}")
        assert len(store) == 3
        assert store.deadlock_count() == 2
        assert store.starvation_count() == 1
        assert store.contains_position((("app.py", 10),))
        store.close()

    def test_jsonl_leaves_legacy_bytes_untouched(self, tmp_path):
        work = tmp_path / "legacy.history"
        work.write_bytes(FIXTURE.read_bytes())
        store = JsonlStore(work)
        store.close()
        assert work.read_bytes() == FIXTURE.read_bytes()

    def test_jsonl_append_stays_legacy_loadable(self, tmp_path):
        work = tmp_path / "legacy.history"
        work.write_bytes(FIXTURE.read_bytes())
        store = JsonlStore(work)
        store.add(sig(outer_a=99))
        store.flush()
        store.close()
        # Original bytes are a strict prefix: append-only persistence.
        assert work.read_bytes().startswith(FIXTURE.read_bytes())
        loaded = History.load(work)
        assert len(loaded) == 4

    def test_sqlite_upgrade_keeps_backup(self, tmp_path):
        work = tmp_path / "legacy.history"
        work.write_bytes(FIXTURE.read_bytes())
        store = SqliteStore(work)
        assert len(store) == 3
        store.close()
        backup = tmp_path / "legacy.history.pre-sqlite"
        assert backup.read_bytes() == FIXTURE.read_bytes()
        # The upgraded file is a real SQLite database now.
        assert work.read_bytes()[:16] == b"SQLite format 3\x00"
        # And reopening it finds everything without re-import.
        reopened = SqliteStore(work)
        assert len(reopened) == 3
        reopened.close()


class TestJsonlCrashTolerance:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "torn.history"
        store = JsonlStore(path)
        store.add(sig(outer_a=1))
        store.add(sig(outer_a=2))
        store.flush()
        store.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "deadlock", "entr')  # crash mid-append
        replayed = JsonlStore(path)
        assert len(replayed) == 2
        # The next flush compacts the torn tail away.
        replayed.add(sig(outer_a=3))
        replayed.flush()
        replayed.close()
        clean = History.load(path)
        assert len(clean) == 3

    def test_corrupt_middle_line_still_raises(self, tmp_path):
        from repro.errors import HistoryFormatError

        path = tmp_path / "corrupt.history"
        store = JsonlStore(path)
        store.add(sig(outer_a=1))
        store.flush()
        store.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "{garbage}")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(HistoryFormatError):
            JsonlStore(path)


class TestSqliteMultiProcess:
    """Two handles on one database — the cross-process sharing story."""

    def test_concurrent_writers_deduplicate(self, tmp_path):
        path = tmp_path / "shared.db"
        a = SqliteStore(path)
        b = SqliteStore(path)
        shared = sig(outer_a=1)
        a.add(shared)
        b.add(shared)
        b.add(sig(outer_a=2))
        a.flush()
        b.flush()
        fresh = SqliteStore(path)
        assert len(fresh) == 2  # the shared signature stored once
        fresh.close()
        a.close()
        b.close()

    def test_refresh_sees_other_writers(self, tmp_path):
        path = tmp_path / "shared.db"
        a = SqliteStore(path)
        b = SqliteStore(path)
        a.add(sig(outer_a=1))
        a.flush()
        assert not b.contains(sig(outer_a=1))
        assert b.refresh() == 1
        assert b.contains(sig(outer_a=1))
        assert b.contains_position((("h.py", 1),))
        a.close()
        b.close()


class TestProvenanceConformance:
    """Provenance is part of the store contract, same on every backend."""

    def _predicted(self, outer_a=1, age=0):
        signature = sig(outer_a=outer_a)
        signature.provenance = "predicted"
        signature.predicted_age = age
        return signature

    def test_predicted_round_trips(self, backend):
        store = backend.fresh()
        store.add(self._predicted(age=2))
        store.flush()
        reloaded = backend.reopen(store)
        (stored,) = list(reloaded)
        assert stored.provenance == "predicted"
        assert stored.predicted_age == 2
        assert reloaded.provenance_counts() == {
            "earned": 0,
            "predicted": 1,
            "promoted": 0,
        }
        reloaded.close()

    def test_promotion_survives_reopen(self, backend):
        store = backend.fresh()
        store.add(self._predicted())
        assert store.promote(sig(outer_a=1))
        store.flush()
        reloaded = backend.reopen(store)
        (stored,) = list(reloaded)
        assert stored.provenance == "promoted"
        assert stored.predicted_age == 0
        reloaded.close()

    def test_earned_duplicate_upgrades_predicted(self, backend):
        """Rank order: a real detection outranks the prediction."""
        store = backend.fresh()
        store.add(self._predicted())
        assert not store.add(sig(outer_a=1))  # dup by identity...
        store.flush()
        reloaded = backend.reopen(store)
        (stored,) = list(reloaded)
        assert stored.provenance == "earned"  # ...but provenance merged
        reloaded.close()

    def test_predicted_duplicate_never_downgrades(self, backend):
        store = backend.fresh()
        store.add(sig(outer_a=1))
        assert not store.add(self._predicted())
        store.flush()
        reloaded = backend.reopen(store)
        (stored,) = list(reloaded)
        assert stored.provenance == "earned"
        reloaded.close()

    def test_expiry_age_bump_persists(self, backend):
        store = backend.fresh()
        store.add(self._predicted(outer_a=1))
        store.add(self._predicted(outer_a=5))
        store.flush()
        assert store.expire_predictions(3) == 0
        store.flush()
        reloaded = backend.reopen(store)
        assert all(s.predicted_age == 1 for s in reloaded)
        # One more aging round on the reopened store, TTL=2: both go.
        assert reloaded.expire_predictions(2) == 2
        reloaded.flush()
        final = backend.reopen(reloaded)
        assert len(final) == 0
        final.close()

    def test_legacy_fixture_loads_as_earned(self, tmp_path):
        work = tmp_path / "legacy.history"
        work.write_bytes(FIXTURE.read_bytes())
        store = open_store(f"jsonl://{work}")
        assert all(s.provenance == "earned" for s in store)
        counts = store.provenance_counts()
        assert counts["earned"] == len(store) == 3
        assert counts["predicted"] == counts["promoted"] == 0
        store.close()

    def test_earned_serialization_is_byte_unchanged(self, tmp_path):
        """Histories that never saw a prediction stay legacy-identical.

        The wire form of an earned signature must not grow provenance
        keys — old readers and committed fixtures depend on it.
        """
        earned = sig(outer_a=1)
        data = earned.to_json()
        assert "provenance" not in data
        assert "predicted_age" not in data
        path = tmp_path / "earned.history"
        store = JsonlStore(path)
        store.add(earned)
        store.flush()
        store.close()
        lines = path.read_text().splitlines()
        assert all("provenance" not in line for line in lines)
