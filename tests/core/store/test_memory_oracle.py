"""Property test: the indexed MemoryStore equals a naive linear scan.

The position-keyed index is the O(1) hot-path optimization; this holds
it to a brute-force oracle that answers every query by scanning the
full signature list — the semantics the index must never drift from.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.callstack import CallStack
from repro.core.signature import (
    KIND_DEADLOCK,
    KIND_STARVATION,
    DeadlockSignature,
    SignatureEntry,
)
from repro.core.store import HistoryFullError, MemoryStore

FILES = ("a.py", "b.py")
LINES = tuple(range(1, 6))


class LinearScanOracle:
    """The spec: every query is a full scan over an ordered list."""

    def __init__(self, max_signatures: int) -> None:
        self.max_signatures = max_signatures
        self.signatures: list[DeadlockSignature] = []

    def add(self, signature: DeadlockSignature) -> bool:
        if any(
            s.canonical_key() == signature.canonical_key()
            for s in self.signatures
        ):
            return False
        if len(self.signatures) >= self.max_signatures:
            raise HistoryFullError("full")
        self.signatures.append(signature)
        return True

    def signatures_at(self, key, include_starvation=True):
        deadlocks = [
            s
            for s in self.signatures
            if not s.is_starvation and key in s.outer_position_keys()
        ]
        if not include_starvation:
            return tuple(deadlocks)
        starving = [
            s
            for s in self.signatures
            if s.is_starvation and key in s.outer_position_keys()
        ]
        return tuple(deadlocks + starving)

    def starvation_signatures_at(self, key):
        return tuple(
            s
            for s in self.signatures
            if s.is_starvation and key in s.outer_position_keys()
        )

    def contains_position(self, key) -> bool:
        return any(key in s.outer_position_keys() for s in self.signatures)

    def contains(self, signature) -> bool:
        return any(
            s.canonical_key() == signature.canonical_key()
            for s in self.signatures
        )

    def deadlock_count(self) -> int:
        return sum(1 for s in self.signatures if not s.is_starvation)

    def starvation_count(self) -> int:
        return sum(1 for s in self.signatures if s.is_starvation)


position = st.tuples(st.sampled_from(FILES), st.sampled_from(LINES))


@st.composite
def signatures(draw):
    size = draw(st.integers(min_value=1, max_value=3))
    entries = []
    for _ in range(size):
        outer_file, outer_line = draw(position)
        inner_file, inner_line = draw(position)
        entries.append(
            SignatureEntry(
                CallStack.single(outer_file, outer_line),
                CallStack.single(inner_file, inner_line),
            )
        )
    kind = draw(st.sampled_from((KIND_DEADLOCK, KIND_STARVATION)))
    return DeadlockSignature(entries, kind=kind)


ALL_KEYS = tuple(((file, line),) for file in FILES for line in LINES)


@given(sigs=st.lists(signatures(), max_size=30))
@settings(max_examples=200, deadline=None)
def test_memory_store_matches_linear_scan_oracle(sigs):
    store = MemoryStore(max_signatures=20)
    oracle = LinearScanOracle(max_signatures=20)
    for signature in sigs:
        try:
            store_added = store.add(signature)
        except HistoryFullError:
            store_added = "full"
        try:
            oracle_added = oracle.add(signature)
        except HistoryFullError:
            oracle_added = "full"
        assert store_added == oracle_added
        assert store.contains(signature) == oracle.contains(signature)

    assert len(store) == len(oracle.signatures)
    assert list(store) == oracle.signatures
    assert store.deadlock_count() == oracle.deadlock_count()
    assert store.starvation_count() == oracle.starvation_count()
    for key in ALL_KEYS:
        assert store.contains_position(key) == oracle.contains_position(key)
        assert set(store.signatures_at(key)) == set(oracle.signatures_at(key))
        assert set(store.signatures_at(key, include_starvation=False)) == set(
            oracle.signatures_at(key, include_starvation=False)
        )
        assert set(store.starvation_signatures_at(key)) == set(
            oracle.starvation_signatures_at(key)
        )
