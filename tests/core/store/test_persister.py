"""Write-behind persistence: the lock path never pays a file write."""

from __future__ import annotations

import time

import pytest

from repro.config import DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.engine import DimmunixCore
from repro.core.events import EventBus, EventLog
from repro.core.history import History, open_history
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.core.store import WriteBehindPersister


def stack(line):
    return CallStack.single("wb.py", line)


def sig(outer_a=1, outer_b=3):
    return DeadlockSignature(
        [
            SignatureEntry(stack(outer_a), stack(outer_a + 1)),
            SignatureEntry(stack(outer_b), stack(outer_b + 1)),
        ]
    )


def drive_abba(core):
    t1 = core.register_thread("t1")
    t2 = core.register_thread("t2")
    a = core.register_lock("a")
    b = core.register_lock("b")
    core.request(t1, a, stack(10))
    core.acquired(t1, a)
    core.request(t2, b, stack(20))
    core.acquired(t2, b)
    core.request(t1, b, stack(11))
    result = core.request(t2, a, stack(21))
    assert result.detected is not None


class TestDeferredMode:
    def test_no_io_until_flush(self, tmp_path):
        path = tmp_path / "h.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
            persistence_mode="deferred",
        )
        drive_abba(core)
        assert not path.exists()
        assert core.history.store.pending_count == 1
        assert core.flush_history() == 1
        assert path.exists()

    def test_flush_announces_once(self, tmp_path):
        path = tmp_path / "h.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
            persistence_mode="deferred",
        )
        log = EventLog()
        core.events.subscribe(log, kinds=("history-saved",))
        drive_abba(core)
        core.flush_history()
        core.flush_history()
        assert len(log.events) == 1
        (saved,) = log.events
        assert saved.path == str(path)
        assert saved.signatures == 1

    def test_detach_events_flushes(self, tmp_path):
        path = tmp_path / "h.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
            persistence_mode="deferred",
        )
        drive_abba(core)
        core.detach_events()
        assert path.exists()


class TestThreadMode:
    def test_worker_flushes_without_explicit_call(self, tmp_path):
        path = tmp_path / "h.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
            persistence_mode="thread",
        )
        drive_abba(core)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if path.exists() and not core.history.store.dirty:
                break
            time.sleep(0.01)
        assert path.exists()
        assert len(History.load(path)) == 1

    def test_explicit_flush_races_cleanly_with_worker(self, tmp_path):
        path = tmp_path / "h.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
        )
        log = EventLog()
        core.events.subscribe(log, kinds=("history-saved",))
        drive_abba(core)
        core.flush_history()
        # Whoever won, exactly one event was emitted and the data is
        # durable by the time the explicit flush returned.
        assert path.exists()
        assert len(log.events) == 1

    def test_persister_close_joins_worker(self, tmp_path):
        path = tmp_path / "h.history"
        history = open_history(f"jsonl://{path}")
        bus = EventBus()
        persister = WriteBehindPersister(history, bus, mode="thread")
        history.bind_events(bus, "test")
        history.attach_persister(persister)
        history.add(sig())
        persister.close()
        assert path.exists()
        assert not history.store.dirty


class TestAutoSaveWiring:
    def test_no_persister_for_memory_history(self):
        core = DimmunixCore(DimmunixConfig(yield_timeout=None))
        assert core.history.persister is None

    def test_no_persister_when_auto_save_off(self, tmp_path):
        core = DimmunixCore(
            DimmunixConfig(
                yield_timeout=None,
                history_path=tmp_path / "h.history",
                auto_save=False,
            )
        )
        assert core.history.persister is None
        assert core.flush_history() == 0

    def test_persister_attached_for_sqlite_url(self, tmp_path):
        core = DimmunixCore(
            DimmunixConfig(
                yield_timeout=None,
                history_url=f"sqlite://{tmp_path / 'h.db'}",
            ),
            persistence_mode="deferred",
        )
        assert core.history.persister is not None
        drive_abba(core)
        assert core.flush_history() == 1
        reopened = open_history(f"sqlite://{tmp_path / 'h.db'}")
        assert len(reopened) == 1
        reopened.close()

    def test_shared_history_gets_one_persister(self, tmp_path):
        bus = EventBus()
        history = open_history(f"jsonl://{tmp_path / 'h.history'}")
        config = DimmunixConfig(
            yield_timeout=None, history_path=tmp_path / "h.history"
        )
        core_a = DimmunixCore(
            config, history, events=bus, source="a",
            persistence_mode="deferred",
        )
        first = history.persister
        core_b = DimmunixCore(
            config, history, events=bus, source="b",
            persistence_mode="deferred",
        )
        assert first is not None
        assert history.persister is first
        assert core_a.history is core_b.history

    def test_bad_mode_rejected(self, tmp_path):
        history = open_history(f"jsonl://{tmp_path / 'h.history'}")
        with pytest.raises(ValueError, match="unknown persister mode"):
            WriteBehindPersister(history, EventBus(), mode="sometimes")


class TestFlakyBackendHardening:
    """A store exception during a batched save must not kill the worker."""

    def _flaky_store(self, store, fail_times=1):
        original = store._persist
        calls = []

        def flaky(batch):
            calls.append(len(batch))
            if len(calls) <= fail_times:
                raise OSError("injected: backend away")
            original(batch)

        store._persist = flaky
        return calls

    def test_worker_survives_and_retries(self, tmp_path):
        path = tmp_path / "h.history"
        core = DimmunixCore(
            DimmunixConfig(yield_timeout=None, history_path=path),
            persistence_mode="thread",
        )
        persister = core.history.persister
        persister.retry_backoff = 0.01
        calls = self._flaky_store(core.history.store)
        drive_abba(core)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if path.exists() and not core.history.store.dirty:
                break
            time.sleep(0.01)
        # The first attempt failed, the worker survived it, the retry
        # landed — and the antibody reached disk without any explicit
        # flush from the application.
        assert persister.flush_failures >= 1
        assert len(calls) >= 2
        assert persister._worker.is_alive()
        assert len(History.load(path)) == 1
        core.detach_events()

    def test_backoff_grows_and_resets(self, tmp_path):
        history = open_history(f"jsonl://{tmp_path / 'h.history'}")
        persister = WriteBehindPersister(
            history,
            EventBus(),
            mode="deferred",
            retry_backoff=0.1,
            max_retry_backoff=0.4,
        )
        # Exercise the backoff arithmetic directly: doubling, capped,
        # reset after a clean flush.
        assert persister._retry_delay == 0.0
        for expected in (0.1, 0.2, 0.4, 0.4):
            persister._retry_delay = min(
                max(persister._retry_delay * 2, persister.retry_backoff),
                persister.max_retry_backoff,
            )
            assert persister._retry_delay == pytest.approx(expected)
        persister.close()
        history.close()

    def test_close_during_outage_still_raises_loudly(self, tmp_path):
        # close() makes the final flush attempt synchronously; a still-
        # broken backend must surface there, not vanish quietly.
        history = open_history(f"jsonl://{tmp_path / 'h.history'}")
        persister = WriteBehindPersister(history, EventBus(), mode="deferred")
        self._flaky_store(history.store, fail_times=10**6)
        history.add(sig())
        with pytest.raises(OSError, match="injected"):
            persister.close()
        # The batch is still pending — nothing was silently dropped.
        assert history.store.pending_count == 1


class TestReviewRegressions:
    """Fixes from the store-redesign review, pinned."""

    def test_vm_first_session_upgrades_persister_for_real_threads(
        self, tmp_path
    ):
        # A deferred-mode persister (attached by a VM core) must switch
        # to background flushing when a thread-mode core joins: a real
        # process that deadlocks never reaches an explicit flush point.
        bus = EventBus()
        history = open_history(f"jsonl://{tmp_path / 'h.history'}")
        config = DimmunixConfig(
            yield_timeout=None, history_path=tmp_path / "h.history"
        )
        DimmunixCore(
            config, history, events=bus, source="vm",
            persistence_mode="deferred",
        )
        assert history.persister.mode == "deferred"
        DimmunixCore(
            config, history, events=bus, source="runtime",
            persistence_mode="thread",
        )
        assert history.persister.mode == "thread"

    def test_auto_save_off_never_writes_from_lifecycle_hooks(self, tmp_path):
        # A read-only process (auto_save=False) must not mutate its
        # history file from lifecycle flushes — only an explicit,
        # user-initiated persist() writes.
        path = tmp_path / "h.history"
        core = DimmunixCore(
            DimmunixConfig(
                yield_timeout=None, history_path=path, auto_save=False
            )
        )
        drive_abba(core)
        assert core.flush_history() == 0
        core.detach_events()
        assert not path.exists()
        target = core.history.persist()
        assert target == path
        assert len(History.load(path)) == 1

    def test_memory_backed_history_persists_via_snapshot(self, tmp_path):
        # The legacy pattern: History.load() (memory-backed) + a
        # configured path. persist() must fall back to a snapshot —
        # MemoryStore.flush durably writes nothing and reports 0.
        path = tmp_path / "h.history"
        history = History()
        history.add(sig())
        target = history.persist(path)
        assert target == path
        assert len(History.load(path)) == 1

    def test_persist_to_own_location_flushes(self, tmp_path):
        path = tmp_path / "h.history"
        history = open_history(f"jsonl://{path}")
        history.add(sig())
        assert history.persist() == path
        assert len(History.load(path)) == 1
        # And an empty, clean history still materializes its file.
        other = open_history(f"jsonl://{tmp_path / 'empty.history'}")
        assert other.persist().exists()

    def test_session_close_detaches_persister_and_bus(self, tmp_path):
        from repro.api import Dimmunix

        path = tmp_path / "h.history"
        session = Dimmunix(DimmunixConfig(history_path=path))
        session.runtime()  # attaches a thread-mode persister
        history = session.history
        assert history.persister is not None
        worker = history.persister._worker
        session.close()
        assert history.persister is None
        assert not worker.is_alive()
        # The history is reusable: a successor session adopts it fresh.
        successor = Dimmunix(
            DimmunixConfig(history_path=path), history=history
        )
        successor.runtime()
        assert history.persister is not None
        successor.close()

    def test_sqlite_snapshot_to_own_path_is_a_flush(self, tmp_path):
        # Snapshotting a SqliteStore onto its own backing file must not
        # replace the database with a JSONL file (later flushes would
        # commit to an unlinked inode and vanish).
        db = tmp_path / "h.db"
        history = open_history(f"sqlite://{db}")
        history.add(sig(outer_a=1))
        history.save(db)  # the hazardous spelling
        history.add(sig(outer_a=5))
        history.flush()
        history.close()
        reopened = open_history(f"sqlite://{db}")
        assert len(reopened) == 2
        reopened.close()
