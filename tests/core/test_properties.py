"""Property-based tests (hypothesis) on the core data structures.

These pin down invariants rather than examples: queue conservation under
arbitrary add/remove interleavings, signature canonicalization, history
deduplication and persistence, and an oracle check for the chain-walk
cycle detector against a generic graph search.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.core.callstack import CallStack, Frame
from repro.core.cycle import find_any_lock_cycle, find_lock_cycle
from repro.core.history import History
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionQueue, PositionTable
from repro.core.rag import ResourceAllocationGraph
from repro.core.signature import DeadlockSignature, SignatureEntry

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

frames = st.builds(
    Frame,
    file=st.sampled_from(["a.py", "b.py", "c.py"]),
    line=st.integers(min_value=1, max_value=50),
    function=st.sampled_from(["f", "g", "h"]),
)

stacks = st.lists(frames, min_size=1, max_size=4).map(CallStack)

entries = st.builds(SignatureEntry, outer=stacks, inner=stacks)

signatures = st.builds(
    DeadlockSignature,
    entries=st.lists(entries, min_size=1, max_size=3),
    kind=st.sampled_from(["deadlock", "starvation"]),
)


# ----------------------------------------------------------------------
# position queues
# ----------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 4), st.integers(0, 4)),
        max_size=80,
    )
)
def test_queue_size_matches_live_entries(ops):
    """len(queue) equals the number of live entries after any op mix,
    and allocations never exceed the high-water mark of live entries."""
    queue = PositionQueue()
    threads = [ThreadNode(f"t{i}") for i in range(5)]
    locks = [LockNode(f"l{i}") for i in range(5)]
    live: list[tuple[int, int]] = []
    for is_add, t, l in ops:
        if is_add:
            queue.add(threads[t], locks[l])
            live.append((t, l))
        else:
            removed = queue.remove(threads[t], locks[l])
            if (t, l) in live:
                assert removed
                live.remove((t, l))
            else:
                assert not removed
        assert len(queue) == len(live)
    entries_seen = sorted(
        (t.name, l.name) for t, l in queue.entries()
    )
    expected = sorted(
        (threads[t].name, locks[l].name) for t, l in live
    )
    assert entries_seen == expected


@given(
    count=st.integers(min_value=1, max_value=30),
    rounds=st.integers(min_value=1, max_value=5),
)
def test_queue_free_list_bounds_allocations(count, rounds):
    """Steady-state churn allocates at most the high-water mark."""
    queue = PositionQueue()
    thread, lock = ThreadNode(), LockNode()
    for _round in range(rounds):
        for _ in range(count):
            queue.add(thread, lock)
        for _ in range(count):
            queue.remove(thread, lock)
    assert queue.allocations == count
    assert queue.free_list_length() == count


# ----------------------------------------------------------------------
# signatures & history
# ----------------------------------------------------------------------

@given(signature=signatures)
def test_signature_json_roundtrip(signature):
    data = json.loads(json.dumps(signature.to_json()))
    assert DeadlockSignature.from_json(data) == signature


@given(signature=signatures)
def test_signature_equality_is_order_insensitive(signature):
    reversed_sig = DeadlockSignature(
        tuple(reversed(signature.entries)), kind=signature.kind
    )
    assert reversed_sig == signature
    assert hash(reversed_sig) == hash(signature)


@given(sigs=st.lists(signatures, max_size=20))
def test_history_dedup_and_len(sigs):
    history = History()
    unique = set()
    for signature in sigs:
        added = history.add(signature)
        assert added == (signature not in unique)
        unique.add(signature)
    assert len(history) == len(unique)


@given(sigs=st.lists(signatures, max_size=12))
@settings(max_examples=30)
def test_history_persistence_roundtrip(sigs, tmp_path_factory):
    history = History()
    for signature in sigs:
        history.add(signature)
    path = tmp_path_factory.mktemp("hist") / "h.jsonl"
    history.save(path)
    loaded = History.load(path)
    assert len(loaded) == len(history)
    for signature in history:
        assert loaded.contains(signature)


@given(sigs=st.lists(signatures, max_size=15))
def test_history_index_consistent(sigs):
    """Every signature is findable through each of its outer positions."""
    history = History()
    for signature in sigs:
        history.add(signature)
    for signature in history:
        for key in signature.outer_position_keys():
            assert signature in history.signatures_at(key)
            assert history.contains_position(key)


# ----------------------------------------------------------------------
# cycle detection vs. an oracle
# ----------------------------------------------------------------------

def _oracle_has_cycle(holds: dict[int, int], requests: dict[int, int]) -> bool:
    """Generic wait-for-graph cycle check: thread -> owner(requested)."""
    wait_for = {}
    for thread, lock in requests.items():
        owner = holds.get(lock)
        if owner is not None:
            wait_for[thread] = owner
    for start in wait_for:
        seen = set()
        node = start
        while node in wait_for and node not in seen:
            seen.add(node)
            node = wait_for[node]
        if node in seen and node in wait_for:
            return True
    return False


@given(
    holds=st.dictionaries(
        keys=st.integers(0, 7), values=st.integers(0, 7), max_size=8
    ),
    requests=st.dictionaries(
        keys=st.integers(0, 7), values=st.integers(0, 7), max_size=8
    ),
)
def test_chain_walk_agrees_with_oracle(holds, requests):
    """holds: lock -> owning thread; requests: thread -> requested lock.

    A thread cannot request a lock it owns (that is reentrancy, filtered
    by adapters), and owns at most... any shape the maps allow otherwise.
    """
    # Normalize: drop requests for locks the requester already owns.
    requests = {
        t: l for t, l in requests.items() if holds.get(l) != t
    }
    rag = ResourceAllocationGraph()
    table = PositionTable()
    stack = CallStack.single("prop.py", 1)
    pos = table.intern(stack)
    threads = {i: ThreadNode(f"t{i}") for i in range(8)}
    locks = {i: LockNode(f"l{i}") for i in range(8)}
    for node in threads.values():
        rag.add_thread(node)
    for node in locks.values():
        rag.add_lock(node)
    for lock_id, thread_id in holds.items():
        rag.set_hold(threads[thread_id], locks[lock_id], pos, stack)
    for thread_id, lock_id in requests.items():
        rag.set_request(threads[thread_id], locks[lock_id], pos, stack)

    found = find_any_lock_cycle(threads.values()) is not None
    assert found == _oracle_has_cycle(
        {l: t for l, t in holds.items()}, requests
    )


@given(
    chain_length=st.integers(min_value=1, max_value=12),
    close_cycle=st.booleans(),
)
def test_anchored_detector_on_chains(chain_length, close_cycle):
    """A hold/request chain of arbitrary length is a cycle iff closed."""
    rag = ResourceAllocationGraph()
    table = PositionTable()
    stack = CallStack.single("prop.py", 2)
    pos = table.intern(stack)
    threads = [ThreadNode(f"t{i}") for i in range(chain_length)]
    locks = [LockNode(f"l{i}") for i in range(chain_length)]
    for i in range(chain_length):
        rag.set_hold(threads[i], locks[i], pos, stack)
    for i in range(chain_length - 1):
        rag.set_request(threads[i + 1], locks[i], pos, stack)
    closing_request = locks[chain_length - 1]
    if close_cycle:
        rag.set_request(threads[0], closing_request, pos, stack)
        cycle = find_lock_cycle(threads[0], closing_request)
        assert cycle is not None
        assert len(cycle) == chain_length
    else:
        free_lock = LockNode("free")
        rag.set_request(threads[0], free_lock, pos, stack)
        assert find_lock_cycle(threads[0], free_lock) is None
