"""Unit tests for deadlock signatures."""

import pytest

from repro.core.callstack import CallStack
from repro.core.signature import (
    KIND_DEADLOCK,
    KIND_STARVATION,
    DeadlockSignature,
    SignatureEntry,
)


def entry(outer_line, inner_line):
    return SignatureEntry(
        outer=CallStack.single("sig.py", outer_line),
        inner=CallStack.single("sig.py", inner_line),
    )


class TestSignatureIdentity:
    def test_rotation_invariance(self):
        """Same bug discovered from a different cycle rotation is equal."""
        a = DeadlockSignature([entry(1, 2), entry(3, 4)])
        b = DeadlockSignature([entry(3, 4), entry(1, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_different_outer_positions_differ(self):
        a = DeadlockSignature([entry(1, 2), entry(3, 4)])
        b = DeadlockSignature([entry(1, 2), entry(5, 4)])
        assert a != b

    def test_different_inner_positions_differ(self):
        """§2.1: a bug is delimited by outer AND inner positions."""
        a = DeadlockSignature([entry(1, 2), entry(3, 4)])
        b = DeadlockSignature([entry(1, 2), entry(3, 9)])
        assert a != b

    def test_kind_distinguishes(self):
        a = DeadlockSignature([entry(1, 2)], kind=KIND_DEADLOCK)
        b = DeadlockSignature([entry(1, 2)], kind=KIND_STARVATION)
        assert a != b

    def test_empty_entries_rejected(self):
        with pytest.raises(ValueError):
            DeadlockSignature([])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DeadlockSignature([entry(1, 2)], kind="nonsense")


class TestSignatureQueries:
    def test_outer_position_keys_in_order(self):
        sig = DeadlockSignature([entry(1, 2), entry(3, 4)])
        assert sig.outer_position_keys() == (
            (("sig.py", 1),),
            (("sig.py", 3),),
        )

    def test_contains_outer(self):
        sig = DeadlockSignature([entry(1, 2), entry(3, 4)])
        assert sig.contains_outer((("sig.py", 3),))
        assert not sig.contains_outer((("sig.py", 4),))

    def test_size(self):
        assert DeadlockSignature([entry(1, 2)]).size == 1
        assert DeadlockSignature([entry(1, 2), entry(3, 4)]).size == 2

    def test_is_starvation(self):
        assert DeadlockSignature([entry(1, 2)], KIND_STARVATION).is_starvation
        assert not DeadlockSignature([entry(1, 2)]).is_starvation


class TestSignatureSerialization:
    def test_roundtrip_deadlock(self):
        sig = DeadlockSignature([entry(1, 2), entry(3, 4)])
        assert DeadlockSignature.from_json(sig.to_json()) == sig

    def test_roundtrip_starvation(self):
        sig = DeadlockSignature([entry(1, 2)], kind=KIND_STARVATION)
        restored = DeadlockSignature.from_json(sig.to_json())
        assert restored == sig
        assert restored.is_starvation

    def test_json_defaults_kind_to_deadlock(self):
        sig = DeadlockSignature([entry(1, 2)])
        data = sig.to_json()
        del data["kind"]
        assert DeadlockSignature.from_json(data).kind == KIND_DEADLOCK

    def test_multi_frame_stacks_roundtrip(self):
        outer = CallStack.from_json(
            [["a.py", 1, "f"], ["b.py", 2, "g"], ["c.py", 3, "h"]]
        )
        sig = DeadlockSignature(
            [SignatureEntry(outer=outer, inner=CallStack.single("d.py", 4))]
        )
        restored = DeadlockSignature.from_json(sig.to_json())
        assert restored.entries[0].outer.depth == 3
