"""Unit tests for the simulated pthread mutex layer."""

import pytest

from repro.dalvik.program import ProgramBuilder
from repro.dalvik.vm import DalvikVM, VMConfig
from repro.ndk.pthread_layer import InterceptionMode, PthreadError


def _vm(mode: InterceptionMode, dimmunix: bool = True) -> DalvikVM:
    from dataclasses import replace

    config = replace(VMConfig(), native_interception=mode)
    if not dimmunix:
        config = config.vanilla()
    return DalvikVM(config)


def _lock_unlock_program(mutex: str = "m"):
    builder = ProgramBuilder("native.cpp")
    builder.native_lock(mutex, line=10)
    builder.compute(3, line=11)
    builder.native_unlock(mutex, line=12)
    builder.halt()
    return builder.build()


class TestBasicMutex:
    @pytest.mark.parametrize(
        "mode", [InterceptionMode.OFF, InterceptionMode.NATIVE_ONLY]
    )
    def test_lock_unlock_completes(self, mode):
        vm = _vm(mode)
        vm.spawn(_lock_unlock_program(), "native")
        result = vm.run()
        assert result.status == "completed"
        assert vm.pthreads.native_ops == 2

    def test_contention_blocks_and_hands_over(self):
        vm = _vm(InterceptionMode.NATIVE_ONLY)
        for index in range(3):
            vm.spawn(_lock_unlock_program(), f"native-{index}")
        result = vm.run()
        assert result.status == "completed"
        mutex = vm.pthreads.mutex("m")
        assert mutex.is_free()
        assert not mutex.entry_queue

    def test_relock_faults_edeadlk(self):
        builder = ProgramBuilder("bad.cpp")
        builder.native_lock("m", line=5)
        builder.native_lock("m", line=6)  # EDEADLK
        builder.halt()
        vm = _vm(InterceptionMode.NATIVE_ONLY)
        vm.spawn(builder.build(), "bad")
        result = vm.run()
        assert len(result.faults) == 1
        assert isinstance(result.faults[0][1], PthreadError)
        assert "EDEADLK" in str(result.faults[0][1])

    def test_unlock_unowned_faults_eperm(self):
        builder = ProgramBuilder("bad.cpp")
        builder.native_unlock("m", line=5)
        builder.halt()
        vm = _vm(InterceptionMode.OFF)
        vm.spawn(builder.build(), "bad")
        result = vm.run()
        assert len(result.faults) == 1
        assert "EPERM" in str(result.faults[0][1])

    def test_fault_releases_held_mutexes(self):
        """A crashed native thread must not pin its mutexes forever."""
        bad = ProgramBuilder("bad.cpp")
        bad.native_lock("m", line=5)
        bad.native_unlock("other", line=6)  # EPERM -> fault while holding m
        bad.halt()
        vm = _vm(InterceptionMode.NATIVE_ONLY)
        vm.spawn(bad.build(), "bad")
        vm.spawn(_lock_unlock_program(), "good")
        result = vm.run()
        assert len(result.faults) == 1
        # The healthy thread still completed: m was unwound.
        good = next(t for t in vm.threads if t.name == "good")
        assert good.state.value == "terminated"


class TestInterceptionModes:
    def test_off_registers_no_nodes(self):
        vm = _vm(InterceptionMode.OFF)
        vm.spawn(_lock_unlock_program(), "native")
        vm.run()
        assert vm.pthreads.intercepted_native == 0
        assert vm.pthreads.mutex("m").node is None
        # Dimmunix saw nothing: no requests from native ops.
        assert vm.core.stats.requests == 0

    def test_native_only_intercepts_native_ops(self):
        vm = _vm(InterceptionMode.NATIVE_ONLY)
        vm.spawn(_lock_unlock_program(), "native")
        vm.run()
        assert vm.pthreads.intercepted_native == 1
        assert vm.pthreads.intercepted_internal == 0
        assert vm.core.stats.requests == 1
        assert vm.core.stats.releases == 1

    def test_native_only_ignores_vm_internal_use(self):
        """Java monitor traffic must not reach the pthread interceptor."""
        builder = ProgramBuilder("App.java")
        builder.monitor_enter("obj", line=10)
        builder.monitor_exit("obj", line=11)
        builder.halt()
        vm = _vm(InterceptionMode.NATIVE_ONLY)
        vm.spawn(builder.build(), "java")
        vm.run()
        assert vm.pthreads.intercepted_internal == 0
        # Exactly one request: the monitorenter itself, not its backing.
        assert vm.core.stats.requests == 1

    def test_always_double_intercepts(self):
        """The naive hook processes every Java acquisition twice."""
        builder = ProgramBuilder("App.java")
        builder.monitor_enter("obj", line=10)
        builder.monitor_exit("obj", line=11)
        builder.halt()
        vm = _vm(InterceptionMode.ALWAYS)
        vm.spawn(builder.build(), "java")
        vm.run()
        assert vm.pthreads.intercepted_internal >= 1
        # Double interception: monitorenter + its backing mutex.
        assert vm.core.stats.requests == 2

    def test_always_collapses_internal_positions(self):
        """All internal acquisitions share the one <libdvm> position —
        the §3.2 wrapper pathology at platform scale."""
        from repro.ndk.pthread_layer import VM_INTERNAL_FILE

        builder = ProgramBuilder("App.java")
        builder.monitor_enter("a", line=10)
        builder.monitor_exit("a", line=11)
        builder.monitor_enter("b", line=20)
        builder.monitor_exit("b", line=21)
        builder.halt()
        vm = _vm(InterceptionMode.ALWAYS)
        vm.spawn(builder.build(), "java")
        vm.run()
        internal_positions = [
            pos
            for pos in vm.core.positions
            if pos.key and pos.key[0][0] == VM_INTERNAL_FILE
        ]
        assert len(internal_positions) == 1

    def test_vanilla_vm_never_intercepts(self):
        vm = _vm(InterceptionMode.ALWAYS, dimmunix=False)
        vm.spawn(_lock_unlock_program(), "native")
        result = vm.run()
        assert result.status == "completed"
        assert vm.pthreads.intercepted_native == 0
