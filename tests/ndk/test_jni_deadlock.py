"""The JNI-crossing deadlock under each interception mode (§4)."""

import pytest

from repro.core.history import History
from repro.ndk.pthread_layer import InterceptionMode
from repro.ndk.scenarios import (
    JAVA_FILE,
    JAVA_MONITOR_LINE,
    JNI_FILE,
    NATIVE_LOCK_LINE,
    run_jni_inversion,
)


def _live(vm):
    return [t for t in vm.threads if t.is_live()]


class TestShippedBehaviour:
    def test_off_mode_freezes_undetected(self):
        """The paper's stated limitation, reproduced: the cross-boundary
        cycle involves a mutex Dimmunix never sees."""
        vm = run_jni_inversion(InterceptionMode.OFF)
        assert len(_live(vm)) == 2
        assert vm.detections == []
        assert len(vm.core.history) == 0

    def test_off_mode_vanilla_also_freezes(self):
        from repro.dalvik.vm import VMConfig

        vm = run_jni_inversion(
            InterceptionMode.OFF, vm_config=VMConfig().vanilla()
        )
        assert len(_live(vm)) == 2


class TestNativeOnlyInterception:
    def test_cycle_detected_across_the_boundary(self):
        vm = run_jni_inversion(InterceptionMode.NATIVE_ONLY)
        assert len(vm.detections) == 1
        signature = vm.detections[0]
        files = {key[0][0] for key in signature.outer_position_keys()}
        # One outer position in Java source, one in JNI source.
        assert files == {JAVA_FILE, JNI_FILE}

    def test_signature_lines_name_both_acquisitions(self):
        vm = run_jni_inversion(InterceptionMode.NATIVE_ONLY)
        keys = {key[0] for key in vm.detections[0].outer_position_keys()}
        assert (JAVA_FILE, JAVA_MONITOR_LINE) in keys
        assert (JNI_FILE, NATIVE_LOCK_LINE) in keys

    def test_detect_once_then_avoid(self, tmp_path):
        history_path = tmp_path / "jni.history"
        first = run_jni_inversion(InterceptionMode.NATIVE_ONLY)
        first.core.history.save(history_path)

        second = run_jni_inversion(
            InterceptionMode.NATIVE_ONLY,
            history=History.load(history_path),
        )
        assert _live(second) == []
        assert second.detections == []
        assert second.core.stats.yields >= 1

    def test_histories_interoperate(self, tmp_path):
        """A signature mixing Java and native positions round-trips."""
        first = run_jni_inversion(InterceptionMode.NATIVE_ONLY)
        path = tmp_path / "mixed.history"
        first.core.history.save(path)
        loaded = History.load(path)
        assert len(loaded) == 1
        assert loaded.contains_position(((JNI_FILE, NATIVE_LOCK_LINE),))


class TestModeComparison:
    @pytest.mark.parametrize(
        "mode,expect_frozen,expect_detections",
        [
            (InterceptionMode.OFF, True, 0),
            (InterceptionMode.NATIVE_ONLY, True, 1),
        ],
    )
    def test_first_run_outcomes(self, mode, expect_frozen, expect_detections):
        vm = run_jni_inversion(mode)
        assert (len(_live(vm)) > 0) == expect_frozen
        assert len(vm.detections) == expect_detections
