"""Unit tests for the AST lock-structure extractor."""

from __future__ import annotations

from repro.predict.astwalk import (
    STRENGTH_CTOR,
    STRENGTH_NAME,
    analyze_source,
)


def edges_of(source: str, path: str = "mod.py"):
    return analyze_source(source, path).edges


def edge_ids(source: str, path: str = "mod.py"):
    return {
        (edge.outer.cls.id, edge.inner.cls.id)
        for edge in edges_of(source, path)
    }


class TestConstructorClasses:
    def test_string_literal_ctor_names_the_class(self):
        edges = edges_of(
            """
def f(rt):
    a = rt.lock("alpha")
    b = rt.lock("beta")
    with a:
        with b:
            pass
"""
        )
        assert len(edges) == 1
        (edge,) = edges
        assert edge.outer.cls.id == "lock:alpha"
        assert edge.inner.cls.id == "lock:beta"
        assert edge.outer.cls.strength == STRENGTH_CTOR
        assert edge.confidence == STRENGTH_CTOR

    def test_positions_point_at_the_with_lines(self):
        edges = edges_of(
            "def f(rt):\n"
            "    a = rt.lock('alpha')\n"
            "    b = rt.lock('beta')\n"
            "    with a:\n"
            "        with b:\n"
            "            pass\n"
        )
        (edge,) = edges
        assert (edge.outer.file, edge.outer.line) == ("mod.py", 4)
        assert (edge.inner.file, edge.inner.line) == ("mod.py", 5)

    def test_threading_ctor_recognized(self):
        edges = edges_of(
            """
import threading
a = threading.Lock()
b = threading.RLock()
def f():
    with a:
        with b:
            pass
"""
        )
        assert len(edges) == 1

    def test_same_literal_in_two_functions_is_one_class(self):
        """Cross-function aliasing through the constructor literal."""
        ids = edge_ids(
            """
def one(rt):
    x = rt.lock("shared")
    y = rt.lock("other")
    with x:
        with y:
            pass
def two(rt):
    p = rt.lock("other")
    q = rt.lock("shared")
    with p:
        with q:
            pass
"""
        )
        assert ("lock:shared", "lock:other") in ids
        assert ("lock:other", "lock:shared") in ids


class TestMultiInstanceClasses:
    def test_comprehension_ctor_is_multi(self):
        edges = edges_of(
            """
def dinner(rt, n):
    forks = [rt.lock(f"fork-{i}") for i in range(n)]
    def dine(seat):
        left = forks[seat]
        right = forks[(seat + 1) % n]
        with left:
            with right:
                pass
"""
        )
        (edge,) = edges
        assert edge.outer.cls.multi
        assert edge.outer.cls.id == edge.inner.cls.id == "lock:fork-*"
        # A self-loop on a multi-instance class is plausible but not
        # certain — confidence is capped below the ctor strength.
        assert edge.confidence < STRENGTH_CTOR


class TestNameFallback:
    def test_unbound_parameters_alias_by_name(self):
        edges = edges_of(
            """
def transfer(src, dst):
    src.acquire()
    dst.acquire()
    dst.release()
    src.release()
"""
        )
        (edge,) = edges
        assert edge.outer.cls.id == "var:mod.py:src"
        assert edge.inner.cls.id == "var:mod.py:dst"
        assert edge.confidence == STRENGTH_NAME


class TestAttributeTargets:
    def test_self_attribute_assignment_names_by_attr(self):
        """``self.x = rt.lock()`` (no literal) must not mangle the name."""
        summary = analyze_source(
            """
class Svc:
    def __init__(self, rt):
        self.ledger_lock = rt.lock()
        self.audit_lock = rt.lock()
    def go(self):
        with self.ledger_lock:
            with self.audit_lock:
                pass
""",
            "svc.py",
        )
        ids = {
            (e.outer.cls.id, e.inner.cls.id) for e in summary.edges
        }
        assert any(
            "ledger_lock" in outer and "audit_lock" in inner
            for outer, inner in ids
        )
        assert not any("<line:" in outer for outer, _ in ids)


class TestAcquireRelease:
    def test_acquire_release_pairing_scopes_the_hold(self):
        edges = edges_of(
            """
def f(rt):
    a = rt.lock("alpha")
    b = rt.lock("beta")
    a.acquire()
    a.release()
    b.acquire()
    b.release()
"""
        )
        # Disjoint hold windows: no ordering edge at all.
        assert edges == []

    def test_nested_acquire_orders(self):
        ids = edge_ids(
            """
def f(rt):
    a = rt.lock("alpha")
    b = rt.lock("beta")
    a.acquire()
    b.acquire()
    b.release()
    a.release()
"""
        )
        assert ids == {("lock:alpha", "lock:beta")}


class TestInterprocedural:
    def test_callee_edge_propagates_one_level(self):
        edges = edges_of(
            """
def helper(rt, inner_lock):
    with inner_lock:
        pass
def outer_fn(rt):
    a = rt.lock("outer-a")
    b = rt.lock("inner-b")
    with a:
        helper(rt, b)
"""
        )
        interproc = [e for e in edges if e.interproc]
        assert len(interproc) == 1
        (edge,) = interproc
        assert edge.outer.cls.id == "lock:outer-a"
        assert edge.inner.cls.id == "lock:inner-b"
        # Interprocedural edges are discounted.
        assert edge.confidence < STRENGTH_CTOR


class TestAsyncForms:
    def test_async_with_is_an_acquisition(self):
        ids = edge_ids(
            """
async def f(rt):
    a = rt.aio_lock("alpha")
    b = rt.aio_lock("beta")
    async with a:
        async with b:
            pass
"""
        )
        assert ids == {("lock:alpha", "lock:beta")}


class TestRobustness:
    def test_syntax_error_raises(self):
        import pytest

        with pytest.raises(SyntaxError):
            analyze_source("def broken(:\n", "bad.py")

    def test_single_acquisitions_make_no_edges(self):
        assert (
            edges_of(
                """
def f(rt):
    a = rt.lock("only")
    with a:
        pass
"""
            )
            == []
        )
