"""Unit tests for the goodlock trace miner."""

from __future__ import annotations

import json

from repro.predict.tracemine import (
    CONFIDENCE_PAIR,
    mine_events,
    mine_trace_file,
)


def _ev(kind, thread, lock, line=0, source="s"):
    data = {"kind": kind, "source": source, "thread": thread, "lock": lock}
    if kind == "request":
        data["position"] = [["app.py", line]]
    return data


def _hold(thread, outer, inner, outer_line, inner_line, source="s"):
    """One thread acquiring ``inner`` at ``inner_line`` under ``outer``."""
    return [
        _ev("request", thread, outer, outer_line, source),
        _ev("acquired", thread, outer, source=source),
        _ev("request", thread, inner, inner_line, source),
        _ev("acquired", thread, inner, source=source),
        _ev("release", thread, inner, source=source),
        _ev("release", thread, outer, source=source),
    ]


class TestReversalPair:
    def test_abba_reversal_is_mined(self):
        events = _hold("t1", "A", "B", 10, 11) + _hold("t2", "B", "A", 20, 21)
        predictions = mine_events(events)
        assert len(predictions) == 1
        (prediction,) = predictions
        assert prediction.confidence == CONFIDENCE_PAIR
        assert prediction.origin == "tracemine"
        assert len(prediction.signature.entries) == 2
        positions = {
            (frame.file, frame.line)
            for entry in prediction.signature.entries
            for frame in entry.inner.frames + entry.outer.frames
        }
        assert positions == {
            ("app.py", 10),
            ("app.py", 11),
            ("app.py", 20),
            ("app.py", 21),
        }

    def test_consistent_order_mines_nothing(self):
        events = _hold("t1", "A", "B", 10, 11) + _hold("t2", "A", "B", 20, 21)
        assert mine_events(events) == []

    def test_same_thread_reversal_rejected(self):
        """One thread taking both orders cannot deadlock with itself."""
        events = _hold("t1", "A", "B", 10, 11) + _hold("t1", "B", "A", 20, 21)
        assert mine_events(events) == []

    def test_sources_are_disjoint_namespaces(self):
        """Lock "A" on source s1 is not lock "A" on source s2."""
        events = _hold("t1", "A", "B", 10, 11, source="s1") + _hold(
            "t2", "B", "A", 20, 21, source="s2"
        )
        assert mine_events(events) == []


class TestGates:
    def test_common_gate_lock_suppresses_the_cycle(self):
        """Both reversals under one guardian lock: serialized, no bug."""
        events = []
        for thread, outer, inner, o_line, i_line in [
            ("t1", "A", "B", 10, 11),
            ("t2", "B", "A", 20, 21),
        ]:
            events += [
                _ev("request", thread, "GUARD", 5),
                _ev("acquired", thread, "GUARD"),
                *_hold(thread, outer, inner, o_line, i_line),
                _ev("release", thread, "GUARD"),
            ]
        predictions = mine_events(events)
        cycles = {p.cycle for p in predictions}
        # Any surviving prediction must involve GUARD itself, never the
        # gate-protected A/B reversal alone.
        assert all("GUARD" in c for c in cycles) or predictions == []

    def test_disjoint_gates_do_not_suppress(self):
        events = []
        for thread, guard, outer, inner, o_line, i_line in [
            ("t1", "G1", "A", "B", 10, 11),
            ("t2", "G2", "B", "A", 20, 21),
        ]:
            events += [
                _ev("request", thread, guard, 5),
                _ev("acquired", thread, guard),
                *_hold(thread, outer, inner, o_line, i_line),
                _ev("release", thread, guard),
            ]
        predictions = mine_events(events)
        assert any(
            "A" in p.cycle and "B" in p.cycle and "G" not in p.cycle
            for p in predictions
        )


class TestLongCycles:
    def test_three_party_ring(self):
        events = (
            _hold("t1", "A", "B", 10, 11)
            + _hold("t2", "B", "C", 20, 21)
            + _hold("t3", "C", "A", 30, 31)
        )
        predictions = mine_events(events)
        assert len(predictions) == 1
        assert len(predictions[0].signature.entries) == 3

    def test_max_cycle_bounds(self):
        events = (
            _hold("t1", "A", "B", 10, 11)
            + _hold("t2", "B", "C", 20, 21)
            + _hold("t3", "C", "A", 30, 31)
        )
        assert mine_events(events, max_cycle=2) == []

    def test_ring_with_too_few_threads_rejected(self):
        """A 3-ring walked by only 2 distinct threads is not a deadlock."""
        events = (
            _hold("t1", "A", "B", 10, 11)
            + _hold("t2", "B", "C", 20, 21)
            + _hold("t1", "C", "A", 30, 31)
        )
        assert mine_events(events) == []


class TestReentrancy:
    def test_reentrant_hold_released_at_outermost(self):
        events = [
            _ev("request", "t1", "A", 10),
            _ev("acquired", "t1", "A"),
            _ev("request", "t1", "A", 10),
            _ev("acquired", "t1", "A"),
            _ev("release", "t1", "A"),
            # Still held here: a nested acquisition still makes an edge.
            _ev("request", "t1", "B", 11),
            _ev("acquired", "t1", "B"),
            _ev("release", "t1", "B"),
            _ev("release", "t1", "A"),
        ] + _hold("t2", "B", "A", 20, 21)
        predictions = mine_events(events)
        assert len(predictions) == 1


class TestFiltersAndIO:
    def test_min_confidence(self):
        events = _hold("t1", "A", "B", 10, 11) + _hold("t2", "B", "A", 20, 21)
        assert mine_events(events, min_confidence=0.95) == []

    def test_mine_trace_file_tolerates_garbage(self, tmp_path):
        events = _hold("t1", "A", "B", 10, 11) + _hold("t2", "B", "A", 20, 21)
        trace = tmp_path / "trace.jsonl"
        lines = [json.dumps(e) for e in events]
        lines.insert(3, "not json at all {{{")
        lines.append('{"kind": "request", "thread"')  # torn final write
        trace.write_text("\n".join(lines) + "\n")
        predictions = mine_trace_file(trace)
        assert len(predictions) == 1

    def test_render_mentions_cycle_and_confidence(self):
        events = _hold("t1", "A", "B", 10, 11) + _hold("t2", "B", "A", 20, 21)
        (prediction,) = mine_events(events)
        rendered = prediction.render()
        assert "A" in rendered and "B" in rendered
        assert f"{prediction.confidence:.2f}" in rendered
