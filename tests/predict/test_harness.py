"""Seeding harness: provenance stamping, backends, TTL expiry."""

from __future__ import annotations

import pytest

from repro.config import DetectionPolicy, DimmunixConfig
from repro.core.callstack import CallStack
from repro.core.history import History, open_history
from repro.core.signature import DeadlockSignature, SignatureEntry
from repro.core.store.url import HistoryUrlError
from repro.predict.harness import (
    seed_history_spec,
    seed_predictions,
)
from repro.predict.staticlint import lint_source
from repro.predict.tracemine import mine_events
from repro.runtime.runtime import DimmunixRuntime

BUGGY = """
def setup(rt):
    a = rt.lock("hb-a")
    b = rt.lock("hb-b")
    def w1():
        with a:
            with b:
                pass
    def w2():
        with b:
            with a:
                pass
"""


def make_signature(outer_line=1, inner_line=2):
    return DeadlockSignature(
        [
            SignatureEntry(
                outer=CallStack.single("h.py", outer_line),
                inner=CallStack.single("h.py", inner_line),
            ),
            SignatureEntry(
                outer=CallStack.single("h.py", inner_line + 10),
                inner=CallStack.single("h.py", outer_line + 10),
            ),
        ]
    )


def _reversal_events():
    def ev(kind, thread, lock, line=0):
        data = {"kind": kind, "source": "s", "thread": thread, "lock": lock}
        if kind == "request":
            data["position"] = [["app.py", line]]
        return data

    out = []
    for thread, outer, inner, ol, il in [
        ("t1", "A", "B", 10, 11),
        ("t2", "B", "A", 20, 21),
    ]:
        out += [
            ev("request", thread, outer, ol),
            ev("acquired", thread, outer),
            ev("request", thread, inner, il),
            ev("acquired", thread, inner),
            ev("release", thread, inner),
            ev("release", thread, outer),
        ]
    return out


class TestSeedPredictions:
    def test_lint_diagnostics_become_predicted(self):
        diagnostics = lint_source(BUGGY, "hb.py")
        history = History()
        assert seed_predictions(history, diagnostics) == len(diagnostics)
        assert history.provenance_counts()["predicted"] == len(diagnostics)

    def test_mined_predictions_become_predicted(self):
        predictions = mine_events(_reversal_events())
        history = History()
        assert seed_predictions(history, predictions) == 1
        assert history.provenance_counts()["predicted"] == 1

    def test_raw_signatures_accepted(self):
        history = History()
        assert seed_predictions(history, [make_signature()]) == 1
        (stored,) = list(history)
        assert stored.provenance == "predicted"

    def test_duplicates_and_earned_never_downgraded(self):
        history = History()
        earned = make_signature()
        history.add(earned)
        assert seed_predictions(history, [make_signature()]) == 0
        (stored,) = list(history)
        assert stored.provenance == "earned"

    def test_reseed_is_idempotent(self):
        history = History()
        diagnostics = lint_source(BUGGY, "hb.py")
        seed_predictions(history, diagnostics)
        assert seed_predictions(history, diagnostics) == 0
        assert len(history) == len(diagnostics)


class TestSeedHistorySpec:
    @pytest.mark.parametrize(
        "spec_of",
        [
            lambda p: str(p / "immunity.json"),
            lambda p: f"jsonl://{p}/immunity.jsonl",
            lambda p: f"sqlite:///{p}/immunity.db",
        ],
        ids=["plain-path", "jsonl", "sqlite"],
    )
    def test_provenance_survives_each_backend(self, tmp_path, spec_of):
        spec = spec_of(tmp_path)
        assert seed_history_spec(spec, [make_signature()]) == 1
        if spec.startswith(("jsonl://", "sqlite://")):
            reopened = open_history(spec)
        else:
            reopened = History.load(spec)
        try:
            counts = reopened.provenance_counts()
            assert counts["predicted"] == 1
            (stored,) = list(reopened)
            assert stored.provenance == "predicted"
        finally:
            reopened.close()

    def test_memory_dsn_rejected(self, tmp_path):
        with pytest.raises(HistoryUrlError):
            seed_history_spec("mem://", [make_signature()])


class TestPredictedTtl:
    def _runtime(self, history, **overrides):
        config = DimmunixConfig(
            detection_policy=DetectionPolicy.RAISE, yield_timeout=1.0
        ).evolve(**overrides)
        return DimmunixRuntime(config, history=history, name="ttl-test")

    def test_unmatched_prediction_expires_after_ttl_runs(self, tmp_path):
        """Aging is per process run: save/load between simulated runs."""
        path = tmp_path / "immunity.json"
        seed_history_spec(str(path), [make_signature()])
        for run in range(1, 3):
            history = History.load(path)
            runtime = self._runtime(history, predicted_ttl_runs=3)
            assert runtime.stats.predictions_expired == 0, f"run {run}"
            assert len(history) == 1
            history.save(path)
        history = History.load(path)
        runtime = self._runtime(history, predicted_ttl_runs=3)
        # Third start-up reaches the TTL: loud in stats, gone from the
        # history.
        assert runtime.stats.predictions_expired == 1
        assert len(history) == 0
        assert history.provenance_counts().get("predicted", 0) == 0

    def test_ttl_zero_never_expires(self):
        history = History()
        seed_predictions(history, [make_signature()])
        for _ in range(5):
            runtime = self._runtime(history, predicted_ttl_runs=0)
            assert runtime.stats.predictions_expired == 0
        assert len(history) == 1

    def test_promoted_signatures_are_immune_to_ttl(self):
        history = History()
        signature = make_signature()
        seed_predictions(history, [signature])
        assert history.promote(signature)
        for _ in range(4):
            runtime = self._runtime(history, predicted_ttl_runs=1)
            assert runtime.stats.predictions_expired == 0
        assert history.provenance_counts()["promoted"] == 1

    def test_expiry_unbloats_the_position_index(self):
        """The A3 regression: expired predictions must leave the index.

        Indexed lookups stay flat only if dead predictions are removed
        from the per-position index, not just hidden from iteration.
        """
        history = History()
        signatures = [make_signature(i * 100 + 1, i * 100 + 2) for i in range(20)]
        seed_predictions(history, signatures)
        keys = [
            key
            for signature in signatures
            for key in signature.outer_position_keys()
        ]
        assert all(history.contains_position(key) for key in keys)
        expired = history.expire_predictions(1)
        assert expired == 20
        assert not any(history.contains_position(key) for key in keys)
        assert len(history) == 0
