"""Unit tests for the static lint front (graph + diagnostics)."""

from __future__ import annotations

import pytest

from repro.predict.astwalk import analyze_source
from repro.predict.staticlint import lint_paths, lint_source, lint_summaries

BUGGY = """
def setup(rt):
    a = rt.lock("acct-a")
    b = rt.lock("acct-b")
    def w1():
        with a:
            with b:
                pass
    def w2():
        with b:
            with a:
                pass
"""

CLEAN = """
def setup(rt):
    a = rt.lock("acct-a")
    b = rt.lock("acct-b")
    def w1():
        with a:
            with b:
                pass
    def w2():
        with a:
            with b:
                pass
"""


class TestCycleDiagnostics:
    def test_abba_cycle_found(self):
        diagnostics = lint_source(BUGGY, "buggy.py")
        assert len(diagnostics) == 1
        (diag,) = diagnostics
        assert diag.file == "buggy.py"
        assert "acct-a" in diag.cycle and "acct-b" in diag.cycle
        assert diag.signature is not None
        # Provenance is stamped by ``History.add_predicted`` at seed
        # time, not by the compiler.
        assert len(diag.signature.entries) == 2

    def test_render_is_file_line_prefixed(self):
        (diag,) = lint_source(BUGGY, "buggy.py")
        assert diag.render().startswith(f"buggy.py:{diag.line}: ")
        assert "lock-order cycle" in diag.render()

    def test_clean_module_is_silent(self):
        assert lint_source(CLEAN, "clean.py") == []

    def test_min_confidence_filters(self):
        weak = """
def transfer(src, dst):
    with src:
        with dst:
            pass
def refund(dst, src):
    with dst:
        with src:
            pass
"""
        assert lint_source(weak, "weak.py") != []
        assert (
            lint_source(weak, "weak.py", min_confidence=0.8) == []
        )

    def test_signature_positions_match_diagnostic(self):
        (diag,) = lint_source(BUGGY, "buggy.py")
        sig_positions = {
            (frame.file, frame.line)
            for entry in diag.signature.entries
            for frame in entry.inner.frames
        }
        assert set(diag.positions) <= sig_positions

    def test_deterministic_order_and_dedup(self):
        first = lint_source(BUGGY + "\n" + BUGGY.replace("w1", "w3").replace("w2", "w4"), "dup.py")
        # The same cycle found through two function pairs is one finding
        # per distinct signature, sorted stably.
        assert first == sorted(
            first, key=lambda d: (d.file, d.line, d.cycle)
        )


class TestCrossModule:
    def test_cycle_spanning_two_files(self):
        """Opposite orders in different modules alias via ctor literals."""
        mod_one = analyze_source(
            """
def post(rt):
    with rt.lock("ledger"):
        with rt.lock("audit"):
            pass
""",
            "one.py",
        )
        mod_two = analyze_source(
            """
def audit(rt):
    with rt.lock("audit"):
        with rt.lock("ledger"):
            pass
""",
            "two.py",
        )
        assert lint_summaries([mod_one]) == []
        assert lint_summaries([mod_two]) == []
        diagnostics = lint_summaries([mod_one, mod_two])
        assert len(diagnostics) == 1
        files = {diagnostics[0].file} | {
            file for file, _ in diagnostics[0].positions
        }
        assert files == {"one.py", "two.py"}


class TestLintPaths:
    def test_directory_walk_and_error_reporting(self, tmp_path):
        (tmp_path / "bad_syntax.py").write_text("def broken(:\n")
        (tmp_path / "buggy.py").write_text(BUGGY)
        (tmp_path / "clean.py").write_text(CLEAN)
        diagnostics, errors = lint_paths([tmp_path])
        assert len(diagnostics) == 1
        assert diagnostics[0].file.endswith("buggy.py")
        assert len(errors) == 1
        assert "bad_syntax.py" in errors[0]

    def test_repo_quickstart_flags(self):
        """The acceptance check: the shipped buggy example must flag."""
        diagnostics, errors = lint_paths(["examples/quickstart.py"])
        assert errors == []
        assert len(diagnostics) >= 1
        assert all(
            diag.file.endswith("quickstart.py") for diag in diagnostics
        )

    def test_repo_clean_example_passes(self):
        diagnostics, errors = lint_paths(["examples/ordered_transfers.py"])
        assert errors == []
        assert diagnostics == []


@pytest.mark.parametrize("max_cycle", [2, 3, 4])
def test_max_cycle_bounds_search(max_cycle):
    ring = """
def f(rt):
    a = rt.lock("r-a")
    b = rt.lock("r-b")
    c = rt.lock("r-c")
    def w1():
        with a:
            with b: pass
    def w2():
        with b:
            with c: pass
    def w3():
        with c:
            with a: pass
"""
    diagnostics = lint_source(ring, "ring.py")
    three_ring = [d for d in diagnostics if d.cycle.count("->") == 3]
    assert three_ring, "3-cycle must be found at the default max"
    summaries = [analyze_source(ring, "ring.py")]
    limited = lint_summaries(summaries, max_cycle=max_cycle)
    if max_cycle < 3:
        assert all(d.cycle.count("->") <= max_cycle + 1 for d in limited)
