"""Acceptance: predicted-seeded runs avoid the bug on first execution.

The predictive-immunity claim, end to end, for three scenario-pack
deadlocks across both domains:

* threaded dining philosophers (multi-instance fork cycle),
* the asyncio opposite-order AB/BA pair,
* the asyncio looper (message-loop monitor) inversion.

Each test records a *non-deadlocking* serial execution, mines the
lock-order reversals into predicted signatures (or compiles them from
source with the static lint), seeds a **fresh** history — zero prior
infections — and asserts the very first concurrent run completes with
zero detections, ``predicted_avoidances >= 1``, and the triggered
prediction promoted in the saved history.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.events import event_to_dict
from repro.core.history import History
from repro.predict.harness import mine_and_seed, seed_predictions
from repro.predict.staticlint import lint_paths
from repro.predict.tracemine import mine_events
from repro.aio.scenarios import (
    run_looper_inversion,
    run_opposite_order_pair,
)
from repro.workloads import scenarios as threaded_scenarios
from repro.workloads.scenarios import run_dining_philosophers
from tests.aio.conftest import make_aio_runtime
from tests.conftest import make_runtime


def record_events(runtime):
    events: list = []
    runtime.subscribe(events.append)
    return events


def assert_first_run_avoided(runtime, history):
    stats = runtime.stats
    assert stats.deadlocks_detected == 0
    assert stats.predicted_avoidances >= 1
    assert stats.predictions_promoted >= 1
    counts = history.provenance_counts()
    assert counts.get("promoted", 0) >= 1
    assert counts.get("earned", 0) == 0, "no infection ever happened"


class TestThreadedPhilosophers:
    def test_trace_mined_first_dinner_avoided(self):
        # Recording run: philosophers seated one at a time — cannot
        # deadlock, but every reversal lands in the event stream.
        recorder = make_runtime(yield_timeout=0.5)
        events = record_events(recorder)
        outcome = run_dining_philosophers(
            recorder, philosophers=4, meals=1, serial=True
        )
        assert outcome.completed
        assert outcome.deadlocks_detected == 0

        predictions = mine_events(events)
        assert predictions, "serial dinner must yield the fork cycle"

        history = History()
        assert seed_predictions(history, predictions) >= 1
        assert history.provenance_counts()["predicted"] >= 1

        # First concurrent dinner: avoided outright.
        runtime = make_runtime(history=history, yield_timeout=0.5)
        first = run_dining_philosophers(
            runtime, philosophers=4, meals=2, think_seconds=0.002
        )
        assert first.completed
        assert first.deadlocks_detected == 0
        assert_first_run_avoided(runtime, history)

    def test_static_lint_seeded_first_dinner_avoided(self):
        """The other front: no execution at all before the seeding."""
        diagnostics, errors = lint_paths([threaded_scenarios.__file__])
        assert errors == []
        fork_diagnostics = [
            diag for diag in diagnostics if "fork" in diag.cycle
        ]
        assert fork_diagnostics, "lint must flag the philosopher cycle"

        history = History()
        assert seed_predictions(history, fork_diagnostics) >= 1
        runtime = make_runtime(history=history, yield_timeout=0.5)
        first = run_dining_philosophers(
            runtime, philosophers=4, meals=2, think_seconds=0.002
        )
        assert first.completed
        assert first.deadlocks_detected == 0
        assert_first_run_avoided(runtime, history)


class TestAioOppositeOrderPair:
    def test_trace_mined_first_run_avoided(self, tmp_path):
        recorder = make_aio_runtime()
        events = record_events(recorder)
        outcome = asyncio.run(run_opposite_order_pair(recorder, serial=True))
        assert outcome.deadlocks_detected == 0
        assert sorted(outcome.finished) == ["ab", "ba"]

        # Through the trace-file route (what ``dimmunix-events mine``
        # does), not the in-memory one — both fronts get coverage.
        trace = tmp_path / "trace.jsonl"
        with open(trace, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event_to_dict(event)) + "\n")
        history = History()
        seeded, predictions = mine_and_seed(history, trace)
        assert seeded >= 1

        runtime = make_aio_runtime(history=history)
        first = asyncio.run(run_opposite_order_pair(runtime))
        assert first.deadlocks_detected == 0
        assert sorted(x for x in first.finished if isinstance(x, str)) == [
            "ab",
            "ba",
        ]
        assert_first_run_avoided(runtime, history)


class TestAioLooperInversion:
    def test_trace_mined_first_run_avoided(self):
        recorder = make_aio_runtime()
        events = record_events(recorder)
        outcome = asyncio.run(run_looper_inversion(recorder, serial=True))
        assert outcome.completed
        assert outcome.deadlocks_detected == 0

        predictions = mine_events(events)
        assert predictions, "serial loopers must expose the inversion"
        history = History()
        assert seed_predictions(history, predictions) >= 1

        runtime = make_aio_runtime(history=history)
        first = asyncio.run(run_looper_inversion(runtime))
        assert first.completed
        assert first.deadlocks_detected == 0
        assert_first_run_avoided(runtime, history)


class TestPromotionPersists:
    def test_promotion_survives_disk_round_trip(self, tmp_path):
        """The promoted antibody is in the *saved* history, not just RAM."""
        recorder = make_runtime(yield_timeout=0.5)
        events = record_events(recorder)
        run_dining_philosophers(recorder, philosophers=3, meals=1, serial=True)
        history = History()
        seed_predictions(history, mine_events(events))

        runtime = make_runtime(history=history, yield_timeout=0.5)
        first = run_dining_philosophers(
            runtime, philosophers=3, meals=2, think_seconds=0.002
        )
        assert first.completed and first.deadlocks_detected == 0
        assert runtime.stats.predictions_promoted >= 1

        path = tmp_path / "immunity.json"
        history.save(path)
        reloaded = History.load(path)
        assert reloaded.provenance_counts().get("promoted", 0) >= 1
