"""Building signatures out of detected cycles.

Detection itself is in :mod:`repro.core.cycle`; this module converts the
cycles it reports into :class:`~repro.core.signature.DeadlockSignature`
objects:

* a :class:`~repro.core.cycle.LockCycle` becomes a *deadlock* signature:
  one entry per thread, outer = where the thread acquired the lock it
  holds in the cycle, inner = where it is blocked right now (§2.2);
* an :class:`~repro.core.cycle.ExtendedCycle` (contains yield edges)
  becomes a *starvation* signature, with a yielding thread contributing
  the position of the acquisition it deferred.

Locks acquired while Dimmunix was disabled carry no acquisition stack;
their entries use a sentinel frame so the signature stays well-formed and
visibly marked.
"""

from __future__ import annotations

from typing import Optional

from repro.core.callstack import CallStack
from repro.core.cycle import ExtendedCycle, LockCycle
from repro.core.node import LockNode, ThreadNode
from repro.core.signature import (
    KIND_DEADLOCK,
    KIND_STARVATION,
    DeadlockSignature,
    SignatureEntry,
)

UNKNOWN_STACK = CallStack.single("<unknown>", 0, "<untracked-acquisition>")


def _stack_or_unknown(stack: Optional[CallStack]) -> CallStack:
    return stack if stack is not None and len(stack) > 0 else UNKNOWN_STACK


def signature_from_cycle(cycle: LockCycle) -> DeadlockSignature:
    """The paper's signature extraction: pairs of (outer, inner) stacks.

    For the cycle ``l1 -> t1 -> l2 -> t2 -> l1`` the signature is
    ``{(CSout1, CSin1), (CSout2, CSin2)}`` where ``CSouti`` is
    ``li.acqPos`` (stack at acquisition, recorded on the hold edge) and
    ``CSini`` is the stack of ``ti``'s pending request.
    """
    entries = []
    for index, thread in enumerate(cycle.threads):
        held = cycle.held_lock_of(index)
        outer = _stack_or_unknown(held.acq_stack)
        inner = _stack_or_unknown(thread.request_stack)
        entries.append(SignatureEntry(outer=outer, inner=inner))
    return DeadlockSignature(entries, kind=KIND_DEADLOCK)


def _blocked_stack(thread: ThreadNode) -> Optional[CallStack]:
    if thread.request_stack is not None:
        return thread.request_stack
    return thread.yield_stack


def _link_lock(
    predecessor: ThreadNode, successor: ThreadNode
) -> Optional[LockNode]:
    """The lock through which ``predecessor`` waits on ``successor``.

    For a request edge it is the requested lock (owned by the successor);
    for a yield edge it is the witness lock the successor holds or was
    granted.
    """
    if (
        predecessor.requesting is not None
        and predecessor.requesting.owner is successor
    ):
        return predecessor.requesting
    for witness_thread, witness_lock in predecessor.yield_witnesses:
        if witness_thread is successor:
            return witness_lock
    return None


def signature_from_extended(cycle: ExtendedCycle) -> DeadlockSignature:
    """Signature of an avoidance-induced deadlock (starvation).

    Each thread on the cycle contributes one entry. For a thread reached
    through a lock edge, the outer stack is where it acquired the linking
    lock; for a yielding thread, the outer stack is the acquisition it
    deferred — that is the position whose occupation must be avoided for
    the starvation not to recur.
    """
    threads = cycle.threads
    count = len(threads)
    entries = []
    for index, thread in enumerate(threads):
        predecessor = threads[index - 1] if index > 0 else threads[-1]
        if thread.yielding_on is not None:
            outer = _stack_or_unknown(thread.yield_stack)
        else:
            link = _link_lock(predecessor, thread)
            outer = _stack_or_unknown(link.acq_stack if link else None)
        inner = _stack_or_unknown(_blocked_stack(thread))
        entries.append(SignatureEntry(outer=outer, inner=inner))
    if count == 1:
        # A self-starvation (the yielding thread is its own witness owner)
        # still needs a well-formed signature.
        entries = entries[:1]
    return DeadlockSignature(entries, kind=KIND_STARVATION)


def starvation_signature_for_timeout(thread: ThreadNode) -> DeadlockSignature:
    """Build a starvation signature from a timed-out yield (safety net).

    Used by real-thread adapters when a thread has been parked on a
    signature longer than ``yield_timeout``: the structural detector may
    have no cycle (e.g. the witness thread is blocked in native code the
    RAG cannot see), but the thread is starving all the same.
    """
    entries = [
        SignatureEntry(
            outer=_stack_or_unknown(thread.yield_stack),
            inner=_stack_or_unknown(thread.yield_stack),
        )
    ]
    for _witness_thread, witness_lock in thread.yield_witnesses:
        entries.append(
            SignatureEntry(
                outer=_stack_or_unknown(witness_lock.acq_stack),
                inner=_stack_or_unknown(witness_lock.acq_stack),
            )
        )
    return DeadlockSignature(entries, kind=KIND_STARVATION)
