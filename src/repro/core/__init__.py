"""Dimmunix core: detection, signatures, history, avoidance.

This subpackage is the paper's primary contribution in pure-algorithm
form. It has no threading dependencies — adapters in
:mod:`repro.runtime` (real threads) and :mod:`repro.dalvik` (simulated VM)
drive it and implement the blocking it prescribes.
"""

from repro.core.avoidance import InstantiationChecker
from repro.core.callstack import CallStack, Frame
from repro.core.cycle import (
    ExtendedCycle,
    LockCycle,
    find_any_lock_cycle,
    find_extended_cycle,
    find_lock_cycle,
)
from repro.core.detector import (
    signature_from_cycle,
    signature_from_extended,
    starvation_signature_for_timeout,
)
from repro.core.engine import (
    DimmunixCore,
    EngineSnapshot,
    ReleaseResult,
    RequestResult,
    RequestVerdict,
)
from repro.core.events import (
    AcquiredEvent,
    DetectionEvent,
    Event,
    EventBus,
    EventCounter,
    EventLog,
    HistorySavedEvent,
    JsonlWriter,
    MatchCappedEvent,
    ReleaseEvent,
    RequestEvent,
    ResumeEvent,
    StarvationEvent,
    Subscription,
    YieldEvent,
    event_from_dict,
    event_to_dict,
)
from repro.core.history import (
    History,
    HistoryFullError,
    load_or_empty,
    open_history,
)
from repro.core.node import LockNode, ThreadNode
from repro.core.position import Position, PositionQueue, PositionTable
from repro.core.rag import ResourceAllocationGraph
from repro.core.signature import (
    KIND_DEADLOCK,
    KIND_STARVATION,
    DeadlockSignature,
    SignatureEntry,
)
from repro.core.stats import DimmunixStats, MemoryFootprint
from repro.core.store import (
    HistoryStore,
    JsonlStore,
    MemoryStore,
    SqliteStore,
    WriteBehindPersister,
    open_store,
    parse_history_url,
)

__all__ = [
    "CallStack",
    "Frame",
    "DeadlockSignature",
    "SignatureEntry",
    "KIND_DEADLOCK",
    "KIND_STARVATION",
    "History",
    "HistoryFullError",
    "load_or_empty",
    "open_history",
    "HistoryStore",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "WriteBehindPersister",
    "open_store",
    "parse_history_url",
    "Position",
    "PositionQueue",
    "PositionTable",
    "ThreadNode",
    "LockNode",
    "ResourceAllocationGraph",
    "LockCycle",
    "ExtendedCycle",
    "find_lock_cycle",
    "find_extended_cycle",
    "find_any_lock_cycle",
    "signature_from_cycle",
    "signature_from_extended",
    "starvation_signature_for_timeout",
    "InstantiationChecker",
    "DimmunixCore",
    "EngineSnapshot",
    "RequestResult",
    "ReleaseResult",
    "RequestVerdict",
    "DimmunixStats",
    "MemoryFootprint",
    "Event",
    "RequestEvent",
    "AcquiredEvent",
    "ReleaseEvent",
    "YieldEvent",
    "ResumeEvent",
    "DetectionEvent",
    "StarvationEvent",
    "MatchCappedEvent",
    "HistorySavedEvent",
    "EventBus",
    "Subscription",
    "EventCounter",
    "EventLog",
    "JsonlWriter",
    "event_to_dict",
    "event_from_dict",
]
