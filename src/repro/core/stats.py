"""Event counters for a Dimmunix instance.

The paper reports performance and memory overheads; this module provides
the raw counters from which the benchmark harness derives them. Counters
are plain integers mutated under the adapter's global lock, so no atomics
are needed — the same reasoning the paper uses for its global-lock design.

Since the event-stream redesign, the lifecycle counters (requests,
acquisitions, releases, yields, wakeups, detections, starvations,
notifications) are no longer incremented inline by the engine: the engine
publishes typed events on its :class:`~repro.core.events.EventBus` and a
``DimmunixStats`` instance is just the first subscriber (see
:meth:`DimmunixStats.on_event`). The fine-grained work counters
(``instantiation_checks``, ``matching_steps``) and the adapter-side
timings stay direct — they are hot-path tallies, not lifecycle events.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

# Event kind -> counter attribute for the 1:1 lifecycle counters. The
# parity is load-bearing: tests assert event-derived counts equal these.
_EVENT_COUNTERS = {
    "request": "requests",
    "acquired": "acquisitions",
    "release": "releases",
    "yield": "yields",
    "resume": "yield_wakeups",
    "detection": "deadlocks_detected",
    "starvation": "starvations_detected",
    "predicted-seeded": "predictions_seeded",
    "livelock-suspected": "livelock_suspects",
    "watchdog-mitigation": "watchdog_mitigations",
}


@dataclass
class DimmunixStats:
    """Counters incremented by the core engine and its adapters."""

    requests: int = 0
    acquisitions: int = 0
    releases: int = 0
    waits: int = 0
    deadlocks_detected: int = 0
    starvations_detected: int = 0
    yields: int = 0
    yield_wakeups: int = 0
    notifications: int = 0
    instantiation_checks: int = 0
    matching_steps: int = 0
    # Budgeted-matcher tallies (hot-path, checker-incremented like
    # matching_steps): checks that exhausted match_step_budget, and the
    # subset that answered through the weak-deadlock-set relaxation
    # (match_cap_policy="weak"). Each cap also surfaces as one
    # MatchCappedEvent when the check ran inside the engine.
    match_caps: int = 0
    weak_fallbacks: int = 0
    signatures_added: int = 0
    duplicate_signatures: int = 0
    avoided_instantiations: int = 0
    # Predictive-immunity tallies: predictions_seeded counts
    # PredictedSeededEvents on this source (the 1:1 lifecycle rule);
    # the other three are direct engine/history tallies —
    # avoided_instantiations whose signature was predicted or promoted,
    # predicted signatures upgraded to promoted by a real avoidance,
    # and predicted signatures dropped by the predicted_ttl_runs policy.
    predictions_seeded: int = 0
    predicted_avoidances: int = 0
    predictions_promoted: int = 0
    predictions_expired: int = 0
    # Fleet-sync tallies, accumulated from FleetSyncEvents on this
    # source (published by the SyncPump the engine attaches when
    # fleet_sync_interval is configured): signatures pulled from the
    # fleet, signatures pushed (or spilled-then-replayed) to it,
    # unreachable-server failures, and spill-journal entries replayed
    # after a partition healed.
    sync_pulls: int = 0
    sync_pushed: int = 0
    sync_failures: int = 0
    spill_replayed: int = 0
    # Liveness-watchdog tallies (1:1 lifecycle rule): suspicion and
    # mitigation events published by the LivenessWatchdog under this
    # source — the counter form of the llkd escalation ladder.
    livelock_suspects: int = 0
    watchdog_mitigations: int = 0
    bypasses_granted: int = 0
    starvation_overrides: int = 0
    # Capture fast path tallies (hot-path, engine-incremented like
    # matching_steps — not event-derived): acquisitions that took the
    # no-history fast path, and positions demoted back to the exact
    # path because history/fleet sync/predictions made them hot after
    # the fast path had validated them cold. Note requests/acquisitions/
    # releases stay exact on the fast path too: when no external
    # subscriber wants lifecycle events the engine bumps them directly
    # instead of publishing.
    fastpath_acquires: int = 0
    fastpath_demotions: int = 0
    stack_retrievals: int = 0
    stack_retrieval_ns: int = 0
    request_ns: int = 0
    # Adapter-side tallies added with the asyncio layer: execution units
    # registered as RAG nodes by a cooperative adapter, and granted
    # requests rolled back before acquisition (detection policies,
    # failed physical acquires, cancelled awaits).
    tasks_registered: int = 0
    requests_cancelled: int = 0

    def on_event(self, event) -> None:
        """Derive the lifecycle counters from the typed event stream.

        Registered by :class:`~repro.core.engine.DimmunixCore` as the
        first subscriber on its bus (filtered to its own source), so the
        counters stay exactly backward-compatible while every other
        consumer reads the same stream.
        """
        counter = _EVENT_COUNTERS.get(event.kind)
        if counter is not None:
            setattr(self, counter, getattr(self, counter) + 1)
        if event.kind == "release":
            self.notifications += event.notified
        elif event.kind == "fleet-sync":
            self.sync_pulls += event.pulled
            self.sync_pushed += event.pushed
            self.sync_failures += event.failures
            self.spill_replayed += event.spill_replayed

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy, suitable for asserting deltas in tests."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "DimmunixStats") -> None:
        """Accumulate another instance's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


@dataclass
class MemoryFootprint:
    """Approximate bytes used by Dimmunix structures in one process.

    Mirrors the memory-overhead accounting of §5: positions, RAG nodes,
    queue cells, per-thread stack buffers, and history signatures are the
    structures Dimmunix adds on top of the vanilla VM.
    """

    positions: int = 0
    queue_cells: int = 0
    thread_nodes: int = 0
    lock_nodes: int = 0
    stack_buffers: int = 0
    signatures: int = 0
    bytes_total: int = 0

    extra: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        data = {
            "positions": self.positions,
            "queue_cells": self.queue_cells,
            "thread_nodes": self.thread_nodes,
            "lock_nodes": self.lock_nodes,
            "stack_buffers": self.stack_buffers,
            "signatures": self.signatures,
            "bytes_total": self.bytes_total,
        }
        data.update(self.extra)
        return data
