"""Cycle detection over the resource-allocation graph.

Two detectors are provided:

* :func:`find_lock_cycle` — the fast path run on every lock request. For
  mutexes, each thread waits for at most one lock and each lock has at most
  one owner, so the wait-for relation restricted to request/hold edges is a
  partial function and detection is a simple chain walk from the requested
  lock back to the requester: ``O(cycle length)``, no allocation beyond the
  result. This is the operation the paper keeps on the critical path.

* :func:`find_extended_cycle` — the starvation detector. When avoidance
  parks a thread on a signature, the thread "waits for" the witness threads
  whose queue occupancy blocks it (yield edges). Those edges can branch, so
  this detector is an iterative DFS over threads. A cycle that traverses at
  least one yield edge is an avoidance-induced deadlock (starvation); a
  cycle with none is a plain deadlock and is reported by the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.node import LockNode, ThreadNode


@dataclass(frozen=True)
class LockCycle:
    """A deadlock cycle.

    Ordering convention: ``threads[i]`` *waits for* ``locks[i]`` and
    *holds* ``locks[i-1]`` (indices mod ``n``). ``threads[0]`` is the
    requester whose request closed the cycle.
    """

    threads: tuple[ThreadNode, ...]
    locks: tuple[LockNode, ...]

    def held_lock_of(self, index: int) -> LockNode:
        """The lock held by ``threads[index]`` within this cycle."""
        return self.locks[index - 1] if index > 0 else self.locks[-1]

    def __len__(self) -> int:
        return len(self.threads)


@dataclass(frozen=True)
class ExtendedCycle:
    """A cycle in the RAG extended with yield edges.

    ``threads`` lists the distinct threads on the cycle in order;
    ``yielders`` is the subset currently parked by avoidance. If
    ``yielders`` is empty the cycle is a plain deadlock.
    """

    threads: tuple[ThreadNode, ...]
    yielders: tuple[ThreadNode, ...]

    @property
    def is_starvation(self) -> bool:
        return bool(self.yielders)


def find_lock_cycle(
    requester: ThreadNode, requested: LockNode
) -> Optional[LockCycle]:
    """Detect a deadlock that would involve ``requester`` waiting for
    ``requested``.

    The walk follows ``lock.owner`` then ``owner.requesting`` alternately.
    It terminates because each step visits a new thread and stops at any
    free lock or non-waiting thread.
    """
    threads: list[ThreadNode] = [requester]
    locks: list[LockNode] = [requested]
    lock: Optional[LockNode] = requested
    visited: set[int] = {requester.node_id}
    while lock is not None:
        owner = lock.owner
        if owner is requester:
            return LockCycle(tuple(threads), tuple(locks))
        if owner is None or owner.node_id in visited:
            # Free lock: no deadlock. Already-visited owner: a cycle not
            # passing through the requester; it is reported when its own
            # closing edge is requested.
            return None
        visited.add(owner.node_id)
        threads.append(owner)
        lock = owner.requesting
        if lock is not None:
            locks.append(lock)
    return None


def _thread_successors(thread: ThreadNode) -> list[ThreadNode]:
    """Threads that ``thread`` directly waits on (one wait-for step)."""
    successors: list[ThreadNode] = []
    if thread.requesting is not None and thread.requesting.owner is not None:
        successors.append(thread.requesting.owner)
    if thread.yielding_on is not None:
        for witness_thread, _witness_lock in thread.yield_witnesses:
            if witness_thread is not thread:
                successors.append(witness_thread)
    return successors


def find_extended_cycle(start: ThreadNode) -> Optional[ExtendedCycle]:
    """Iterative DFS for a wait cycle through ``start``, yield edges
    included. Returns the first such cycle, or ``None``.
    """
    path: list[ThreadNode] = [start]
    iters = [iter(_thread_successors(start))]
    on_path: set[int] = {start.node_id}
    done: set[int] = set()

    while iters:
        try:
            succ = next(iters[-1])
        except StopIteration:
            finished = path.pop()
            iters.pop()
            on_path.discard(finished.node_id)
            done.add(finished.node_id)
            continue
        if succ is start:
            cycle_threads = tuple(path)
            yielders = tuple(
                t for t in cycle_threads if t.yielding_on is not None
            )
            return ExtendedCycle(cycle_threads, yielders)
        if succ.node_id in on_path or succ.node_id in done:
            continue
        path.append(succ)
        on_path.add(succ.node_id)
        iters.append(iter(_thread_successors(succ)))
    return None


def find_any_lock_cycle(threads: Iterable[ThreadNode]) -> Optional[LockCycle]:
    """Scan the whole RAG for any deadlock cycle (diagnostics, tests).

    Unlike :func:`find_lock_cycle`, which is anchored at a requester, this
    walks from every blocked thread. Used by the simulated VM to report a
    global stall precisely and by property tests as an oracle.
    """
    for thread in threads:
        if thread.requesting is None:
            continue
        cycle = find_lock_cycle(thread, thread.requesting)
        if cycle is not None:
            return cycle
    return None
