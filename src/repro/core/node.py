"""Resource-allocation-graph nodes.

The paper embeds a ``Node`` struct directly in Dalvik's ``Thread`` and
``Monitor`` structs so RAG lookup is zero-overhead. We mirror that: the
adapters (real-thread runtime, simulated Dalvik VM) allocate one
:class:`ThreadNode` per thread and one :class:`LockNode` per monitor and
hand the same objects to every engine call — the engine never looks nodes
up in a map on the hot path.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.callstack import CallStack
    from repro.core.position import Position
    from repro.core.signature import DeadlockSignature

_node_ids = itertools.count(1)


class ThreadNode:
    """RAG node for one thread.

    Fields are mutated only by the core engine, under the adapter's global
    lock:

    * ``requesting`` / ``request_pos`` / ``request_stack`` — the pending
      lock request (the RAG request edge), or ``None``.
    * ``held`` — locks currently owned (the reverse view of hold edges).
    * ``yielding_on`` / ``yield_witnesses`` / ``yield_pos`` /
      ``yield_stack`` — set while the thread is parked by avoidance: the
      signature it yields on, the (thread, lock) witness pairs whose queue
      occupancy made the instantiation possible, and the position/stack of
      the acquisition it deferred. The witness pairs are the *yield edges*
      used for starvation detection.
    * ``bypass`` — one-shot grants issued after a starvation: the thread
      may ignore these signatures on its next matching request.
    * ``request_since_ns`` — monotonic stamp of the pending request's
      ``RequestEvent`` (``None`` when no request is outstanding). Read
      by telemetry (the ``acquire`` phase histogram and the RAG dump's
      per-waiter request age); the ROADMAP's livelock watchdog is the
      next consumer.
    """

    __slots__ = (
        "node_id",
        "name",
        "requesting",
        "request_pos",
        "request_stack",
        "request_since_ns",
        "held",
        "yielding_on",
        "yield_witnesses",
        "yield_pos",
        "yield_stack",
        "bypass",
        "stack_buffer",
    )

    def __init__(self, name: str = "") -> None:
        self.node_id: int = next(_node_ids)
        self.name = name or f"thread-{self.node_id}"
        self.requesting: Optional["LockNode"] = None
        self.request_pos: Optional["Position"] = None
        self.request_stack: Optional["CallStack"] = None
        self.request_since_ns: Optional[int] = None
        self.held: set["LockNode"] = set()
        self.yielding_on: Optional["DeadlockSignature"] = None
        self.yield_witnesses: tuple[tuple["ThreadNode", "LockNode"], ...] = ()
        self.yield_pos: Optional["Position"] = None
        self.yield_stack: Optional["CallStack"] = None
        self.bypass: set["DeadlockSignature"] = set()
        # The paper pre-allocates a per-thread buffer so call-stack
        # retrieval never allocates; adapters may park theirs here.
        self.stack_buffer: Optional[object] = None

    def is_blocked(self) -> bool:
        """True when the thread occupies a request or yield edge."""
        return self.requesting is not None or self.yielding_on is not None

    def __repr__(self) -> str:
        state = "runnable"
        if self.requesting is not None:
            state = f"requesting {self.requesting.name}"
        elif self.yielding_on is not None:
            state = "yielding"
        return f"ThreadNode({self.name}, {state}, holds={len(self.held)})"


class LockNode:
    """RAG node for one lock (monitor).

    ``owner`` is the hold edge; ``acq_pos`` / ``acq_stack`` record where
    the owner acquired the lock — the paper's ``l.acqPos``, which becomes
    the *outer* call stack if this lock ever participates in a deadlock.
    """

    __slots__ = ("node_id", "name", "owner", "acq_pos", "acq_stack")

    def __init__(self, name: str = "") -> None:
        self.node_id: int = next(_node_ids)
        self.name = name or f"lock-{self.node_id}"
        self.owner: Optional[ThreadNode] = None
        self.acq_pos: Optional["Position"] = None
        self.acq_stack: Optional["CallStack"] = None

    def __repr__(self) -> str:
        owner = self.owner.name if self.owner is not None else None
        return f"LockNode({self.name}, owner={owner})"
