"""Positions and their thread queues.

A :class:`Position` is a unique object per program location (truncated call
stack) at which monitor acquisitions happen — the paper's ``struct
Position``. Each position carries a queue of ``(thread, lock)`` entries:
the threads that currently *hold*, or were *allowed by Dimmunix to
acquire*, a lock at this position. The avoidance module matches history
signatures against these queues.

Memory discipline follows §4 of the paper: queue cells removed from the
main queue are parked on a per-position free list (the paper's "second
queue") and reused for later insertions, so steady-state operation does not
allocate. :class:`PositionTable` interns positions so each location has
exactly one object — the analog of the paper's global ``positions`` map,
initialized per process by ``initDimmunix``.

Queue entries reference the RAG node objects directly (no id indirection),
mirroring the paper's embedding of ``Node`` structs in ``Thread`` and
``Monitor`` for zero-overhead lookup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.core.callstack import CallStack

if TYPE_CHECKING:
    from repro.core.node import LockNode, ThreadNode

PositionKey = tuple[tuple[str, int], ...]


class _QueueCell:
    """A reusable queue cell holding one (thread, lock) pair."""

    __slots__ = ("thread", "lock", "next")

    def __init__(self) -> None:
        self.thread: Optional["ThreadNode"] = None
        self.lock: Optional["LockNode"] = None
        self.next: Optional[_QueueCell] = None


class PositionQueue:
    """Singly-linked queue of (thread, lock) entries with a free list.

    The main list stores live entries; cells removed from it are pushed on
    the free list and reused by later :meth:`add` calls, mirroring the
    two-queue allocation-avoidance scheme described in §4. Cells on the
    free list drop their node references so they never retain dead threads
    or monitors.

    ``size`` is a public read-only-by-convention attribute (``len()``
    delegates to it): the avoidance matcher's occupancy guard reads it on
    every check, and a plain attribute probe keeps that guard free of
    call overhead.
    """

    __slots__ = ("_head", "_free", "size", "allocations", "reuses")

    def __init__(self) -> None:
        self._head: Optional[_QueueCell] = None
        self._free: Optional[_QueueCell] = None
        self.size = 0
        self.allocations = 0
        self.reuses = 0

    def __len__(self) -> int:
        return self.size

    def add(self, thread: "ThreadNode", lock: "LockNode") -> None:
        """Insert an entry, reusing a free-list cell when one is available."""
        cell = self._free
        if cell is not None:
            self._free = cell.next
            self.reuses += 1
        else:
            cell = _QueueCell()
            self.allocations += 1
        cell.thread = thread
        cell.lock = lock
        cell.next = self._head
        self._head = cell
        self.size += 1

    def remove(self, thread: "ThreadNode", lock: "LockNode") -> bool:
        """Remove one matching entry; the cell goes to the free list.

        Returns ``False`` when no entry matches, which callers treat as a
        no-op (e.g. releasing a lock acquired before Dimmunix was enabled).
        """
        prev: Optional[_QueueCell] = None
        cell = self._head
        while cell is not None:
            if cell.thread is thread and cell.lock is lock:
                if prev is None:
                    self._head = cell.next
                else:
                    prev.next = cell.next
                cell.thread = None
                cell.lock = None
                cell.next = self._free
                self._free = cell
                self.size -= 1
                return True
            prev = cell
            cell = cell.next
        return False

    def entries(self) -> Iterator[tuple["ThreadNode", "LockNode"]]:
        """Iterate live (thread, lock) entries, most recent first."""
        cell = self._head
        while cell is not None:
            # Cells on the main list always carry live nodes.
            yield cell.thread, cell.lock  # type: ignore[misc]
            cell = cell.next

    def contains_thread(self, thread: "ThreadNode") -> bool:
        return any(entry_thread is thread for entry_thread, _lock in self.entries())

    def free_list_length(self) -> int:
        count = 0
        cell = self._free
        while cell is not None:
            count += 1
            cell = cell.next
        return count


class Position:
    """A unique program location at which locks are acquired.

    ``in_history`` is a cached flag: it is true when this position appears
    as an *outer* position of at least one history signature, which is the
    fast-path test on the release path (§4: ``pos->inHistory``).

    ``fastpath_epoch`` backs the capture fast path's no-history check:
    the value of the history's ``index_epoch`` at which this position
    was last verified to have zero recorded signatures, or ``-1`` when
    it was never verified (or has been demoted — a position that went
    hot resets to ``-1`` forever, since ``in_history`` never clears).
    The engine re-runs ``contains_position`` only when the epoch moved,
    so fleet pulls / predictions / history merges are observed on the
    very next fast-path acquire while steady state pays one int compare.
    """

    __slots__ = ("key", "stack", "queue", "in_history", "index", "fastpath_epoch")

    def __init__(self, key: PositionKey, stack: CallStack, index: int) -> None:
        self.key = key
        self.stack = stack
        self.queue = PositionQueue()
        self.in_history = False
        self.index = index
        self.fastpath_epoch = -1

    def __repr__(self) -> str:
        where = "|".join(f"{file}:{line}" for file, line in self.key) or "<empty>"
        return f"Position({where}, queued={len(self.queue)}, in_history={self.in_history})"


class PositionTable:
    """Interning table: one :class:`Position` per program location.

    The table is per Dimmunix instance (per process on the phone). Lookup
    is a single dict probe; the paper achieves the equivalent constant-time
    lookup with a global hash map filled by ``initDimmunix``.
    """

    __slots__ = ("_by_key", "_by_index", "lookup")

    def __init__(self) -> None:
        self._by_key: dict[PositionKey, Position] = {}
        self._by_index: list[Position] = []
        # Public hot-path accessor: the avoidance matcher probes the
        # table tens of times per monitorenter, so the blessed way in is
        # a pre-bound ``dict.get`` — same cost as reaching into the
        # private dict, without any consumer depending on its name.
        self.lookup: Callable[[PositionKey], Optional[Position]] = (
            self._by_key.get
        )

    def intern(self, stack: CallStack) -> Position:
        """Return the unique position for ``stack`` (creating it if new)."""
        key = stack.key()
        position = self._by_key.get(key)
        if position is None:
            position = Position(key, stack, index=len(self._by_index))
            self._by_key[key] = position
            self._by_index.append(position)
        return position

    def get(self, key: PositionKey) -> Optional[Position]:
        return self._by_key.get(key)

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[Position]:
        return iter(self._by_index)

    def total_queue_allocations(self) -> int:
        return sum(position.queue.allocations for position in self._by_index)

    def total_queue_reuses(self) -> int:
        return sum(position.queue.reuses for position in self._by_index)
