"""Deadlock signatures — the "antibodies" of deadlock immunity.

A signature approximates the execution flow that led to a deadlock. It is
a set of (outer, inner) call-stack pairs, one pair per deadlocked thread:
the *outer* stack is where the thread acquired the lock it held in the
cycle, the *inner* stack is where it was blocked at the moment of the
deadlock. Per §2.1, a deadlock bug is uniquely delimited by the outer and
inner positions; only the outer positions drive avoidance — the inner
stacks are kept for diagnosis.

Starvation (avoidance-induced deadlock) signatures share the same shape
but are marked with ``kind='starvation'``; they are matched at *yield*
time rather than acquire time, and their effect is inverted: a match means
"do not park here again" (§2.2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro.core.callstack import CallStack
from repro.core.position import PositionKey

KIND_DEADLOCK = "deadlock"
KIND_STARVATION = "starvation"

# Provenance taxonomy: how an antibody entered the history. ``earned``
# is the paper's model (recorded at a real deadlock); ``predicted`` came
# from the static lint or trace miner before any infection; ``promoted``
# is a predicted signature that triggered a real avoidance and thereby
# proved itself. Rank orders upgrade precedence: merging two signatures
# with the same canonical key keeps the higher-ranked provenance.
PROVENANCE_EARNED = "earned"
PROVENANCE_PREDICTED = "predicted"
PROVENANCE_PROMOTED = "promoted"

PROVENANCE_RANK = {
    PROVENANCE_PREDICTED: 0,
    PROVENANCE_PROMOTED: 1,
    PROVENANCE_EARNED: 2,
}


def provenance_rank(provenance: str) -> int:
    return PROVENANCE_RANK[provenance]


@dataclass(frozen=True)
class SignatureEntry:
    """One deadlocked thread's contribution: (outer, inner) call stacks."""

    outer: CallStack
    inner: CallStack

    def to_json(self) -> dict:
        return {"outer": self.outer.to_json(), "inner": self.inner.to_json()}

    @classmethod
    def from_json(cls, data: dict) -> "SignatureEntry":
        return cls(
            outer=CallStack.from_json(data["outer"]),
            inner=CallStack.from_json(data["inner"]),
        )


class DeadlockSignature:
    """An immutable signature with value identity.

    Equality and hashing use the *canonical key*: the sorted multiset of
    (outer, inner) position pairs plus the kind. Two occurrences of the
    same bug therefore produce equal signatures regardless of thread
    naming or cycle rotation, which is what makes history deduplication
    work.

    ``provenance`` and ``predicted_age`` are mutable *metadata*, not
    identity: a predicted antibody and the earned antibody for the same
    bug are the same signature, which is exactly what lets the store
    upgrade one into the other in place.
    """

    __slots__ = (
        "entries",
        "kind",
        "provenance",
        "predicted_age",
        "_canonical",
        "_canonical_text",
        "_outer_keys",
        "outer_collapsed",
        "_hash",
    )

    def __init__(
        self,
        entries: Iterable[SignatureEntry],
        kind: str = KIND_DEADLOCK,
        provenance: str = PROVENANCE_EARNED,
        predicted_age: int = 0,
    ) -> None:
        if kind not in (KIND_DEADLOCK, KIND_STARVATION):
            raise ValueError(f"unknown signature kind: {kind!r}")
        if provenance not in PROVENANCE_RANK:
            raise ValueError(f"unknown provenance: {provenance!r}")
        self.provenance = provenance
        self.predicted_age = int(predicted_age)
        self.entries: tuple[SignatureEntry, ...] = tuple(entries)
        if not self.entries:
            raise ValueError("a signature needs at least one entry")
        self.kind = kind
        self._canonical = (
            kind,
            tuple(
                sorted(
                    (entry.outer.key(), entry.inner.key())
                    for entry in self.entries
                )
            ),
        )
        # Precomputed: outer keys and the hash are consulted on every
        # avoidance check, which is the hot path (§4 optimizes exactly
        # this kind of lookup).
        self._outer_keys: tuple[PositionKey, ...] = tuple(
            entry.outer.key() for entry in self.entries
        )
        # Public, precomputed: True when two entries share an outer
        # position (threads deadlocking through one line). The matcher
        # branches on this once per check — collapsed signatures need
        # slot grouping, the common all-distinct shape skips it.
        self.outer_collapsed: bool = len(set(self._outer_keys)) != len(
            self._outer_keys
        )
        self._hash = hash(self._canonical)
        self._canonical_text: str = ""

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of threads involved in the recorded deadlock."""
        return len(self.entries)

    def outer_position_keys(self) -> tuple[PositionKey, ...]:
        """The outer positions, in entry order (may repeat)."""
        return self._outer_keys

    def inner_position_keys(self) -> tuple[PositionKey, ...]:
        return tuple(entry.inner.key() for entry in self.entries)

    def contains_outer(self, key: PositionKey) -> bool:
        return any(entry.outer.key() == key for entry in self.entries)

    @property
    def is_starvation(self) -> bool:
        return self.kind == KIND_STARVATION

    @property
    def is_predicted(self) -> bool:
        """Still unproven: seeded by prediction, never matched for real."""
        return self.provenance == PROVENANCE_PREDICTED

    # ------------------------------------------------------------------
    # value identity
    # ------------------------------------------------------------------

    def canonical_key(self):
        return self._canonical

    def canonical_text(self) -> str:
        """The canonical key as stable JSON text, computed once.

        This string is the sqlite primary key, the shard-routing hash
        input, and the discard wire format — every store layer needs
        it on every write, so it is cached here rather than re-dumped
        per layer. Safe to cache: provenance mutates, identity never.
        """
        if not self._canonical_text:
            self._canonical_text = json.dumps(
                self._canonical, sort_keys=True
            )
        return self._canonical_text

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeadlockSignature):
            return NotImplemented
        return self._canonical == other._canonical

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        # Earned signatures serialize exactly as they always have —
        # histories that never saw a prediction stay byte-identical and
        # legacy readers keep working.
        data = {
            "kind": self.kind,
            "entries": [entry.to_json() for entry in self.entries],
        }
        if self.provenance != PROVENANCE_EARNED:
            data["provenance"] = self.provenance
            if self.predicted_age:
                data["predicted_age"] = self.predicted_age
        return data

    @classmethod
    def from_json(cls, data: dict) -> "DeadlockSignature":
        return cls(
            entries=[SignatureEntry.from_json(item) for item in data["entries"]],
            kind=data.get("kind", KIND_DEADLOCK),
            provenance=data.get("provenance", PROVENANCE_EARNED),
            predicted_age=data.get("predicted_age", 0),
        )

    def __repr__(self) -> str:
        outers = ", ".join(
            "|".join(f"{f}:{l}" for f, l in entry.outer.key())
            for entry in self.entries
        )
        tag = "" if self.provenance == PROVENANCE_EARNED else f", {self.provenance}"
        return (
            f"DeadlockSignature(kind={self.kind}, size={self.size}, "
            f"outer=[{outers}]{tag})"
        )
