"""Pluggable backends for the persistent deadlock history.

Public surface::

    open_store("sqlite:///var/dimmunix/history.db")  -> SqliteStore
    open_store("jsonl:///var/dimmunix/a.history")    -> JsonlStore
    open_store("mem://")                             -> MemoryStore
    open_store("/var/dimmunix/a.history")            -> JsonlStore (legacy)

plus the :class:`HistoryStore` contract, the DSN helpers, and the
:class:`WriteBehindPersister` that moves flushing off the lock path.
See ``base.py`` for the design rationale.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.store.base import HistoryFullError, HistoryStore
from repro.core.store.jsonl import (
    FORMAT_NAME,
    FORMAT_VERSION,
    JsonlStore,
    read_signatures,
    write_snapshot,
)
from repro.core.store.memory import MemoryStore
from repro.core.store.persister import (
    MODE_DEFERRED,
    MODE_THREAD,
    WriteBehindPersister,
)
from repro.core.store.sqlite import SqliteStore
from repro.core.store.url import (
    DEFAULT_FLEET_PORT,
    KNOWN_SCHEMES,
    SCHEME_JSONL,
    SCHEME_MEM,
    SCHEME_SHARD,
    SCHEME_SQLITE,
    SCHEME_TCP,
    HistoryUrl,
    HistoryUrlError,
    format_history_url,
    parse_history_url,
)

_BACKENDS = {
    SCHEME_MEM: MemoryStore,
    SCHEME_JSONL: JsonlStore,
    SCHEME_SQLITE: SqliteStore,
}


def open_store(
    url: str | Path | HistoryUrl, max_signatures: int = 4096
) -> HistoryStore:
    """Open the history backend a DSN (or bare path) names."""
    parsed = url if isinstance(url, HistoryUrl) else parse_history_url(url)
    # The fleet backends import lazily: repro.core must not pull in the
    # distribution layer (sockets, asyncio) unless a fleet DSN asks.
    if parsed.scheme == SCHEME_SHARD:
        from repro.fleet.shard import ShardedStore

        kwargs = {}
        if parsed.durability is not None:
            kwargs["durability"] = parsed.durability
        return ShardedStore(
            parsed.path,
            max_signatures=max_signatures,
            shards=parsed.shards,
            **kwargs,
        )
    if parsed.scheme == SCHEME_TCP:
        from repro.fleet.remote import RemoteStore

        return RemoteStore(
            parsed.host, parsed.port, max_signatures=max_signatures
        )
    backend = _BACKENDS[parsed.scheme]
    if parsed.scheme == SCHEME_MEM:
        return backend(max_signatures=max_signatures)
    if parsed.scheme == SCHEME_SQLITE and parsed.durability is not None:
        return backend(
            parsed.path,
            max_signatures=max_signatures,
            durability=parsed.durability,
        )
    return backend(parsed.path, max_signatures=max_signatures)


__all__ = [
    "HistoryStore",
    "HistoryFullError",
    "MemoryStore",
    "JsonlStore",
    "SqliteStore",
    "WriteBehindPersister",
    "MODE_THREAD",
    "MODE_DEFERRED",
    "open_store",
    "HistoryUrl",
    "HistoryUrlError",
    "parse_history_url",
    "format_history_url",
    "KNOWN_SCHEMES",
    "SCHEME_MEM",
    "SCHEME_JSONL",
    "SCHEME_SQLITE",
    "SCHEME_SHARD",
    "SCHEME_TCP",
    "DEFAULT_FLEET_PORT",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "read_signatures",
    "write_snapshot",
]
