"""DSN-style addressing for history backends.

A history URL names *where* the persistent deadlock history lives and
*which* backend serves it::

    mem://                      in-process only (no persistence)
    jsonl:///var/dimmunix/a.history     append-only log, legacy-compatible
    sqlite:///var/dimmunix/history.db   indexed, multi-process-safe

Bare paths (no scheme) are accepted everywhere a URL is and map to
``jsonl://`` — the JSONL backend reads and writes the exact on-disk
format of the pre-store ``History.save()``, so every existing history
file keeps working under a DSN without migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import DimmunixError

SCHEME_MEM = "mem"
SCHEME_JSONL = "jsonl"
SCHEME_SQLITE = "sqlite"

KNOWN_SCHEMES = (SCHEME_MEM, SCHEME_JSONL, SCHEME_SQLITE)


class HistoryUrlError(DimmunixError, ValueError):
    """A history DSN could not be parsed or names an unknown backend."""


@dataclass(frozen=True)
class HistoryUrl:
    """A parsed history DSN: backend scheme plus (optional) file path."""

    scheme: str
    path: Optional[Path] = None

    def __str__(self) -> str:
        if self.path is None:
            return f"{self.scheme}://"
        # An absolute path naturally renders with the canonical triple
        # slash (scheme:// + /abs/path); relative paths keep two.
        return f"{self.scheme}://{self.path}"

    @property
    def persistent(self) -> bool:
        return self.scheme != SCHEME_MEM


def parse_history_url(url: str | Path) -> HistoryUrl:
    """Parse a history DSN (or bare path, which means ``jsonl://``).

    ``jsonl://relative/path`` and ``jsonl:///absolute/path`` are both
    accepted; ``mem://`` takes no path.
    """
    if isinstance(url, Path):
        return HistoryUrl(SCHEME_JSONL, url)
    text = str(url).strip()
    if not text:
        raise HistoryUrlError("empty history URL")
    if "://" not in text:
        # A bare filesystem path: the legacy spelling.
        return HistoryUrl(SCHEME_JSONL, Path(text))
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme not in KNOWN_SCHEMES:
        raise HistoryUrlError(
            f"unknown history backend {scheme!r} in {text!r} "
            f"(known: {', '.join(KNOWN_SCHEMES)})"
        )
    if scheme == SCHEME_MEM:
        if rest not in ("", "/"):
            raise HistoryUrlError(
                f"mem:// takes no path (got {text!r})"
            )
        return HistoryUrl(SCHEME_MEM, None)
    if not rest or rest == "/":
        raise HistoryUrlError(f"{scheme}:// needs a file path (got {text!r})")
    # jsonl:///abs/path keeps the leading slash; jsonl://rel/path is
    # relative. Both spellings of absolute ("//abs" vs "///abs") work.
    return HistoryUrl(scheme, Path(rest))


def format_history_url(scheme: str, path: Optional[Path | str]) -> str:
    """The canonical string form for a backend + path pair."""
    if scheme == SCHEME_MEM:
        return "mem://"
    if path is None:
        raise HistoryUrlError(f"{scheme}:// needs a path")
    return str(HistoryUrl(scheme, Path(path)))


__all__ = [
    "HistoryUrl",
    "HistoryUrlError",
    "parse_history_url",
    "format_history_url",
    "SCHEME_MEM",
    "SCHEME_JSONL",
    "SCHEME_SQLITE",
    "KNOWN_SCHEMES",
]
