"""DSN-style addressing for history backends.

A history URL names *where* the persistent deadlock history lives and
*which* backend serves it::

    mem://                      in-process only (no persistence)
    jsonl:///var/dimmunix/a.history     append-only log, legacy-compatible
    sqlite:///var/dimmunix/history.db   indexed, multi-process-safe
    shard:///var/dimmunix/pool?shards=8 N sqlite shards under one directory
    tcp://history.internal:7741         a dimmunix-serve fleet server

Bare paths (no scheme) are accepted everywhere a URL is and map to
``jsonl://`` — the JSONL backend reads and writes the exact on-disk
format of the pre-store ``History.save()``, so every existing history
file keeps working under a DSN without migration.

The two fleet schemes address the distribution layer
(:mod:`repro.fleet`): ``shard://`` points at a *directory* holding
``shards`` sqlite files (the count is fixed at creation and recorded in
the directory, so the query parameter is only needed the first time),
and ``tcp://`` names a remote antibody service by host and port (no
filesystem path at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.errors import DimmunixError

SCHEME_MEM = "mem"
SCHEME_JSONL = "jsonl"
SCHEME_SQLITE = "sqlite"
SCHEME_SHARD = "shard"
SCHEME_TCP = "tcp"

KNOWN_SCHEMES = (
    SCHEME_MEM,
    SCHEME_JSONL,
    SCHEME_SQLITE,
    SCHEME_SHARD,
    SCHEME_TCP,
)

#: default port of a ``dimmunix-serve`` fleet server
DEFAULT_FLEET_PORT = 7741


class HistoryUrlError(DimmunixError, ValueError):
    """A history DSN could not be parsed or names an unknown backend."""


@dataclass(frozen=True)
class HistoryUrl:
    """A parsed history DSN: backend scheme plus its address.

    File-backed schemes carry ``path``; ``tcp://`` carries ``host`` and
    ``port`` instead; ``shard://`` may carry an explicit ``shards``
    count (``None`` means "whatever the directory was created with, or
    the default for a new one").
    """

    scheme: str
    path: Optional[Path] = None
    host: Optional[str] = None
    port: Optional[int] = None
    shards: Optional[int] = None
    durability: Optional[str] = None

    def __str__(self) -> str:
        if self.scheme == SCHEME_TCP:
            return f"tcp://{self.host}:{self.port}"
        if self.path is None:
            return f"{self.scheme}://"
        # An absolute path naturally renders with the canonical triple
        # slash (scheme:// + /abs/path); relative paths keep two.
        base = f"{self.scheme}://{self.path}"
        params = []
        if self.scheme == SCHEME_SHARD and self.shards is not None:
            params.append(f"shards={self.shards}")
        if self.durability is not None:
            params.append(f"durability={self.durability}")
        if params:
            return f"{base}?{'&'.join(params)}"
        return base

    @property
    def persistent(self) -> bool:
        return self.scheme != SCHEME_MEM


#: ``?durability=`` values a file-backed sqlite DSN may carry.
DURABILITY_VALUES = ("normal", "full")


def _parse_file_query(
    scheme: str, text: str, query: str
) -> tuple[Optional[int], Optional[str]]:
    """The ``?shards=N`` / ``?durability=`` parameters of a file DSN.

    ``shards`` is ``shard://``-only (it is the hash modulus); both
    sqlite-backed schemes accept ``durability`` (``normal`` is the WAL
    fast path, ``full`` fsyncs every commit).
    """
    shards: Optional[int] = None
    durability: Optional[str] = None
    if not query:
        return shards, durability
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if key == "shards" and scheme == SCHEME_SHARD:
            if not value.isdigit() or int(value) < 1:
                raise HistoryUrlError(
                    f"shards must be a positive integer (got {text!r})"
                )
            shards = int(value)
        elif key == "durability":
            if value not in DURABILITY_VALUES:
                raise HistoryUrlError(
                    f"durability must be one of "
                    f"{', '.join(DURABILITY_VALUES)} (got {text!r})"
                )
            durability = value
        else:
            raise HistoryUrlError(
                f"unknown {scheme}:// parameter {key!r} in {text!r}"
            )
    return shards, durability


def parse_history_url(url: str | Path) -> HistoryUrl:
    """Parse a history DSN (or bare path, which means ``jsonl://``).

    ``jsonl://relative/path`` and ``jsonl:///absolute/path`` are both
    accepted; ``mem://`` takes no path; ``tcp://host[:port]`` takes no
    path (the port defaults to ``DEFAULT_FLEET_PORT``).
    """
    if isinstance(url, Path):
        return HistoryUrl(SCHEME_JSONL, url)
    text = str(url).strip()
    if not text:
        raise HistoryUrlError("empty history URL")
    if "://" not in text:
        # A bare filesystem path: the legacy spelling.
        return HistoryUrl(SCHEME_JSONL, Path(text))
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme not in KNOWN_SCHEMES:
        raise HistoryUrlError(
            f"unknown history backend {scheme!r} in {text!r} "
            f"(known: {', '.join(KNOWN_SCHEMES)})"
        )
    if scheme == SCHEME_MEM:
        if rest not in ("", "/"):
            raise HistoryUrlError(
                f"mem:// takes no path (got {text!r})"
            )
        return HistoryUrl(SCHEME_MEM, None)
    if scheme == SCHEME_TCP:
        authority = rest.rstrip("/")
        if not authority:
            raise HistoryUrlError(f"tcp:// needs host[:port] (got {text!r})")
        host, sep, port_text = authority.rpartition(":")
        if not sep:
            host, port_text = authority, str(DEFAULT_FLEET_PORT)
        if not host:
            raise HistoryUrlError(f"tcp:// needs a host (got {text!r})")
        if not port_text.isdigit() or not 0 < int(port_text) < 65536:
            raise HistoryUrlError(
                f"tcp:// port must be 1-65535 (got {text!r})"
            )
        return HistoryUrl(SCHEME_TCP, host=host, port=int(port_text))
    shards: Optional[int] = None
    durability: Optional[str] = None
    if scheme in (SCHEME_SHARD, SCHEME_SQLITE):
        rest, _, query = rest.partition("?")
        shards, durability = _parse_file_query(scheme, text, query)
    if not rest or rest == "/":
        raise HistoryUrlError(f"{scheme}:// needs a file path (got {text!r})")
    # jsonl:///abs/path keeps the leading slash; jsonl://rel/path is
    # relative. Both spellings of absolute ("//abs" vs "///abs") work.
    return HistoryUrl(scheme, Path(rest), shards=shards, durability=durability)


def format_history_url(scheme: str, path: Optional[Path | str]) -> str:
    """The canonical string form for a backend + path pair."""
    if scheme == SCHEME_MEM:
        return "mem://"
    if scheme == SCHEME_TCP:
        raise HistoryUrlError(
            "tcp:// is addressed by host:port, not a path — spell the "
            "DSN directly (tcp://host:port)"
        )
    if path is None:
        raise HistoryUrlError(f"{scheme}:// needs a path")
    return str(HistoryUrl(scheme, Path(path)))


__all__ = [
    "HistoryUrl",
    "HistoryUrlError",
    "parse_history_url",
    "format_history_url",
    "SCHEME_MEM",
    "SCHEME_JSONL",
    "SCHEME_SQLITE",
    "SCHEME_SHARD",
    "SCHEME_TCP",
    "KNOWN_SCHEMES",
    "DEFAULT_FLEET_PORT",
]
