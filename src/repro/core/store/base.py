"""The ``HistoryStore`` contract — storage and matching for signatures.

The paper's immunity guarantee rests on two properties of the history:
it must be *cheap to consult* (avoidance runs on every request at an
in-history position) and it must *survive the process* (a signature is
recorded during the very deadlock that freezes the phone). This module
separates those concerns: every backend shares one in-memory,
position-keyed index — so ``contains_position`` / ``signatures_at`` /
``starvation_signatures_at`` are O(1) dict probes regardless of backend
or history size — and differs only in how (and whether) signatures are
made durable.

Durability is *write-behind*: :meth:`HistoryStore.add` never touches the
disk; it appends to a pending batch that :meth:`HistoryStore.flush`
persists. The engine's lock path therefore performs no synchronous file
I/O — flushing is driven by the
:class:`~repro.core.store.persister.WriteBehindPersister` (an event-bus
subscriber) and by explicit shutdown flushes.

Concrete backends:

* :class:`~repro.core.store.memory.MemoryStore` — ``mem://``, no
  persistence (current in-memory ``History`` semantics).
* :class:`~repro.core.store.jsonl.JsonlStore` — ``jsonl://``,
  append-only log, byte-compatible with legacy ``History.save()`` files.
* :class:`~repro.core.store.sqlite.SqliteStore` — ``sqlite://``,
  indexed, WAL-mode, safe for concurrent writers across processes.
"""

from __future__ import annotations

import abc
import threading
from pathlib import Path
from typing import Iterator, Optional

from repro.core.position import PositionKey
from repro.core.signature import (
    PROVENANCE_PREDICTED,
    PROVENANCE_PROMOTED,
    DeadlockSignature,
    provenance_rank,
)
from repro.errors import DimmunixError

# Captured before the platform-wide patch can replace it (repro.core is
# always imported before repro.runtime.patch can be installed). Store
# mutations need their own lock because the write-behind persister
# flushes from a background thread while the engine keeps adding.
_RLock = threading.RLock


class HistoryFullError(DimmunixError):
    """The history reached ``max_signatures`` — a guard against explosion."""


def _merge_provenance(
    existing: DeadlockSignature, incoming: DeadlockSignature
) -> bool:
    """Fold ``incoming``'s provenance metadata into ``existing``.

    Both have the same canonical key. Provenance only ever upgrades
    (predicted → promoted → earned): an earned antibody re-seeded by the
    predictor stays earned, while a predicted one observed at a real
    deadlock becomes earned in place. Returns ``True`` when ``existing``
    changed and therefore needs re-persisting.
    """
    have, got = provenance_rank(existing.provenance), provenance_rank(
        incoming.provenance
    )
    if got > have:
        existing.provenance = incoming.provenance
        existing.predicted_age = 0
        return True
    if (
        got == have
        and existing.provenance == PROVENANCE_PREDICTED
        and incoming.predicted_age > existing.predicted_age
    ):
        # Replayed update lines carry the latest age; keep the max.
        existing.predicted_age = incoming.predicted_age
        return True
    return False


class HistoryStore(abc.ABC):
    """Abstract storage + matching backend for the deadlock history.

    Subclasses implement only the durability hooks (:meth:`_replay`,
    :meth:`_persist`); the matching surface is shared, backed by the
    position-keyed index, and identical across backends — which is what
    the conformance suite in ``tests/core/store`` asserts.
    """

    #: canonical DSN scheme of the backend ("mem", "jsonl", "sqlite")
    scheme: str = "mem"
    #: whether flush() makes signatures durable beyond the process
    persistent: bool = False

    def __init__(self, max_signatures: int = 4096) -> None:
        self.max_signatures = max_signatures
        self._lock = _RLock()
        self._signatures: list[DeadlockSignature] = []
        # canonical key -> the stored signature object, so a duplicate
        # add can upgrade the stored object's provenance in place.
        self._canonical: dict = {}
        # Values are tuples so the hot path can return them without
        # copying; adds (rare) rebuild the affected entries. Deadlock and
        # starvation signatures are indexed separately because avoidance
        # consults them with opposite polarity: deadlock signatures say
        # "park here", starvation signatures say "do not park here".
        self._by_outer: dict[PositionKey, tuple[DeadlockSignature, ...]] = {}
        self._starvation_by_outer: dict[
            PositionKey, tuple[DeadlockSignature, ...]
        ] = {}
        self._pending: list[DeadlockSignature] = []
        # Set by _index when a duplicate upgraded the stored signature's
        # provenance: add() re-pends it so the upgrade gets persisted.
        self._merged_dup: Optional[DeadlockSignature] = None
        self._closed = False

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def location(self) -> Optional[Path]:
        """The backing file, or ``None`` for in-memory backends."""
        return None

    @property
    def url(self) -> str:
        """The canonical DSN of this store."""
        from repro.core.store.url import format_history_url

        return format_history_url(self.scheme, self.location)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, signature: DeadlockSignature) -> bool:
        """Insert ``signature``; returns ``False`` if it was a duplicate.

        Never performs I/O: the signature joins the pending batch until
        the next :meth:`flush`.

        A duplicate still returns ``False``, but its provenance metadata
        is merged into the stored signature (predicted → promoted →
        earned upgrades only); an actual upgrade re-pends the stored
        object so the change reaches the backend on the next flush.
        """
        with self._lock:
            if self._index(signature):
                self._pending.append(signature)
                return True
            if self._merged_dup is not None:
                self._pending.append(self._merged_dup)
            return False

    def merge_from(self, other) -> int:
        """Add all signatures from ``other``; returns how many were new.

        ``other`` is any iterable of signatures — another store, a
        ``History`` facade, or a plain list.
        """
        added = 0
        for signature in other:
            if self.add(signature):
                added += 1
        return added

    def mark_dirty(self, signature: DeadlockSignature) -> bool:
        """Re-pend the stored copy of ``signature`` for the next flush.

        The composite-store hook (:class:`~repro.fleet.shard.ShardedStore`
        routes a parent-level provenance upgrade down to the owning
        shard this way): the shard's stored object *is* the parent's, so
        an ordinary :meth:`add` sees no provenance delta to merge and
        would never re-persist the row. Returns ``False`` when the
        signature is not stored here.
        """
        with self._lock:
            stored = self._canonical.get(signature.canonical_key())
            if stored is None:
                return False
            self._pending.append(stored)
            return True

    def discard(self, batch) -> int:
        """Remove stored signatures (matched by canonical key) from the
        index, the pending batch, and the backend. Returns how many were
        actually stored (and therefore removed)."""
        with self._lock:
            stored = tuple(
                found
                for found in (
                    self._canonical.get(signature.canonical_key())
                    for signature in batch
                )
                if found is not None
            )
            if stored:
                self._remove(stored)
            return len(stored)

    def _index(self, signature: DeadlockSignature) -> bool:
        """Index a signature in memory (no pending-batch bookkeeping).

        Used by :meth:`add` and by backend replay; caller holds the lock
        or is still single-threaded in ``__init__``.
        """
        key = signature.canonical_key()
        existing = self._canonical.get(key)
        if existing is not None:
            # A duplicate can still carry news: its provenance. Merging
            # here covers both live adds and backend replay (a promoted
            # update line in a jsonl log, a newer sqlite row).
            self._merged_dup = (
                existing if _merge_provenance(existing, signature) else None
            )
            return False
        self._merged_dup = None
        if len(self._signatures) >= self.max_signatures:
            raise HistoryFullError(
                f"history holds {len(self._signatures)} signatures "
                f"(max {self.max_signatures})"
            )
        self._canonical[key] = signature
        self._signatures.append(signature)
        index = (
            self._starvation_by_outer
            if signature.is_starvation
            else self._by_outer
        )
        for outer_key in signature.outer_position_keys():
            existing = index.get(outer_key, ())
            if signature not in existing:
                index[outer_key] = existing + (signature,)
        return True

    # ------------------------------------------------------------------
    # provenance lifecycle (predicted -> promoted -> expired)
    # ------------------------------------------------------------------

    def promote(self, signature: DeadlockSignature) -> bool:
        """Mark a stored *predicted* signature as ``promoted``.

        Called by the engine when a predicted antibody triggers a real
        avoidance — the prediction proved itself. Returns ``True`` only
        on an actual predicted → promoted transition; the change is
        pended for the next flush.
        """
        with self._lock:
            stored = self._canonical.get(signature.canonical_key())
            if stored is None or stored.provenance != PROVENANCE_PREDICTED:
                return False
            stored.provenance = PROVENANCE_PROMOTED
            stored.predicted_age = 0
            self._pending.append(stored)
            return True

    def expire_predictions(self, ttl_runs: int) -> int:
        """Age every still-predicted signature by one run; drop the stale.

        A predicted signature that survives ``ttl_runs`` runs without
        ever matching is a probable false positive bloating the
        avoidance hot path — it is removed from the index *and* the
        backend. Survivors get their age bump persisted. Returns how
        many signatures were expired.
        """
        with self._lock:
            expired: list[DeadlockSignature] = []
            for stored in self._signatures:
                if stored.provenance != PROVENANCE_PREDICTED:
                    continue
                stored.predicted_age += 1
                if stored.predicted_age >= ttl_runs:
                    expired.append(stored)
                else:
                    self._pending.append(stored)
            if expired:
                self._remove(tuple(expired))
            return len(expired)

    def provenance_counts(self) -> dict[str, int]:
        """Antibody counts by provenance (earned/predicted/promoted)."""
        with self._lock:
            counts = {"earned": 0, "predicted": 0, "promoted": 0}
            for stored in self._signatures:
                counts[stored.provenance] += 1
            return counts

    def _remove(self, batch: tuple[DeadlockSignature, ...]) -> None:
        """Drop stored signatures from index, pending batch, and backend.

        Called with the store lock held; every element of ``batch`` is a
        currently stored object.
        """
        dropped = set(id(stored) for stored in batch)
        self._signatures = [
            s for s in self._signatures if id(s) not in dropped
        ]
        self._pending = [s for s in self._pending if id(s) not in dropped]
        for stored in batch:
            self._canonical.pop(stored.canonical_key(), None)
            index = (
                self._starvation_by_outer
                if stored.is_starvation
                else self._by_outer
            )
            for outer_key in set(stored.outer_position_keys()):
                remaining = tuple(
                    s for s in index.get(outer_key, ()) if s is not stored
                )
                if remaining:
                    index[outer_key] = remaining
                else:
                    index.pop(outer_key, None)
        self._remove_backend(batch)

    def _remove_backend(self, batch: tuple[DeadlockSignature, ...]) -> None:
        """Erase ``batch`` from backend storage (lock held)."""
        # In-memory backends have nothing beyond the index.

    # ------------------------------------------------------------------
    # queries (the avoidance hot path — O(1) dict probes)
    # ------------------------------------------------------------------

    def signatures_at(
        self, key: PositionKey, include_starvation: bool = True
    ) -> tuple[DeadlockSignature, ...]:
        """Signatures having ``key`` among their outer positions.

        Returns interned tuples directly (no copy) — this runs on every
        request at an in-history position.
        """
        found = self._by_outer.get(key, ())
        if not include_starvation:
            return found
        starving = self._starvation_by_outer.get(key, ())
        if not starving:
            return found
        return found + starving

    def starvation_signatures_at(
        self, key: PositionKey
    ) -> tuple[DeadlockSignature, ...]:
        """Starvation signatures only — the "do not park here" index."""
        return self._starvation_by_outer.get(key, ())

    def contains_position(self, key: PositionKey) -> bool:
        return key in self._by_outer or key in self._starvation_by_outer

    def contains(self, signature: DeadlockSignature) -> bool:
        return signature.canonical_key() in self._canonical

    def deadlock_count(self) -> int:
        return sum(1 for sig in self._signatures if not sig.is_starvation)

    def starvation_count(self) -> int:
        return sum(1 for sig in self._signatures if sig.is_starvation)

    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self) -> Iterator[DeadlockSignature]:
        return iter(tuple(self._signatures))

    def __contains__(self, signature: object) -> bool:
        return (
            isinstance(signature, DeadlockSignature)
            and self.contains(signature)
        )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Signatures added but not yet persisted."""
        with self._lock:
            return len(self._pending)

    @property
    def dirty(self) -> bool:
        return self.pending_count > 0

    def flush(self) -> int:
        """Persist the pending batch; returns how many were *written*.

        Idempotent: a clean store flushes zero signatures and performs
        no I/O. Non-persistent backends drain the batch but report 0 —
        nothing became durable, and callers (``History.persist``) use
        the count to decide whether a fallback snapshot is needed.
        Thread-safe against concurrent :meth:`add` calls.
        """
        with self._lock:
            if not self._pending:
                return 0
            batch = tuple(self._pending)
            self._persist(batch)
            self._pending.clear()
            return len(batch) if self.persistent else 0

    def mark_clean(self) -> None:
        """Drop the pending batch without writing (a snapshot covered it)."""
        with self._lock:
            self._pending.clear()

    def purge(self) -> int:
        """Destructively drop every signature (memory and backend).

        The rewrite primitive for ``prune``/``compact``-style tools:
        purge, re-add the survivors, flush. Returns how many signatures
        were dropped.
        """
        with self._lock:
            dropped = len(self._signatures)
            self._signatures.clear()
            self._canonical.clear()
            self._by_outer.clear()
            self._starvation_by_outer.clear()
            self._pending.clear()
            self._purge_backend()
            return dropped

    def _purge_backend(self) -> None:
        """Erase backend storage. Called with the store lock held."""
        # In-memory backends have nothing beyond the index.

    def close(self) -> None:
        """Flush and release backend resources. Safe to call twice."""
        if self._closed:
            return
        self.flush()
        self._closed = True

    def approximate_bytes(self) -> int:
        """Rough in-process bytes held by signatures and the index.

        Mirrors ``DimmunixCore.memory_footprint``'s per-struct estimates
        (~96 bytes per retained frame plus container overhead) so the
        memory experiments keep one accounting.
        """
        total = 0
        for signature in self._signatures:
            frames = sum(
                len(entry.outer) + len(entry.inner)
                for entry in signature.entries
            )
            total += 64 + frames * 96
        # Index entries: one dict slot + tuple cell per (position, sig).
        total += 72 * (len(self._by_outer) + len(self._starvation_by_outer))
        return total

    # ------------------------------------------------------------------
    # snapshots (the legacy whole-file format)
    # ------------------------------------------------------------------

    def snapshot_to(self, path: Path | str) -> None:
        """Atomically write all signatures to ``path`` in the legacy
        ``History.save()`` format (header line + one signature per line).

        Works for every backend; if ``path`` is this store's own backing
        file the pending batch is covered by the snapshot and is dropped.
        """
        from repro.core.store.jsonl import write_snapshot

        with self._lock:
            write_snapshot(path, self._signatures)
            if self.location is not None and Path(path) == self.location:
                self._pending.clear()

    # ------------------------------------------------------------------
    # backend hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _persist(self, batch: tuple[DeadlockSignature, ...]) -> None:
        """Make ``batch`` durable. Called with the store lock held."""

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.url}: {len(self)} signature(s), "
            f"{self.pending_count} pending>"
        )


__all__ = ["HistoryStore", "HistoryFullError"]
