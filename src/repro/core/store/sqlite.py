"""``sqlite://`` — the indexed, multi-process-safe backend.

One platform runs many processes (on the phone: every Zygote child), and
the ROADMAP's scaling direction wants one shared antibody pool. SQLite in
WAL mode gives that without a server: concurrent readers never block the
writer, writes are transactional, and ``INSERT OR IGNORE`` on the
canonical key makes cross-process deduplication free.

Schema::

    meta(key TEXT PRIMARY KEY, value TEXT)        -- format + version
    signatures(canonical TEXT PRIMARY KEY,        -- JSON canonical key
               kind TEXT, data TEXT)              -- full signature JSON
    positions(canonical TEXT, pos TEXT,           -- outer-position index
              is_starvation INTEGER)
      + INDEX idx_positions_pos ON positions(pos)

The hot-path matching index still lives in memory (inherited from
:class:`~repro.core.store.base.HistoryStore`): SQLite is the durability
and sharing layer, not the per-request lookup path. :meth:`refresh`
pulls in rows other processes have committed since the store opened.

Pointing ``sqlite://`` at a legacy flat ``History.save()`` file upgrades
it in place (the original is kept next to it as ``<name>.pre-sqlite``),
so operators can switch backends by changing only the DSN.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Optional

from repro.core.signature import DeadlockSignature
from repro.core.store.base import HistoryStore
from repro.core.store.jsonl import FORMAT_NAME, FORMAT_VERSION, read_signatures
from repro.core.store.url import SCHEME_SQLITE
from repro.errors import HistoryFormatError

_SQLITE_MAGIC = b"SQLite format 3\x00"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS signatures (
    canonical TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    data TEXT NOT NULL,
    provenance TEXT NOT NULL DEFAULT 'earned'
);
CREATE TABLE IF NOT EXISTS positions (
    canonical TEXT NOT NULL,
    pos TEXT NOT NULL,
    is_starvation INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_positions_pos ON positions (pos);
CREATE UNIQUE INDEX IF NOT EXISTS idx_positions_unique
    ON positions (canonical, pos);
"""


def canonical_text(signature: DeadlockSignature) -> str:
    """A stable TEXT primary key from the signature's canonical key."""
    return signature.canonical_text()


def _position_text(key) -> str:
    return json.dumps(key, sort_keys=True)


#: ``?durability=`` values: ``normal`` trades the tail of a power loss
#: for fast WAL commits; ``full`` fsyncs every commit (a fleet pool is
#: authoritative — an acked antibody must survive anything).
DURABILITY_NORMAL = "normal"
DURABILITY_FULL = "full"


class SqliteStore(HistoryStore):
    """WAL-mode SQLite signature store with a position index."""

    scheme = SCHEME_SQLITE
    persistent = True

    def __init__(
        self,
        path: Path | str,
        max_signatures: int = 4096,
        *,
        durability: str = DURABILITY_NORMAL,
    ) -> None:
        super().__init__(max_signatures=max_signatures)
        if durability not in (DURABILITY_NORMAL, DURABILITY_FULL):
            raise HistoryFormatError(
                f"unknown durability {durability!r} "
                f"(use {DURABILITY_NORMAL!r} or {DURABILITY_FULL!r})"
            )
        self._durability = durability
        self._path = Path(path)
        legacy = self._maybe_extract_legacy()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # The write-behind persister flushes from its worker thread while
        # the engine thread adds; the base-class store lock serializes
        # every connection use, so cross-thread sharing is safe.
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        self._init_schema()
        self._replay()
        if legacy:
            # Import the legacy flat file's signatures and persist them
            # immediately — the upgraded DB must not lose them to a
            # process that never flushes.
            imported = [sig for sig in legacy if self.add(sig)]
            if imported:
                self.flush()

    @property
    def location(self) -> Optional[Path]:
        return self._path

    @property
    def durability(self) -> str:
        return self._durability

    @property
    def url(self) -> str:
        base = super().url
        if self._durability != DURABILITY_NORMAL:
            return f"{base}?durability={self._durability}"
        return base

    # ------------------------------------------------------------------
    # open-time plumbing
    # ------------------------------------------------------------------

    def _maybe_extract_legacy(self) -> list[DeadlockSignature]:
        """If ``path`` holds a legacy flat history, move it aside and
        return its signatures for import into the fresh database."""
        if not self._path.exists() or self._path.stat().st_size == 0:
            return []
        with open(self._path, "rb") as handle:
            magic = handle.read(len(_SQLITE_MAGIC))
        if magic == _SQLITE_MAGIC:
            return []
        signatures = [
            signature
            for _line, signature in read_signatures(
                self._path, tolerate_torn_tail=True
            )
        ]
        backup = self._path.with_name(self._path.name + ".pre-sqlite")
        os.replace(self._path, backup)
        return signatures

    def _init_schema(self) -> None:
        with self._lock:
            # Concurrent writers (a busy platform's processes flushing
            # into one pool) queue on SQLite's write lock instead of
            # failing fast with "database is locked". Must come first:
            # the journal_mode switch below takes an exclusive lock, so
            # simultaneous first-opens of one file need the timeout too.
            self._conn.execute("PRAGMA busy_timeout=5000")
            # Converting a rollback-journal database to WAL needs the
            # file to itself, and SQLite skips the busy handler on the
            # lock transition involved — simultaneous first-opens can
            # get a raw "database is locked" here. Retry briefly, then
            # tolerate: journal mode is a property of the *file*, so
            # whichever opener won has already made it WAL for everyone.
            for attempt in range(5):
                try:
                    self._conn.execute("PRAGMA journal_mode=WAL")
                    break
                except sqlite3.OperationalError:
                    time.sleep(0.01 * (attempt + 1))
            self._conn.execute(
                "PRAGMA synchronous=FULL"
                if self._durability == DURABILITY_FULL
                else "PRAGMA synchronous=NORMAL"
            )
            self._conn.executescript(_SCHEMA)
            # Databases created before the provenance column gain it on
            # open; existing rows default to 'earned' (the only
            # provenance that existed back then).
            columns = {
                row[1]
                for row in self._conn.execute(
                    "PRAGMA table_info(signatures)"
                )
            }
            if "provenance" not in columns:
                self._conn.execute(
                    "ALTER TABLE signatures ADD COLUMN provenance "
                    "TEXT NOT NULL DEFAULT 'earned'"
                )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("format", FORMAT_NAME),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("version", str(FORMAT_VERSION)),
            )
            self._conn.commit()
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'format'"
            ).fetchone()
            if row and row[0] != FORMAT_NAME:
                raise HistoryFormatError(
                    f"{self._path} is not a Dimmunix history database "
                    f"(format={row[0]!r})"
                )

    def _replay(self) -> None:
        with self._lock:
            rows = self._conn.execute(
                "SELECT data FROM signatures ORDER BY rowid"
            ).fetchall()
        for (data,) in rows:
            try:
                signature = DeadlockSignature.from_json(json.loads(data))
            except (
                json.JSONDecodeError,
                KeyError,
                ValueError,
                TypeError,
            ) as exc:
                raise HistoryFormatError(
                    f"bad signature row in {self._path}"
                ) from exc
            self._index(signature)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    # Rank used to decide whether a conflicting row may overwrite the
    # stored one: provenance only ever upgrades (predicted < promoted <
    # earned); equal-provenance writes may still refresh the data column
    # (a predicted signature's age bump).
    _RANK_SQL = (
        "(CASE {col} WHEN 'predicted' THEN 0 WHEN 'promoted' THEN 1 "
        "ELSE 2 END)"
    )

    def _persist(self, batch: tuple[DeadlockSignature, ...]) -> None:
        rows = [
            (
                canonical_text(sig),
                sig.kind,
                json.dumps(sig.to_json()),
                sig.provenance,
            )
            for sig in batch
        ]
        position_rows = [
            (
                canonical_text(sig),
                _position_text(key),
                1 if sig.is_starvation else 0,
            )
            for sig in batch
            for key in set(sig.outer_position_keys())
        ]
        # One transaction per flush. The upsert dedups against rows a
        # sibling process committed first, but still lets a provenance
        # *upgrade* (e.g. predicted -> promoted) or an equal-provenance
        # metadata refresh through — a plain OR IGNORE would silently
        # drop promotions.
        self._conn.executemany(
            "INSERT INTO signatures (canonical, kind, data, provenance) "
            "VALUES (?, ?, ?, ?) "
            "ON CONFLICT(canonical) DO UPDATE SET "
            "data = excluded.data, provenance = excluded.provenance "
            "WHERE "
            + self._RANK_SQL.format(col="signatures.provenance")
            + " < "
            + self._RANK_SQL.format(col="excluded.provenance")
            + " OR (signatures.provenance = excluded.provenance "
            "AND signatures.data != excluded.data)",
            rows,
        )
        self._conn.executemany(
            "INSERT OR IGNORE INTO positions (canonical, pos, is_starvation) "
            "VALUES (?, ?, ?)",
            position_rows,
        )
        self._conn.commit()

    def snapshot_to(self, path) -> None:
        """Snapshot to a *different* path; to our own path, flush.

        The base implementation would atomically replace the target
        with a legacy JSONL snapshot — replacing our own database file
        while the connection holds the old inode would silently send
        every later flush to an unlinked file. The database *is* the
        durable form, so "snapshot onto myself" means flush.
        """
        if Path(path) == self._path:
            self.flush()
            return
        super().snapshot_to(path)

    def _purge_backend(self) -> None:
        self._conn.execute("DELETE FROM signatures")
        self._conn.execute("DELETE FROM positions")
        self._conn.commit()

    def _remove_backend(self, batch) -> None:
        keys = [(canonical_text(sig),) for sig in batch]
        self._conn.executemany(
            "DELETE FROM signatures WHERE canonical = ?", keys
        )
        self._conn.executemany(
            "DELETE FROM positions WHERE canonical = ?", keys
        )
        self._conn.commit()

    def refresh(self) -> int:
        """Pull in signatures committed by other processes since open.

        Returns how many new signatures were indexed. The paper's
        platform story made histories per-process; a shared ``sqlite://``
        pool plus periodic refresh gives cross-process immunity without
        restarting anything.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT data FROM signatures ORDER BY rowid"
            ).fetchall()
            added = 0
            for (data,) in rows:
                signature = DeadlockSignature.from_json(json.loads(data))
                # _index also merges provenance upgrades committed by a
                # sibling process (their promotion reaches our copy).
                if self._index(signature):
                    added += 1
            return added

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        with self._lock:
            self._conn.close()


__all__ = [
    "SqliteStore",
    "canonical_text",
    "DURABILITY_NORMAL",
    "DURABILITY_FULL",
]
