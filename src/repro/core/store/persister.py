"""Write-behind persistence driven by the typed event stream.

The paper saves the history synchronously at detection time — tolerable
when detections freeze the phone anyway, but a synchronous whole-file
write inside the engine's global lock is exactly the scaling hazard the
signature-store literature warns about. The
:class:`WriteBehindPersister` decouples the two: the engine records the
signature in the store (pure memory) and publishes its
``DetectionEvent``/``StarvationEvent`` as before; the persister — just
another :class:`~repro.core.events.EventBus` subscriber — notices
``recorded=True`` events and schedules a flush. The lock path never
pays a file write.

Two scheduling modes:

* ``thread`` (real-time adapters): a lazy daemon worker wakes on the
  first dirty signature, coalesces bursts for ``flush_interval``
  seconds, and flushes. Because the worker is not one of the
  application's (possibly deadlocked) threads, the antibody still
  reaches disk while the process hangs — the paper's freeze-then-reboot
  story keeps working.
* ``deferred`` (the simulated VM): no thread; flushes happen only at
  explicit :meth:`flush` points (the VM flushes when ``run()`` returns),
  keeping virtual-time runs deterministic.

Every flush that wrote signatures is announced as exactly one
``HistorySavedEvent`` — emission lives in ``History.flush()``, the
single choke point all save paths now go through.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

# Original primitives, captured before any platform-wide patch: the
# worker must never block on an immunized lock.
_Condition = threading.Condition
_Lock = threading.Lock
_Thread = threading.Thread

MODE_THREAD = "thread"
MODE_DEFERRED = "deferred"

#: event kinds that can carry a freshly recorded signature
_DIRTYING_KINDS = ("detection", "starvation")


class WriteBehindPersister:
    """Flushes a history's store off the lock path, batched.

    Subscribes to the bus for ``detection``/``starvation`` — a
    ``recorded=True`` event means the store is dirty. Saves performed
    elsewhere (an explicit ``save_history``) need no subscription: a
    scheduled flush re-checks the store and no-ops when it finds it
    already clean.
    """

    def __init__(
        self,
        history,
        events,
        *,
        mode: str = MODE_THREAD,
        flush_interval: float = 0.05,
        batch_size: int = 1,
        retry_backoff: float = 0.1,
        max_retry_backoff: float = 5.0,
        telemetry=None,
    ) -> None:
        if mode not in (MODE_THREAD, MODE_DEFERRED):
            raise ValueError(f"unknown persister mode {mode!r}")
        self.history = history
        self.events = events
        self.telemetry = telemetry
        self.mode = mode
        self.flush_interval = flush_interval
        self.batch_size = batch_size
        self.retry_backoff = retry_backoff
        self.max_retry_backoff = max_retry_backoff
        self.flushes = 0
        self.flush_failures = 0
        self.signatures_written = 0
        self._retry_delay = 0.0
        self._cond = _Condition(_Lock())
        self._dirty_events = 0
        self._closed = False
        self._worker: Optional[_Thread] = None
        # The worker starts eagerly, NOT on the first dirty event:
        # starting a thread inside bus dispatch would run Thread.start()
        # under the engine's global lock — and under the platform-wide
        # patch, Thread internals touch (patched) threading primitives,
        # which must never re-enter Dimmunix from the lock path.
        if mode == MODE_THREAD:
            self._worker = _Thread(
                target=self._run, name="dimmunix-persister", daemon=True
            )
            self._worker.start()
        self._subscription = events.subscribe(
            self._on_event, kinds=_DIRTYING_KINDS
        )

    # ------------------------------------------------------------------
    # bus side (runs inside engine dispatch — must not do I/O)
    # ------------------------------------------------------------------

    def _on_event(self, event) -> None:
        if not getattr(event, "recorded", False):
            return
        with self._cond:
            if self._closed:
                return
            self._dirty_events += 1
            if self.mode == MODE_THREAD:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while self._dirty_events < self.batch_size and not self._closed:
                    self._cond.wait()
                if self._closed and self._dirty_events == 0:
                    return
                self._dirty_events = 0
            # Coalesce a burst (a multi-thread deadlock records several
            # signatures back to back) into one write.
            if self.flush_interval > 0 and not self._closed:
                with self._cond:
                    self._cond.wait(timeout=self.flush_interval)
                    self._dirty_events = 0
            try:
                self.flush()
                self._retry_delay = 0.0
            except Exception:
                # A flaky backend (full disk, a sqlite lock, a fleet
                # hiccup the store didn't absorb) must not kill the
                # worker: the store's flush left the batch pending, so
                # count the failure, back off, and retry — the
                # antibodies are still coming.
                self.flush_failures += 1
                self._retry_delay = min(
                    max(self._retry_delay * 2, self.retry_backoff),
                    self.max_retry_backoff,
                )
                with self._cond:
                    if self._closed:
                        # close() makes the final (raising) attempt.
                        return
                    self._dirty_events += 1  # re-arm the retry
                    self._cond.wait(timeout=self._retry_delay)
            with self._cond:
                if self._closed and self._dirty_events == 0:
                    return

    # ------------------------------------------------------------------
    # explicit control
    # ------------------------------------------------------------------

    def ensure_thread_mode(self) -> None:
        """Upgrade a deferred persister to background flushing.

        A shared history is first-wins on persister attachment; when a
        real-thread adapter joins a session whose persister was created
        by a (deferred-mode) VM, durability must not depend on explicit
        flush points any more — a deadlocked real process never reaches
        one. Called from adapter construction, never from the lock path.
        """
        with self._cond:
            if self._closed or self.mode == MODE_THREAD:
                return
            self.mode = MODE_THREAD
            self._worker = _Thread(
                target=self._run, name="dimmunix-persister", daemon=True
            )
            self._worker.start()
            self._cond.notify_all()

    def flush(self) -> int:
        """Flush now, synchronously; returns signatures written.

        The shutdown hook: adapters call this when a session closes or a
        VM run completes, guaranteeing durability without waiting for
        the worker. Serialized against the worker by the store lock, so
        exactly one ``HistorySavedEvent`` is emitted per batch no matter
        who wins the race.
        """
        telemetry = self.telemetry
        if telemetry is not None:
            start_ns = time.monotonic_ns()
            written = self.history.flush()
            telemetry.record(
                "store_flush", time.monotonic_ns() - start_ns
            )
        else:
            written = self.history.flush()
        if written:
            self.flushes += 1
            self.signatures_written += written
        return written

    @property
    def pending(self) -> int:
        """Signatures recorded but not yet durable."""
        return self.history.store.pending_count

    def close(self) -> None:
        """Final flush, stop the worker, drop the subscription."""
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=5.0)
        if not already:
            self.events.unsubscribe(self._subscription)
        self.flush()

    def __repr__(self) -> str:
        return (
            f"<WriteBehindPersister {self.mode} on {self.history.store.url}: "
            f"{self.flushes} flush(es), {self.signatures_written} written>"
        )


__all__ = ["WriteBehindPersister", "MODE_THREAD", "MODE_DEFERRED"]
