"""``jsonl://`` — the append-only log backend.

Byte-compatible with the legacy ``History.save()`` format: the first
line is a JSON header recording the format name and version, every
following line is one signature. A file written by either code path
loads in the other unchanged.

Durability model: :meth:`JsonlStore._persist` *appends* the pending
batch (one ``write`` + ``fsync`` per flush) instead of rewriting the
whole file, so flush cost is proportional to the new signatures, not to
the history size. Replay is crash-tolerant: a torn final line — the
likely artifact of a crash mid-append, since saves happen *during* a
deadlock — is ignored, and the next flush rewrites the log compacted
(dropping the torn tail) before appending. Corruption anywhere else is
an error, not data loss to paper over silently.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Optional

from repro.core.signature import DeadlockSignature
from repro.core.store.base import HistoryStore
from repro.core.store.url import SCHEME_JSONL
from repro.errors import HistoryFormatError

FORMAT_NAME = "dimmunix-history"
FORMAT_VERSION = 1

_HEADER = {"format": FORMAT_NAME, "version": FORMAT_VERSION}


def signature_line(signature: DeadlockSignature) -> str:
    return json.dumps(signature.to_json()) + "\n"


def write_snapshot(
    path: Path | str, signatures: Iterable[DeadlockSignature]
) -> None:
    """Atomically write a whole history file in the legacy format.

    Temp file + rename, fsynced, so a crash mid-save never corrupts an
    existing history.
    """
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(_HEADER) + "\n")
        for signature in signatures:
            handle.write(signature_line(signature))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def parse_history_lines(
    path: Path | str, lines: list[str], *, tolerate_torn_tail: bool = False
):
    """Yield ``(line_number, signature)`` from in-memory file lines.

    ``lines`` is the full file including the header line. Raises
    :class:`~repro.errors.HistoryFormatError` on a bad header or a
    corrupt signature line — except, when ``tolerate_torn_tail`` is
    set, a corrupt *final* line, which is treated as a torn write and
    skipped (the append crashed mid-line).
    """
    if not lines or not lines[0].strip():
        return
    try:
        header = json.loads(lines[0])
        if not isinstance(header, dict):
            raise ValueError("header is not an object")
    except (json.JSONDecodeError, ValueError) as exc:
        raise HistoryFormatError(f"bad history header in {path}") from exc
    if header.get("format") != FORMAT_NAME:
        raise HistoryFormatError(
            f"{path} is not a Dimmunix history "
            f"(format={header.get('format')!r})"
        )
    if header.get("version") != FORMAT_VERSION:
        raise HistoryFormatError(
            f"unsupported history version "
            f"{header.get('version')!r} in {path}"
        )
    body = lines[1:]
    last_index = len(body) - 1
    for offset, line in enumerate(body):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
            signature = DeadlockSignature.from_json(data)
        except (
            json.JSONDecodeError,
            KeyError,
            ValueError,
            TypeError,  # valid JSON of the wrong shape (e.g. a list)
        ) as exc:
            if tolerate_torn_tail and offset == last_index:
                return  # torn final line: replay stops cleanly
            raise HistoryFormatError(
                f"bad signature at {path}:{offset + 2}"
            ) from exc
        yield offset + 2, signature


def read_signatures(path: Path | str, *, tolerate_torn_tail: bool = False):
    """Yield ``(line_number, signature)`` from a legacy-format file."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    yield from parse_history_lines(
        path, lines, tolerate_torn_tail=tolerate_torn_tail
    )


class JsonlStore(HistoryStore):
    """Append-only, legacy-compatible file store."""

    scheme = SCHEME_JSONL
    persistent = True

    def __init__(self, path: Path | str, max_signatures: int = 4096) -> None:
        super().__init__(max_signatures=max_signatures)
        self._path = Path(path)
        self._torn_tail = False
        self._replay()

    @property
    def location(self) -> Optional[Path]:
        return self._path

    def _replay(self) -> None:
        if not self._path.exists():
            return
        # One pass over the file: replay the signatures and, from the
        # same lines, detect a torn tail (or a header-less empty file)
        # so the next flush rewrites a clean snapshot instead of
        # appending after garbage.
        with open(self._path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        replayed = 0
        for _line, signature in parse_history_lines(
            self._path, lines, tolerate_torn_tail=True
        ):
            self._index(signature)
            replayed += 1
        if not lines or not lines[0].strip():
            self._torn_tail = True  # no header line to append after
            return
        body = [line for line in lines[1:] if line.strip()]
        self._torn_tail = len(body) > replayed

    def _purge_backend(self) -> None:
        if self._path.exists():
            write_snapshot(self._path, ())

    def _remove_backend(self, batch) -> None:
        # An append-only log can't un-append: compact to a snapshot of
        # the survivors (removal is rare — prediction expiry only).
        if self._path.exists():
            write_snapshot(self._path, self._signatures)

    def _persist(self, batch: tuple[DeadlockSignature, ...]) -> None:
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._torn_tail or not self._path.exists():
            # First write (or recovery): lay down the full snapshot so
            # the file always starts with a valid header.
            write_snapshot(self._path, self._signatures)
            self._torn_tail = False
            return
        with open(self._path, "a", encoding="utf-8") as handle:
            for signature in batch:
                handle.write(signature_line(signature))
            handle.flush()
            os.fsync(handle.fileno())


__all__ = [
    "JsonlStore",
    "write_snapshot",
    "read_signatures",
    "signature_line",
    "FORMAT_NAME",
    "FORMAT_VERSION",
]
