"""``mem://`` — the in-process history backend.

The current (pre-store) ``History`` semantics: signatures live only in
this process. ``flush()`` is a cheap no-op that just drains the pending
batch, so write-behind plumbing can treat every backend uniformly.
Snapshots (:meth:`~repro.core.store.base.HistoryStore.snapshot_to`) still
work — an in-memory history can always be exported to the legacy file
format on demand.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from repro.core.signature import DeadlockSignature
from repro.core.store.base import HistoryStore
from repro.core.store.url import SCHEME_MEM


class MemoryStore(HistoryStore):
    """Position-indexed, in-memory signature store (no persistence)."""

    scheme = SCHEME_MEM
    persistent = False

    def __init__(self, max_signatures: int = 4096) -> None:
        super().__init__(max_signatures=max_signatures)

    @property
    def location(self) -> Optional[Path]:
        return None

    def _persist(self, batch: tuple[DeadlockSignature, ...]) -> None:
        # Nothing to do: durability is someone else's job (snapshots).
        pass

    @classmethod
    def from_signatures(
        cls,
        signatures: Iterable[DeadlockSignature],
        max_signatures: int = 4096,
    ) -> "MemoryStore":
        store = cls(max_signatures=max_signatures)
        for signature in signatures:
            store.add(signature)
        store.mark_clean()
        return store


__all__ = ["MemoryStore"]
