"""The Dimmunix core engine.

This is the paper's "Dimmunix core" (661 LOC of C in Dalvik): the state
machine behind the three entry points called around every monitor
operation —

* :meth:`DimmunixCore.request` before ``monitorenter`` (detection +
  avoidance),
* :meth:`DimmunixCore.acquired` right after ``monitorenter`` (RAG update),
* :meth:`DimmunixCore.release` right before ``monitorexit`` (RAG update +
  signature notifications).

The engine is deliberately *pure*: it never blocks, sleeps, or touches
threading primitives. It returns verdicts — ``PROCEED``, or ``YIELD`` with
the signature to park on — and lists of threads to wake; the adapters
(:mod:`repro.runtime` for real threads, :mod:`repro.dalvik` for the
simulated VM) do the actual parking and waking. This is what lets one
algorithm serve both a live ``threading`` process and a deterministic
virtual-time phone simulation.

Thread-safety contract: all engine calls must be serialized by the
caller — the paper uses a process-global lock around Request/Acquired/
Release, and so do our adapters.

Every decision is also published as a typed event on the engine's
:class:`~repro.core.events.EventBus` (request, acquired, release, yield,
resume, detection, starvation, match-capped, history-saved).
``DimmunixStats`` is just
the first subscriber on that bus — the counters are event-derived — and
any number of further subscribers (profilers, CLIs, aggregators) can
observe the same stream without touching the lock path.

Persistence is one of those subscribers: the engine itself performs no
file I/O. Recording a signature updates the in-memory store; the
:class:`~repro.core.store.WriteBehindPersister` — subscribed to the
``detection``/``starvation`` events the engine already publishes —
batches the actual flush off the lock path, and announces each flush as
one ``history-saved`` event. Ordering therefore is: the
``detection``/``starvation`` event first, the corresponding
``history-saved`` *after* it (asynchronously in thread mode, at the
next explicit ``flush_history()`` in deferred mode).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config import DimmunixConfig
from repro.core.avoidance import InstantiationChecker
from repro.core.callstack import CallStack
from repro.core.events import (
    AcquiredEvent,
    DetectionEvent,
    EventBus,
    MatchCappedEvent,
    ReleaseEvent,
    RequestEvent,
    ResumeEvent,
    StarvationEvent,
    YieldEvent,
)
from repro.core.cycle import (
    LockCycle,
    find_extended_cycle,
    find_lock_cycle,
)
from repro.core.detector import (
    signature_from_cycle,
    signature_from_extended,
    starvation_signature_for_timeout,
)
from repro.core.history import History, open_history
from repro.core.node import LockNode, ThreadNode
from repro.core.position import Position, PositionTable, _QueueCell
from repro.core.rag import ResourceAllocationGraph
from repro.core.signature import DeadlockSignature
from repro.core.stats import DimmunixStats, MemoryFootprint


class RequestVerdict(enum.Enum):
    """Outcome of a lock request."""

    PROCEED = "proceed"
    YIELD = "yield"


@dataclass
class RequestResult:
    """What the adapter must do after a :meth:`DimmunixCore.request` call.

    ``verdict``
        ``PROCEED``: go ahead and (possibly blockingly) acquire the lock,
        then call :meth:`DimmunixCore.acquired`.
        ``YIELD``: park on ``yield_on``'s condition until notified (or the
        safety-net timeout fires), then call ``request`` again.
    ``detected``
        A deadlock signature recorded by this call: the request closes a
        RAG cycle. The adapter applies the configured
        :class:`~repro.config.DetectionPolicy`.
    ``starvation``
        A starvation signature recorded by this call (yield edges formed a
        cycle).
    ``resume``
        Yielding threads that must be woken now (they received one-shot
        bypass grants); the adapter notifies the conditions of their
        ``yielding_on`` signatures.
    """

    verdict: RequestVerdict
    yield_on: Optional[DeadlockSignature] = None
    detected: Optional[DeadlockSignature] = None
    cycle: Optional[LockCycle] = None
    starvation: Optional[DeadlockSignature] = None
    resume: tuple[ThreadNode, ...] = ()


@dataclass
class ReleaseResult:
    """Signatures whose parked threads must be notified after a release."""

    notify: tuple[DeadlockSignature, ...] = ()


# Shared result for the no-wake release (see DimmunixCore.release).
_NO_NOTIFY = ReleaseResult()


@dataclass
class EngineSnapshot:
    """A structural snapshot for diagnostics and tests."""

    threads: int
    locks: int
    positions: int
    history_size: int
    yielding: int
    blocked: int
    extra: dict = field(default_factory=dict)


class DimmunixCore:
    """One per-process Dimmunix instance (the paper's ``initDimmunix``)."""

    def __init__(
        self,
        config: Optional[DimmunixConfig] = None,
        history: Optional[History] = None,
        *,
        events: Optional[EventBus] = None,
        source: str = "core",
        clock: Optional[Callable[[], float]] = None,
        persistence_mode: str = "thread",
    ) -> None:
        self.config = config or DimmunixConfig()
        self.history = (
            history
            if history is not None
            else open_history(
                self.config.resolved_history_url(), self.config.max_signatures
            )
        )
        self.positions = PositionTable()
        self.stats = DimmunixStats()
        self.rag = ResourceAllocationGraph()
        self.checker = InstantiationChecker(
            self.positions,
            self.stats,
            budget=self.config.match_step_budget,
            policy=self.config.match_cap_policy,
        )
        self._yield_count = 0
        # Opt-in phase-latency telemetry. ``None`` when off, so every
        # instrumented site (here and in the adapters/lock classes that
        # read this attribute) pays exactly one ``is not None`` check on
        # the disabled path — the cost the E1 overhead gate holds.
        if self.config.telemetry:
            from repro.telemetry import TelemetryCollector

            self.telemetry: Optional[TelemetryCollector] = (
                TelemetryCollector()
            )
        else:
            self.telemetry = None
        # The typed event stream. A shared bus (one session, several
        # adapters) is fine: events carry this core's ``source`` and the
        # stats subscription filters on it, so each core's counters only
        # reflect its own traffic.
        self.source = source
        self.events = events if events is not None else EventBus()
        self._clock = clock
        # Adapter wake hooks: each adapter sharing this engine registers
        # one callback and gets told when a signature's parked threads
        # must be woken — the cross-domain bridge that lets a real
        # thread's release resume a parked asyncio task and vice versa.
        self._wakers: list[Callable[[DeadlockSignature], None]] = []
        # Claiming the source catches two same-named cores on one bus —
        # they would double-count into each other's stats.
        self.events.claim_source(source)
        # internal=True: the stats mirror does not count as an observer
        # for the bus's lifecycle_observed flag — the capture fast path
        # keeps these counters exact with direct bumps when it elides
        # event construction.
        self._stats_subscription = self.events.subscribe(
            self.stats.on_event, source=source, internal=True
        )
        # Persistence wiring: bind the history's save announcements to
        # this bus (first core wins on a session-shared history) and
        # attach the write-behind persister when the backend is durable.
        # The engine itself never writes a file — see the module
        # docstring.
        self.history.bind_events(self.events, source)
        # Demotion policy: predictions that never matched age by one run
        # per engine start-up and expire at the TTL. Idempotent on a
        # session-shared history (one aging step per process run).
        if self.config.predicted_ttl_runs:
            self.stats.predictions_expired += self.history.expire_predictions(
                self.config.predicted_ttl_runs
            )
        self._attached_persister = False
        if self.config.auto_save and self.history.store.persistent:
            if self.history.persister is None:
                from repro.core.store import WriteBehindPersister

                self.history.attach_persister(
                    WriteBehindPersister(
                        self.history,
                        self.events,
                        mode=persistence_mode,
                        telemetry=self.telemetry,
                    )
                )
                self._attached_persister = True
            elif persistence_mode == "thread":
                # A shared history is first-wins on the persister; if a
                # deferred-mode adapter (a VM) attached it first, a
                # real-thread core joining the session upgrades it —
                # real threads that deadlock never reach an explicit
                # flush point, so durability must be background.
                self.history.persister.ensure_thread_mode()
        # Liveness watchdog: llkd-style forward-progress monitoring off
        # the event spine, for the hangs cycle detection cannot see.
        # A pure bus subscriber plus its own scanner thread — nothing is
        # added to the lock path, so the disabled default costs zero
        # (no subscription, not even an attribute check at any engine
        # site). Created before the sync pump so the pump can carry this
        # core's liveness health in its fleet metrics report.
        self.watchdog = None
        if self.config.watchdog:
            from repro.watchdog import LivenessWatchdog

            self.watchdog = LivenessWatchdog(self)
        # Fleet sync: when configured and the backend is shared (it has
        # a refresh()), keep this process's immunity current with the
        # pool — antibodies earned by siblings arrive without a restart.
        self._attached_pump = False
        if self.config.fleet_sync_interval is not None and hasattr(
            self.history.store, "refresh"
        ):
            if self.history.sync_pump is None:
                from repro.fleet.pump import SyncPump

                self.history.attach_sync_pump(
                    SyncPump(
                        self.history,
                        self.events,
                        interval=self.config.fleet_sync_interval,
                        source=source,
                        telemetry=self.telemetry,
                        health_provider=(
                            self.watchdog.health
                            if self.watchdog is not None
                            else None
                        ),
                    )
                )
                self._attached_pump = True

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def detach_events(self) -> None:
        """Unhook this core's stats subscriber from the (shared) bus.

        After this, events keep being published but the counters stop;
        used by session teardown so a retired core does not linger as a
        subscriber on a bus that outlives it. The source name becomes
        claimable again. Pending antibodies are flushed first — a
        retiring core must not strand signatures in memory — and a
        persister this core attached is closed (worker joined,
        subscription dropped); the history itself stays usable.
        """
        if self.watchdog is not None:
            self.watchdog.close()
            self.watchdog = None
        if self._attached_pump:
            self.history.detach_sync_pump()
            self._attached_pump = False
        if self._attached_persister:
            self.history.detach_persister()
            self._attached_persister = False
        self.flush_history()
        self.events.unsubscribe(self._stats_subscription)
        self.events.release_source(self.source)

    # ------------------------------------------------------------------
    # node lifecycle (paper: initNode on allocThread / dvmCreateMonitor)
    # ------------------------------------------------------------------

    def register_thread(self, name: str = "") -> ThreadNode:
        thread = ThreadNode(name)
        self.rag.add_thread(thread)
        return thread

    def register_lock(self, name: str = "") -> LockNode:
        lock = LockNode(name)
        self.rag.add_lock(lock)
        return lock

    def thread_exit(self, thread: ThreadNode) -> None:
        """Clean up a dying thread: release bookkeeping for anything held.

        A correct program releases everything before exiting; this is a
        robustness path for crashed threads so their queue entries do not
        pin positions forever. The forced releases fan their signature
        notifications through the adapter wakers like any ordinary
        release — a unit parked on a signature the dead thread was
        blocking must not wait for the safety-net timeout.
        """
        for lock in list(thread.held):
            result = self.release(thread, lock)
            if result.notify:
                self.notify_signatures(result.notify)
        if thread.requesting is not None:
            self.cancel_request(thread, thread.requesting)
        if thread.yielding_on is not None:
            self.rag.clear_yield(thread)
            self._yield_count -= 1
        self.rag.remove_thread(thread)

    def lock_destroyed(self, lock: LockNode) -> None:
        self.rag.remove_lock(lock)

    # ------------------------------------------------------------------
    # adapter wake hooks (cross-domain parking)
    # ------------------------------------------------------------------

    def add_waker(
        self, waker: Callable[[DeadlockSignature], None]
    ) -> Callable[[DeadlockSignature], None]:
        """Register an adapter's wake callback on this engine.

        Every adapter that parks execution units on signatures (the
        real-thread runtime on condition variables, the asyncio adapter
        on futures) registers exactly one waker. Wakers run under the
        adapter's global lock, on whatever thread triggered the wake —
        they must be quick and must not block. This is what makes a
        *shared* engine cross-domain: a release performed by an OS
        thread notifies the asyncio adapter's parked tasks too.
        """
        self._wakers.append(waker)
        return waker

    def remove_waker(self, waker: Callable[[DeadlockSignature], None]) -> None:
        """Unregister a waker (adapter teardown)."""
        try:
            self._wakers.remove(waker)
        except ValueError:
            pass

    def notify_signatures(
        self, signatures: tuple[DeadlockSignature, ...]
    ) -> None:
        """Fan a set of wakeable signatures out to every registered waker.

        Called by adapters after :meth:`release` (with ``result.notify``)
        so *all* adapters sharing this engine — not just the releasing
        one — re-check their parked threads/tasks.
        """
        if not self._wakers:
            return
        for signature in signatures:
            for waker in tuple(self._wakers):
                waker(signature)

    def wake_yielders(self, threads: tuple[ThreadNode, ...]) -> None:
        """Wake specific yielding threads (starvation resume lists)."""
        if not self._wakers:
            return
        for thread in threads:
            if thread.yielding_on is not None:
                self.notify_signatures((thread.yielding_on,))

    # ------------------------------------------------------------------
    # the three entry points
    # ------------------------------------------------------------------

    def request(
        self, thread: ThreadNode, lock: LockNode, stack: CallStack
    ) -> RequestResult:
        """Called before ``monitorenter``; returns the verdict.

        Mirrors the paper's ``Request`` plus the retry loop's bookkeeping:
        detection first (is a cycle about to close?), then avoidance
        (would granting instantiate a history signature?), with starvation
        checks at both the triggering and the yielding side.

        Cost contract: detection is a chain walk bounded by the cycle
        length, and every instantiation check this call performs — the
        avoidance loop over ``signatures_at`` and the starvation-relief
        recheck in :meth:`_starvation_override` — runs under the
        config's ``match_step_budget``, so one request can never wedge
        the engine on an adversarially long signature. A capped check is
        resolved by ``match_cap_policy`` (``grant``: proceed as if not
        instantiable; ``weak``: park if the polynomial
        over-approximation says the deadlock could re-form) and
        announced as a ``MatchCappedEvent``.
        """
        truncated = stack.truncated(self.config.stack_depth)
        position = self.positions.intern(truncated)
        if not position.in_history and self.history.contains_position(
            position.key
        ):
            self._position_went_hot(position)

        # A retry after a yield: drop the stale yield edges first.
        if thread.yielding_on is not None:
            self._emit(
                ResumeEvent,
                thread=thread.name,
                signature=thread.yielding_on,
            )
            self.rag.clear_yield(thread)
            thread.yield_pos = None
            thread.yield_stack = None
            self._yield_count -= 1

        request_event = self._emit(
            RequestEvent,
            thread=thread.name,
            lock=lock.name,
            position=position.key,
        )
        if thread.request_since_ns is None:
            # First attempt only: a resume-retry keeps the original
            # stamp so the ``acquire`` latency (and the RAG dump's
            # request age) spans parks, not just the final grant.
            thread.request_since_ns = request_event.ts_ns
        self.rag.set_request(thread, lock, position, truncated)

        # --- detection ------------------------------------------------
        cycle = find_lock_cycle(thread, lock)
        if cycle is not None:
            signature = signature_from_cycle(cycle)
            recorded = self._record(signature)
            self._emit(
                DetectionEvent,
                thread=thread.name,
                lock=lock.name,
                signature=signature,
                recorded=recorded,
            )
            position.queue.add(thread, lock)
            return RequestResult(
                verdict=RequestVerdict.PROCEED,
                detected=signature,
                cycle=cycle,
            )

        resume: list[ThreadNode] = []
        starvation_sig: Optional[DeadlockSignature] = None

        # Starvation triggered by this request: the new request edge may
        # close a cycle through threads parked by avoidance.
        if self._yield_count > 0 and self.config.starvation_detection:
            extended = find_extended_cycle(thread)
            if extended is not None and extended.is_starvation:
                starvation_sig = signature_from_extended(extended)
                recorded = self._record(starvation_sig)
                self._emit(
                    StarvationEvent,
                    thread=thread.name,
                    signature=starvation_sig,
                    trigger="request",
                    recorded=recorded,
                )
                for yielder in extended.yielders:
                    if yielder.yielding_on is not None:
                        yielder.bypass.add(yielder.yielding_on)
                        resume.append(yielder)

        # --- avoidance --------------------------------------------------
        position.queue.add(thread, lock)  # "pretend" the grant (§2.2)
        signatures = (
            self.history.signatures_at(position.key, include_starvation=False)
            if position.in_history
            else ()
        )
        starvation_retries = 0
        while signatures:
            # Starvation override (§2.2: "avoid entering the same
            # starvation condition again"): if parking at this position in
            # the current configuration matches a recorded
            # avoidance-induced deadlock, do not park — proceed instead.
            if self._starvation_override(thread, position):
                break
            instantiable: Optional[
                tuple[DeadlockSignature, tuple]
            ] = None
            for signature in signatures:
                if thread.bypass and signature in thread.bypass:
                    thread.bypass.discard(signature)
                    self.stats.bypasses_granted += 1
                    continue
                witnesses = self._check_instantiation(thread, signature)
                if witnesses is not None:
                    instantiable = (signature, witnesses)
                    break
            if instantiable is None:
                break

            signature, witnesses = instantiable
            self.stats.avoided_instantiations += 1
            if signature.provenance != "earned":
                # A predicted antibody just prevented a real deadlock —
                # count it separately and promote it in place: the
                # prediction proved itself without any first infection.
                self.stats.predicted_avoidances += 1
                if self.history.promote(signature):
                    self.stats.predictions_promoted += 1
            # Undo the pretend-grant and park the thread on the signature.
            position.queue.remove(thread, lock)
            self.rag.clear_request(thread)
            witness_edges = tuple(
                (w_thread, w_lock)
                for w_thread, w_lock in witnesses
                if w_thread is not thread
            )
            self.rag.set_yield(thread, signature, witness_edges)
            thread.yield_pos = position
            thread.yield_stack = truncated
            self._yield_count += 1
            self._emit(
                YieldEvent,
                thread=thread.name,
                lock=lock.name,
                position=position.key,
                signature=signature,
            )

            if self.config.starvation_detection:
                extended = find_extended_cycle(thread)
                if extended is not None and extended.is_starvation:
                    # Yielding here would stall the system: record the
                    # avoidance-induced deadlock, wake the other parked
                    # threads, and retry with a one-shot bypass (§2.2).
                    starvation_sig = signature_from_extended(extended)
                    recorded = self._record(starvation_sig)
                    self._emit(
                        StarvationEvent,
                        thread=thread.name,
                        signature=starvation_sig,
                        trigger="yield",
                        recorded=recorded,
                    )
                    for yielder in extended.yielders:
                        if yielder is thread:
                            continue
                        if yielder.yielding_on is not None:
                            yielder.bypass.add(yielder.yielding_on)
                            resume.append(yielder)
                    self.rag.clear_yield(thread)
                    thread.yield_pos = None
                    thread.yield_stack = None
                    self._yield_count -= 1
                    self.rag.set_request(thread, lock, position, truncated)
                    position.queue.add(thread, lock)
                    # Re-run avoidance: the just-recorded starvation
                    # signature normally triggers the override above. That
                    # is not guaranteed — the override recheck is budgeted
                    # and a capped (or otherwise failed) recheck would
                    # send this loop through the same yield→starvation
                    # cycle forever, spinning under the global lock — so
                    # the retry is bounded: after two rounds the thread
                    # proceeds outright, which is exactly what the
                    # override would have decided.
                    starvation_retries += 1
                    if starvation_retries >= 2:
                        break
                    continue

            return RequestResult(
                verdict=RequestVerdict.YIELD,
                yield_on=signature,
                starvation=starvation_sig,
                resume=tuple(resume),
            )

        return RequestResult(
            verdict=RequestVerdict.PROCEED,
            starvation=starvation_sig,
            resume=tuple(resume),
        )

    def acquired(self, thread: ThreadNode, lock: LockNode) -> None:
        """Called right after ``monitorenter``: request edge -> hold edge."""
        position = thread.request_pos
        stack = thread.request_stack
        if position is None or stack is None:
            raise AssertionError(
                f"{thread.name} acquired {lock.name} without a pending request"
            )
        self.rag.clear_request(thread)
        self.rag.set_hold(thread, lock, position, stack)
        event = self._emit(AcquiredEvent, thread=thread.name, lock=lock.name)
        since = thread.request_since_ns
        if since is not None:
            thread.request_since_ns = None
            if self.telemetry is not None:
                self.telemetry.record("acquire", event.ts_ns - since)

    def fast_acquired(
        self, thread: ThreadNode, lock: LockNode, position: Position
    ) -> bool:
        """The no-history fast path: O(1) bookkeeping for a won try-lock.

        The caller (an adapter, under its global lock) has *already*
        physically acquired the raw lock with a non-blocking probe and
        presents a pre-resolved ``position``. When the position has zero
        recorded signatures this replaces the request→acquired pair:
        queue entry and hold edge are installed exactly as the exact
        path would, but cycle detection, starvation checks, and the
        avoidance loop are skipped — all three only matter for requests
        that can *block*, and a won try-lock by definition never waits
        (a free lock cannot extend a cycle; the avoidance decision for a
        signature-free position is always PROCEED).

        Returns ``False`` — caller must release the raw lock and run the
        exact path — when the position is hot, or just went hot: the
        zero-signature verdict is cached per position stamped with the
        history's ``index_epoch`` and revalidated whenever the epoch
        moved (a detection, fleet pull, predicted seed, or merge landed
        since), which is the demotion rule the fast-path-exit tests pin.
        """
        if position.in_history:
            return False
        # Private-attr read of the property behind History.index_epoch:
        # this comparison runs on every fast-path acquire and the
        # descriptor round-trip is measurable there.
        epoch = self.history._index_epoch
        if position.fastpath_epoch != epoch:
            if self.history.contains_position(position.key):
                self._position_went_hot(position)
                return False
            position.fastpath_epoch = epoch
        # position.queue.add, inlined (freelist pop or fresh cell +
        # head push) — one call frame fewer on every fast acquire.
        queue = position.queue
        cell = queue._free
        if cell is not None:
            queue._free = cell.next
            queue.reuses += 1
        else:
            cell = _QueueCell()
            queue.allocations += 1
        cell.thread = thread
        cell.lock = lock
        cell.next = queue._head
        queue._head = cell
        queue.size += 1
        # rag.set_hold, inlined minus its ownership assertion: the
        # caller physically won the raw lock, so no other node can be
        # recorded as owner here.
        lock.owner = thread
        lock.acq_pos = position
        lock.acq_stack = position.stack
        thread.held.add(lock)
        stats = self.stats
        stats.fastpath_acquires += 1
        tel = self.telemetry
        if self.events.lifecycle_observed:
            t0 = time.monotonic_ns() if tel is not None else 0
            self._emit(
                RequestEvent,
                thread=thread.name,
                lock=lock.name,
                position=position.key,
            )
            self._emit(AcquiredEvent, thread=thread.name, lock=lock.name)
            if tel is not None:
                tel.record("acquire", time.monotonic_ns() - t0)
        else:
            # Nobody (beyond our own stats mirror) is listening: skip
            # the event pair but keep the counters it would have driven.
            stats.requests += 1
            stats.acquisitions += 1
            if tel is not None:
                tel.record("acquire", 0)
        return True

    def release(self, thread: ThreadNode, lock: LockNode) -> ReleaseResult:
        """Called right before ``monitorexit``.

        Per §4: if the released lock was acquired at a position present in
        the history, every thread parked on a signature containing that
        position must be woken so it can re-run avoidance.
        """
        position = lock.acq_pos
        notify: tuple[DeadlockSignature, ...] = ()
        if position is not None:
            if position.in_history:
                notify = self.history.signatures_at(position.key)
            position.queue.remove(thread, lock)
        self.rag.clear_hold(thread, lock)
        lock.acq_pos = None
        lock.acq_stack = None
        if self.events.lifecycle_observed:
            self._emit(
                ReleaseEvent,
                thread=thread.name,
                lock=lock.name,
                notified=len(notify),
            )
        else:
            # Same elision as the fast-path acquire: with no external
            # lifecycle subscriber the event reaches no one, so bump
            # the counters it would have driven and skip the cost.
            self.stats.releases += 1
            self.stats.notifications += len(notify)
        if not notify:
            # The overwhelmingly common release has nobody to wake;
            # hand back a shared empty result (callers only read
            # ``.notify``) instead of constructing a dataclass per
            # release on the hot path.
            return _NO_NOTIFY
        return ReleaseResult(notify=notify)

    def cancel_request(self, thread: ThreadNode, lock: LockNode) -> None:
        """Undo a granted request that will not proceed to acquisition.

        Used by the ``RAISE``/``BREAK`` detection policies and by adapters
        whose physical acquisition fails.
        """
        position = thread.request_pos
        if position is not None:
            position.queue.remove(thread, lock)
        self.rag.clear_request(thread)
        thread.request_since_ns = None
        self.stats.requests_cancelled += 1

    def abandon_yield(self, thread: ThreadNode) -> None:
        """Drop a yield without retrying (non-blocking acquire gave up)."""
        if thread.yielding_on is not None:
            self.rag.clear_yield(thread)
            thread.yield_pos = None
            thread.yield_stack = None
            thread.request_since_ns = None
            self._yield_count -= 1

    def force_bypass(
        self, thread: ThreadNode, *, trigger: str = "timeout"
    ) -> Optional[DeadlockSignature]:
        """Starvation override: grant a parked thread a one-shot pass.

        Records a starvation signature built from the thread's yield state
        and grants a one-shot bypass so the next retry proceeds. Returns
        the signature, or ``None`` if the thread was not yielding.
        ``trigger`` names who pulled the cord — ``"timeout"`` for the
        adapters' yield-timeout safety net, ``"watchdog"`` when the
        liveness watchdog's ``break_youngest`` policy breaks a stall.
        """
        if thread.yielding_on is None:
            return None
        signature = starvation_signature_for_timeout(thread)
        recorded = self._record(signature)
        self._emit(
            StarvationEvent,
            thread=thread.name,
            signature=signature,
            trigger=trigger,
            recorded=recorded,
        )
        thread.bypass.add(thread.yielding_on)
        return signature

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _emit(self, event_cls, **fields):
        """Stamp source/ts/ts_ns and publish one typed event.

        Centralized so no emit site can forget the stamping and silently
        publish under the default source (subscriber errors never
        escape the bus). Returns the published event so callers can read
        its monotonic ``ts_ns`` back (the ``acquire`` phase latency is
        the delta between a request's and its acquired's stamps).
        """
        return self.events.publish(
            event_cls(
                source=self.source,
                ts=self._now(),
                ts_ns=time.monotonic_ns(),
                **fields,
            )
        )

    def _check_instantiation(
        self, thread: ThreadNode, signature: DeadlockSignature
    ):
        """One budgeted instantiation check, cap surfaced as an event.

        The checker never sees the bus; it reports a cap through its
        ``last_*`` attributes and this choke point turns that into the
        ``MatchCappedEvent`` every subscriber (stats, profilers, a
        platform operator's alerting) observes. Used by the avoidance
        loop and the starvation-relief recheck alike, so both paths are
        bounded and both announce their caps.
        """
        if self.telemetry is not None:
            start_ns = time.monotonic_ns()
            witnesses = self.checker.would_instantiate(signature)
            self.telemetry.record("match", time.monotonic_ns() - start_ns)
        else:
            witnesses = self.checker.would_instantiate(signature)
        if self.checker.last_capped:
            self._emit(
                MatchCappedEvent,
                thread=thread.name,
                signature=signature,
                steps=self.checker.last_steps,
                policy=self.config.match_cap_policy.value,
                instantiable=witnesses is not None,
            )
        return witnesses

    def _starvation_override(
        self, thread: ThreadNode, position: Position
    ) -> bool:
        """True when parking at ``position`` would re-enter a recorded
        avoidance-induced deadlock (so the thread must proceed).

        This recheck runs the same budgeted matcher as avoidance, so a
        long starvation signature cannot wedge the relief path either; a
        capped recheck under ``grant`` simply finds no override (the
        thread may still park and fall back to the starvation detectors
        and the yield timeout), while under ``weak`` the
        over-approximation errs toward relieving — both keep liveness
        mechanisms intact.
        """
        for starvation_sig in self.history.starvation_signatures_at(
            position.key
        ):
            if self._check_instantiation(thread, starvation_sig) is not None:
                self.stats.starvation_overrides += 1
                return True
        return False

    def _record(self, signature: DeadlockSignature) -> bool:
        """Record a signature in the store — pure memory, no file I/O.

        Durability rides the event the caller emits next: the
        write-behind persister sees the ``recorded=True``
        detection/starvation event and schedules the flush.
        """
        added = self.history.add(signature)
        if added:
            self.stats.signatures_added += 1
            for key in signature.outer_position_keys():
                position = self.positions.get(key)
                if position is not None and not position.in_history:
                    self._position_went_hot(position)
        else:
            self.stats.duplicate_signatures += 1
        return added

    def _position_went_hot(self, position: Position) -> None:
        """Flip a position to ``in_history`` (it gained signatures).

        The one choke point for cold→hot transitions — a detection's
        ``_record``, the exact path's lazy ``contains_position`` check,
        and the fast path's epoch revalidation all land here — so the
        ``fastpath_demotions`` counter ticks exactly once per position
        that the fast path had validated cold and must now abandon.
        """
        position.in_history = True
        if position.fastpath_epoch != -1:
            position.fastpath_epoch = -1
            self.stats.fastpath_demotions += 1

    def flush_history(self) -> int:
        """Flush pending signatures per policy; returns how many wrote.

        The lifecycle checkpoint (session close, VM ``run()`` return,
        ``detach_events``): it flushes through the attached persister
        and is therefore gated on ``auto_save`` — a read-only process
        (``auto_save=False``) must never mutate its history file from a
        lifecycle hook. User-initiated saves bypass the gate via
        ``history.persist()`` / ``save_history``.
        """
        persister = self.history.persister
        if persister is not None:
            return persister.flush()
        return 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def yielding_threads(self) -> int:
        return self._yield_count

    def rag_dump(self) -> dict:
        """Plain-JSON RAG snapshot: nodes, edges, per-waiter request age.

        The caller should hold the adapter glock for a consistent view;
        without it the dump is racy but never crashes — same contract as
        ``stats``. See :func:`repro.telemetry.ragdump.rag_snapshot`.
        """
        from repro.telemetry.ragdump import rag_snapshot

        return rag_snapshot(self)

    def snapshot(self) -> EngineSnapshot:
        return EngineSnapshot(
            threads=self.rag.thread_count(),
            locks=self.rag.lock_count(),
            positions=len(self.positions),
            history_size=len(self.history),
            yielding=self._yield_count,
            blocked=len(self.rag.blocked_threads()),
        )

    def memory_footprint(self) -> MemoryFootprint:
        """Approximate the extra bytes Dimmunix keeps in this process.

        Mirrors the paper's memory-overhead accounting: RAG nodes embedded
        in thread/monitor structs, interned positions and their queue
        cells, per-thread stack buffers, and the history. Sizes are fixed
        per-struct estimates (measured once on CPython) rather than deep
        ``getsizeof`` walks, because the benchmark harness calls this on
        hot paths.
        """
        position_count = len(self.positions)
        cell_count = sum(
            pos.queue.allocations for pos in self.positions
        )
        thread_count = self.rag.thread_count()
        lock_count = self.rag.lock_count()
        # Signature + matching-index bytes are the store's accounting
        # (one estimate shared with the memory experiments in
        # repro.android.memory).
        signature_bytes = self.history.approximate_bytes()
        footprint = MemoryFootprint(
            positions=position_count,
            queue_cells=cell_count,
            thread_nodes=thread_count,
            lock_nodes=lock_count,
            stack_buffers=thread_count,
            signatures=len(self.history),
        )
        footprint.bytes_total = (
            position_count * 160      # Position + queue head + key tuple
            + cell_count * 56         # one _QueueCell
            + thread_count * 200      # ThreadNode + held set
            + lock_count * 120        # LockNode
            + thread_count * 256      # stack buffer (paper: per-thread char*)
            + signature_bytes
        )
        return footprint
