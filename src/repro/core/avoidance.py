"""Signature instantiation checking — the heart of avoidance.

Per §2.2, a signature with outer call stacks ``CS1..CSn`` is *instantiable*
when there exist threads ``t1..tn`` that hold, or are allowed to wait for,
locks ``l1..ln`` with those call stacks — with the threads pairwise
distinct and the locks pairwise distinct (the same thread or the same lock
cannot play two roles in one deadlock).

The position queues (:mod:`repro.core.position`) record exactly the
"holds or is allowed to wait for" relation, so instantiation checking is a
small constrained matching problem: assign to each outer position of the
signature one queue entry such that all chosen threads and locks are
distinct. Signatures almost always have 2 entries (two-thread deadlocks),
so the backtracking search below is effectively constant-time; positions
are tried in increasing queue-length order to fail fast.
"""

from __future__ import annotations

from typing import Optional

from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable
from repro.core.signature import DeadlockSignature
from repro.core.stats import DimmunixStats

Assignment = tuple[tuple[ThreadNode, LockNode], ...]


class InstantiationChecker:
    """Matches history signatures against the current position queues."""

    __slots__ = ("_positions", "_stats")

    def __init__(self, positions: PositionTable, stats: DimmunixStats) -> None:
        self._positions = positions
        self._stats = stats

    def would_instantiate(
        self, signature: DeadlockSignature
    ) -> Optional[Assignment]:
        """Return a witness assignment if ``signature`` is instantiable.

        The caller has already "pretended" to grant the pending request by
        inserting the requester into its position queue, so a non-``None``
        result means granting the request could let the recorded deadlock
        re-form. The returned assignment lists one (thread, lock) pair per
        signature entry, in entry order.
        """
        self._stats.instantiation_checks += 1
        # Fast fail before any allocation: every outer position must have
        # a non-empty queue for an instantiation to exist. This is the
        # common exit when the history holds many signatures whose other
        # positions are idle (§5's synthetic-signature scenario). Direct
        # dict probes — this loop runs 10s of times per monitorenter when
        # the history is large.
        by_key = self._positions._by_key
        keys = signature.outer_position_keys()
        queues = []
        for key in keys:
            position = by_key.get(key)
            if position is None or position.queue._size == 0:
                return None
            queues.append(position.queue)

        # Order positions by queue length so sparse positions prune first,
        # but remember the original slot of each so the witness assignment
        # comes back in signature-entry order.
        order = sorted(range(len(queues)), key=lambda i: len(queues[i]))
        chosen: list[Optional[tuple[ThreadNode, LockNode]]] = [None] * len(queues)
        used_threads: set[int] = set()
        used_locks: set[int] = set()

        def backtrack(rank: int) -> bool:
            if rank == len(order):
                return True
            slot = order[rank]
            for thread, lock in queues[slot].entries():
                self._stats.matching_steps += 1
                if thread.node_id in used_threads or lock.node_id in used_locks:
                    continue
                chosen[slot] = (thread, lock)
                used_threads.add(thread.node_id)
                used_locks.add(lock.node_id)
                if backtrack(rank + 1):
                    return True
                used_threads.discard(thread.node_id)
                used_locks.discard(lock.node_id)
                chosen[slot] = None
            return False

        if backtrack(0):
            return tuple(entry for entry in chosen if entry is not None)
        return None
