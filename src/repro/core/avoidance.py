"""Signature instantiation checking — the budgeted heart of avoidance.

Per §2.2, a signature with outer call stacks ``CS1..CSn`` is *instantiable*
when there exist threads ``t1..tn`` that hold, or are allowed to wait for,
locks ``l1..ln`` with those call stacks — with the threads pairwise
distinct and the locks pairwise distinct (the same thread or the same lock
cannot play two roles in one deadlock).

The position queues (:mod:`repro.core.position`) record exactly the
"holds or is allowed to wait for" relation, so instantiation checking is a
small constrained matching problem: assign to each outer position of the
signature one queue entry such that all chosen threads and locks are
distinct. Signatures almost always have 2 entries (two-thread deadlocks)
and the check then costs a handful of steps — but the check runs on
*every* ``monitorenter``, and the exact search is exponential in signature
*length*: a single N-entry cycle signature (N ≥ ~10) whose outer positions
collapse onto one line used to wedge a request for minutes (the A7
fan-out work exposed this; ``benchmarks/bench_a8_matcher.py`` reproduces
it). A production platform must bound the search before an adversarial
history shape can stall the engine.

The matcher therefore works in three layers:

1. **Structural pruning** keeps real workloads far from any limit.
   Signature entries sharing an outer position key are *grouped*: k
   entries on one line need k pairwise-distinct occupants of one queue,
   chosen as a combination (monotone indices) rather than a permutation —
   this alone removes a factorial from the collapsed-position case.
   Groups are searched scarcest-first (fewest spare candidates per needed
   slot, then shortest queue), and the search short-circuits whenever the
   union of candidate threads or candidate locks across the remaining
   groups is smaller than the slots left to fill (a Hall-style counting
   bound, precomputed per suffix of the group order).

2. **A per-check step budget** (``DimmunixConfig.match_step_budget``;
   ``0`` = unbounded) is enforced inside the backtracking loop. One step
   is one queue entry tried. A capped check bumps ``stats.match_caps``
   and reports through :attr:`InstantiationChecker.last_capped` /
   :attr:`~InstantiationChecker.last_steps` so the engine can publish a
   ``MatchCappedEvent``.

3. **A cap policy** decides what a capped check answers
   (:class:`~repro.config.MatchCapPolicy`). ``GRANT`` keeps exact-search
   semantics: a search that could not *prove* instantiability within the
   budget reports "not instantiable" and the lock is granted. ``WEAK``
   adopts the weak-deadlock-sets relaxation (arXiv:2410.05175): the
   polynomial over-approximation — per-slot queue occupancy plus the
   distinct-thread/distinct-lock counting of layer 1 — stands in for the
   exact answer. Those counting conditions are *necessary* for
   instantiability and the exact search only starts once they hold, so a
   capped check under ``WEAK`` reports "instantiable" with a
   conservative witness pool; the §2.2 guarantee (a recorded deadlock is
   never re-entered) survives the cap, at the price of possibly parking
   a thread the exact search would have cleared.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DEFAULT_MATCH_STEP_BUDGET, MatchCapPolicy
from repro.core.node import LockNode, ThreadNode
from repro.core.position import PositionTable
from repro.core.signature import DeadlockSignature
from repro.core.stats import DimmunixStats

Assignment = tuple[tuple[ThreadNode, LockNode], ...]


class _BudgetExhausted(Exception):
    """Internal unwind signal: the step budget ran out mid-search."""


class InstantiationChecker:
    """Matches history signatures against the current position queues.

    One checker serves one engine; ``budget`` and ``policy`` come from the
    engine's :class:`~repro.config.DimmunixConfig`. ``last_capped`` is
    valid after every :meth:`would_instantiate` call; ``last_steps`` and
    ``last_weak_fallback`` are meaningful only while it is ``True`` (an
    early counting refute leaves them at the previous check's values).
    The engine reads these to emit ``MatchCappedEvent`` without the
    checker needing a reference to the event bus.
    """

    __slots__ = (
        "_positions",
        "_stats",
        "_budget",
        "_policy",
        "last_capped",
        "last_steps",
        "last_weak_fallback",
    )

    def __init__(
        self,
        positions: PositionTable,
        stats: DimmunixStats,
        *,
        budget: int = DEFAULT_MATCH_STEP_BUDGET,
        policy: MatchCapPolicy = MatchCapPolicy.GRANT,
    ) -> None:
        self._positions = positions
        self._stats = stats
        self._budget = budget
        self._policy = MatchCapPolicy(policy)
        self.last_capped = False
        self.last_steps = 0
        self.last_weak_fallback = False

    @property
    def budget(self) -> int:
        """The per-check step budget (0 = unbounded); diagnostics."""
        return self._budget

    @property
    def policy(self) -> MatchCapPolicy:
        """The configured cap policy; diagnostics."""
        return self._policy

    def would_instantiate(
        self, signature: DeadlockSignature
    ) -> Optional[Assignment]:
        """Return a witness assignment if ``signature`` is instantiable.

        The caller has already "pretended" to grant the pending request by
        inserting the requester into its position queue, so a non-``None``
        result means granting the request could let the recorded deadlock
        re-form. The returned assignment lists one (thread, lock) pair per
        signature entry, in entry order — except on the ``WEAK`` capped
        path, where it is the deduplicated pool of *candidate* occupants
        (a superset of any exact witness set, so the starvation detector
        sees at least the wait-for edges an exact answer would install).

        A ``None`` from a capped check under ``GRANT`` means "not proven
        instantiable within the budget", not "refuted"; callers that care
        can distinguish via :attr:`last_capped`.
        """
        self._stats.instantiation_checks += 1
        # Only the cap flag must be cleared on every path — the engine
        # reads it unconditionally after each call; steps and the weak
        # flag are only consulted when it is set, and are (re)written
        # wherever it is.
        self.last_capped = False

        # Guard + group pass, allocation-light: every outer position must
        # have a sufficiently occupied queue for an instantiation to
        # exist. This is the common exit when the history holds many
        # signatures whose other positions are idle (§5's
        # synthetic-signature scenario) — the probe runs 10s of times per
        # monitorenter when the history is large, hence the pre-bound
        # table accessor and the linear (hash-free) duplicate scan over
        # the 2–3 keys a real signature has.
        lookup = self._positions.lookup
        keys = signature.outer_position_keys()
        collapsed = signature.outer_collapsed
        group_slots: list = []
        group_queues: list = []
        if not collapsed:
            # The common shape (2–3 distinct positions): one singleton
            # group per key, represented by its slot index alone.
            slot = 0
            for key in keys:
                position = lookup(key)
                if position is None or position.queue.size == 0:
                    return None
                group_slots.append(slot)
                group_queues.append(position.queue)
                slot += 1
        else:
            group_keys: list = []
            for slot, key in enumerate(keys):
                for gi, seen_key in enumerate(group_keys):
                    if seen_key == key:
                        group_slots[gi].append(slot)
                        break
                else:
                    position = lookup(key)
                    if position is None:
                        return None
                    queue = position.queue
                    if queue.size == 0:
                        return None
                    group_keys.append(key)
                    group_slots.append([slot])
                    group_queues.append(queue)
            # A group of k collapsed slots needs k distinct occupants of
            # one queue — fewer entries than slots refutes immediately.
            for gi, slots in enumerate(group_slots):
                if group_queues[gi].size < len(slots):
                    return None
        group_sizes = [queue.size for queue in group_queues]

        total_slots = len(keys)
        group_count = len(group_slots)
        # The Hall-style counting precheck runs only for the shapes that
        # can explode — collapsed positions or 4+ entries. A refutation
        # here is *exact* (the conditions are necessary): some group
        # lacks enough distinct threads/locks, or some suffix of groups
        # needs more slots than its candidate unions cover — and it is
        # what keeps long signatures from ever starting a doomed
        # exponential search. Real 2–3-entry signatures skip it (the
        # exact search settles them in a handful of steps); if one of
        # those ever caps anyway, the WEAK handler below computes the
        # bound then, off the hot path.
        counting_checked = collapsed or total_slots > 3
        if counting_checked and not _counting_feasible(
            [1] * group_count if not collapsed
            else [len(slots) for slots in group_slots],
            group_queues,
        ):
            return None

        # Scarcest group first: fewest spare candidates per needed slot,
        # then shortest queue — sparse positions prune the search before
        # the busy ones fan it out. The common shape (two singleton
        # groups) orders with one comparison instead of a sort.
        if group_count == 2 and not collapsed:
            if group_sizes[0] > group_sizes[1]:
                group_slots.reverse()
                group_queues.reverse()
        elif group_count > 1:
            if collapsed:
                order = sorted(
                    range(group_count),
                    key=lambda i: (
                        group_sizes[i] - len(group_slots[i]),
                        group_sizes[i],
                    ),
                )
            else:
                order = sorted(
                    range(group_count), key=lambda i: group_sizes[i]
                )
            group_slots = [group_slots[i] for i in order]
            group_queues = [group_queues[i] for i in order]

        # Snapshots only where the search needs indexed access: a group
        # of k > 1 collapsed slots is filled by *combinations* (monotone
        # indices — collapsed slots are symmetric, so permuting the same
        # entries is wasted work). Singleton groups iterate their queue
        # lazily, so the common 2-entry signature allocates nothing here.
        snapshots: Optional[list] = (
            [
                list(queue.entries()) if len(slots) > 1 else None
                for slots, queue in zip(group_slots, group_queues)
            ]
            if collapsed
            else None
        )

        chosen: list[Optional[tuple[ThreadNode, LockNode]]] = (
            [None] * total_slots
        )
        used_threads: set[int] = set()
        used_locks: set[int] = set()
        stats = self._stats
        budget = self._budget
        steps = 0

        def fill(gi: int) -> bool:
            nonlocal steps
            if gi == group_count:
                return True
            if collapsed:
                slots = group_slots[gi]
                if len(slots) > 1:
                    return fill_combo(gi, len(slots), 0)
                slot = slots[0]
            else:
                slot = group_slots[gi]
            for thread, lock in group_queues[gi].entries():
                steps += 1
                stats.matching_steps += 1
                if budget and steps > budget:
                    raise _BudgetExhausted
                thread_id = thread.node_id
                lock_id = lock.node_id
                if thread_id in used_threads or lock_id in used_locks:
                    continue
                chosen[slot] = (thread, lock)
                used_threads.add(thread_id)
                used_locks.add(lock_id)
                if fill(gi + 1):
                    return True
                used_threads.discard(thread_id)
                used_locks.discard(lock_id)
            return False

        def fill_combo(gi: int, need: int, start: int) -> bool:
            nonlocal steps
            if need == 0:
                return fill(gi + 1)
            slots = group_slots[gi]
            candidates = snapshots[gi]
            # Monotone indices; once fewer entries remain than picks
            # needed, the whole branch fails.
            for index in range(start, len(candidates) - need + 1):
                steps += 1
                stats.matching_steps += 1
                if budget and steps > budget:
                    raise _BudgetExhausted
                thread, lock = candidates[index]
                thread_id = thread.node_id
                lock_id = lock.node_id
                if thread_id in used_threads or lock_id in used_locks:
                    continue
                chosen[slots[len(slots) - need]] = (thread, lock)
                used_threads.add(thread_id)
                used_locks.add(lock_id)
                if fill_combo(gi, need - 1, index + 1):
                    return True
                used_threads.discard(thread_id)
                used_locks.discard(lock_id)
            return False

        try:
            found = fill(0)
        except _BudgetExhausted:
            self.last_capped = True
            self.last_steps = steps
            self.last_weak_fallback = False
            stats.match_caps += 1
            if self._policy is MatchCapPolicy.GRANT:
                return None
            # WEAK: answer through the polynomial over-approximation.
            # Explosive shapes prechecked it above (their search does not
            # start otherwise), so their capped verdict is "instantiable";
            # a capped short signature (possible only over very deep
            # queues) computes it now, off the hot path.
            if not counting_checked and not _counting_feasible(
                [1] * group_count if not collapsed
                else [len(slots) for slots in group_slots],
                group_queues,
            ):
                return None
            stats.weak_fallbacks += 1
            self.last_weak_fallback = True
            # The witness pool is every candidate occupant, deduplicated:
            # a superset of any exact witness set, so yield edges built
            # from it make starvation detection at least as sensitive.
            seen: set[tuple[int, int]] = set()
            pool: list[tuple[ThreadNode, LockNode]] = []
            for queue in group_queues:
                for thread, lock in queue.entries():
                    pair = (thread.node_id, lock.node_id)
                    if pair not in seen:
                        seen.add(pair)
                        pool.append((thread, lock))
            return tuple(pool)

        self.last_steps = steps
        if found:
            return tuple(entry for entry in chosen if entry is not None)
        return None

    def weak_instantiable(self, signature: DeadlockSignature) -> bool:
        """The WEAK relaxation's polynomial over-approximation, standalone.

        True whenever the counting conditions hold: every outer position's
        queue has at least as many occupants — with as many distinct
        threads and distinct locks — as the signature has entries there,
        and no suffix of groups needs more slots than its candidate
        thread/lock unions can cover. Exact instantiability implies this,
        never the reverse; exposed for tests and diagnostics (the capped
        ``WEAK`` path inside :meth:`would_instantiate` answers through
        the same conditions).
        """
        lookup = self._positions.lookup
        group_needs: list[int] = []
        group_keys: list = []
        group_queues: list = []
        for key in signature.outer_position_keys():
            for gi, seen_key in enumerate(group_keys):
                if seen_key == key:
                    group_needs[gi] += 1
                    break
            else:
                position = lookup(key)
                if position is None or position.queue.size == 0:
                    return False
                group_keys.append(key)
                group_needs.append(1)
                group_queues.append(position.queue)
        for needed, queue in zip(group_needs, group_queues):
            if queue.size < needed:
                return False
        return _counting_feasible(group_needs, group_queues)


def _counting_feasible(
    group_needs: list[int], group_queues: list
) -> bool:
    """The Hall-style counting bound over the grouped queues.

    Per group: at least as many distinct candidate threads and distinct
    candidate locks as slots to fill (``group_needs``). Across groups:
    every suffix (in scarcest-first order, mirroring the search) must
    have thread/lock unions at least as large as its slot count. All
    conditions are necessary for instantiability — a ``False`` is an
    exact refutation, a ``True`` is the WEAK relaxation's
    over-approximate "instantiable".
    """
    per_group: list[tuple[int, set[int], set[int]]] = []
    for needed, queue in zip(group_needs, group_queues):
        threads = set()
        locks = set()
        for thread, lock in queue.entries():
            threads.add(thread.node_id)
            locks.add(lock.node_id)
        if len(threads) < needed or len(locks) < needed:
            return False
        per_group.append((needed, threads, locks))
    order = sorted(
        range(len(per_group)),
        key=lambda i: (
            group_queues[i].size - per_group[i][0],
            group_queues[i].size,
        ),
    )
    slots_remaining = 0
    thread_union: set[int] = set()
    lock_union: set[int] = set()
    for i in reversed(order):
        needed, threads, locks = per_group[i]
        slots_remaining += needed
        thread_union |= threads
        lock_union |= locks
        if (
            len(thread_union) < slots_remaining
            or len(lock_union) < slots_remaining
        ):
            return False
    return True
