"""The resource-allocation graph (RAG).

Nodes are threads and locks; a *request edge* ``thread -> lock`` means the
thread was allowed to wait for the lock, and a *hold edge* ``lock ->
thread`` means the thread owns the lock. Each edge is annotated with the
position (truncated call stack) of the corresponding ``monitorenter`` —
these annotations are exactly what deadlock signatures are made of.

Because the state lives on the node objects themselves (see
:mod:`repro.core.node`), this class is a thin bookkeeping layer: it keeps
the registry of live nodes, applies edge mutations, and answers structural
queries for the cycle detector and for tests. All mutation happens under
the adapter's global lock.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.callstack import CallStack
from repro.core.node import LockNode, ThreadNode
from repro.core.position import Position


class ResourceAllocationGraph:
    """Mutable RAG over :class:`ThreadNode` / :class:`LockNode` objects."""

    __slots__ = ("_threads", "_locks")

    def __init__(self) -> None:
        self._threads: dict[int, ThreadNode] = {}
        self._locks: dict[int, LockNode] = {}

    # ------------------------------------------------------------------
    # node registry
    # ------------------------------------------------------------------

    def add_thread(self, thread: ThreadNode) -> None:
        self._threads[thread.node_id] = thread

    def add_lock(self, lock: LockNode) -> None:
        self._locks[lock.node_id] = lock

    def remove_thread(self, thread: ThreadNode) -> None:
        self._threads.pop(thread.node_id, None)

    def remove_lock(self, lock: LockNode) -> None:
        self._locks.pop(lock.node_id, None)

    def threads(self) -> Iterator[ThreadNode]:
        return iter(self._threads.values())

    def locks(self) -> Iterator[LockNode]:
        return iter(self._locks.values())

    def thread_count(self) -> int:
        return len(self._threads)

    def lock_count(self) -> int:
        return len(self._locks)

    # ------------------------------------------------------------------
    # edge mutations
    # ------------------------------------------------------------------

    def set_request(
        self,
        thread: ThreadNode,
        lock: LockNode,
        position: Position,
        stack: CallStack,
    ) -> None:
        """Install the request edge ``thread -> lock``.

        A thread can wait for at most one mutex at a time, so installing a
        request while one is pending is a protocol violation by the
        adapter.
        """
        if thread.requesting is not None and thread.requesting is not lock:
            raise AssertionError(
                f"{thread.name} already requests {thread.requesting.name}, "
                f"cannot also request {lock.name}"
            )
        thread.requesting = lock
        thread.request_pos = position
        thread.request_stack = stack

    def clear_request(self, thread: ThreadNode) -> None:
        thread.requesting = None
        thread.request_pos = None
        thread.request_stack = None

    def set_hold(
        self,
        thread: ThreadNode,
        lock: LockNode,
        position: Position,
        stack: CallStack,
    ) -> None:
        """Install the hold edge ``lock -> thread`` (after acquisition)."""
        if lock.owner is not None and lock.owner is not thread:
            raise AssertionError(
                f"{lock.name} is owned by {lock.owner.name}, "
                f"cannot be acquired by {thread.name}"
            )
        lock.owner = thread
        lock.acq_pos = position
        lock.acq_stack = stack
        thread.held.add(lock)

    def clear_hold(self, thread: ThreadNode, lock: LockNode) -> None:
        if lock.owner is thread:
            lock.owner = None
        thread.held.discard(lock)

    def set_yield(
        self,
        thread: ThreadNode,
        signature,
        witnesses: Iterable[tuple[int, int]],
    ) -> None:
        """Install yield edges: ``thread`` parks on ``signature``.

        ``witnesses`` are the (thread_id, lock_id) pairs whose queue
        occupancy made the instantiation possible; the extended cycle
        detector follows edges from the yielding thread to those threads.
        """
        thread.yielding_on = signature
        thread.yield_witnesses = tuple(witnesses)

    def clear_yield(self, thread: ThreadNode) -> None:
        thread.yielding_on = None
        thread.yield_witnesses = ()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def thread_by_id(self, node_id: int) -> Optional[ThreadNode]:
        return self._threads.get(node_id)

    def lock_by_id(self, node_id: int) -> Optional[LockNode]:
        return self._locks.get(node_id)

    def blocked_threads(self) -> list[ThreadNode]:
        return [t for t in self._threads.values() if t.is_blocked()]

    def edge_count(self) -> int:
        """Total request + hold + yield edges (for invariant checks)."""
        requests = sum(
            1 for t in self._threads.values() if t.requesting is not None
        )
        holds = sum(len(t.held) for t in self._threads.values())
        yields_ = sum(
            len(t.yield_witnesses)
            for t in self._threads.values()
            if t.yielding_on is not None
        )
        return requests + holds + yields_

    def check_invariants(self) -> None:
        """Validate structural consistency; used by tests and the VM.

        Invariants:
        * every held lock's ``owner`` back-pointer matches,
        * a lock's owner lists it in ``held``,
        * no thread both yields and requests at the same time,
        * request positions are present whenever a request edge exists.
        """
        for thread in self._threads.values():
            for lock in thread.held:
                if lock.owner is not thread:
                    raise AssertionError(
                        f"{thread.name} holds {lock.name} but owner is "
                        f"{lock.owner.name if lock.owner else None}"
                    )
            if thread.requesting is not None and thread.request_pos is None:
                raise AssertionError(
                    f"{thread.name} has a request edge without a position"
                )
            if thread.requesting is not None and thread.yielding_on is not None:
                raise AssertionError(
                    f"{thread.name} both requests and yields"
                )
        for lock in self._locks.values():
            if lock.owner is not None and lock not in lock.owner.held:
                raise AssertionError(
                    f"{lock.name} owned by {lock.owner.name} but not in its held set"
                )
