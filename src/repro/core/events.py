"""The typed synchronization-event stream of a Dimmunix instance.

The paper's Dimmunix is a black box observed after the fact through
counters; Android's llkd and dynamic deadlock predictors instead stream a
*structured record of synchronization events*, which is what lets one
monitor scale to a whole platform. This module is that stream for the
reproduction: the core engine publishes one typed, immutable event per
request / acquired / release decision (plus yields, resumes, detections,
starvations, matcher budget caps, and history saves), and everything
downstream — stats,
profilers, CLIs, benchmarks, remote aggregation — subscribes instead of
scraping ``DimmunixStats`` snapshots.

Design constraints, in order:

* **The lock path must never break.** Subscriber exceptions are caught,
  counted (:attr:`EventBus.subscriber_errors`), and swallowed; they never
  propagate into ``Request``/``Acquired``/``Release``.
* **Total order.** Every published event gets a bus-wide monotonically
  increasing ``seq``, and dispatch is serialized, so a subscriber sees
  events in exactly the order the bus accepted them — even when several
  adapters (a real-thread runtime and a simulated VM) share one bus.
* **No threading dependencies beyond a captured lock.** The bus captures
  ``threading.RLock`` at import time, before the platform-wide patch can
  replace it, so publishing from inside an immunized lock path cannot
  recurse into Dimmunix.

Events carry plain payloads (thread/lock *names*, position keys) plus the
full :class:`~repro.core.signature.DeadlockSignature` object where one is
involved; :func:`event_to_dict` / :func:`event_from_dict` give the stable
JSONL wire form used by ``dimmunix-events``.

Execution domains share the taxonomy. The asyncio adapter
(:mod:`repro.aio`) publishes the same kinds with identical
semantics — a ``yield`` there parks a *task* on a future instead of an
OS thread on a condition, a ``resume`` is the task's cooperative
re-request — distinguished only by ``source`` (a session tags them
``"<session>/aio"``) and by ``thread`` carrying the task's name. The
cross-adapter parity suite (tests/aio/test_aio_parity.py) holds the
domains to kind-for-kind identical sequences on the same scenario, so
downstream consumers never need domain-specific parsing.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, ClassVar, Iterable, Optional, TextIO

from repro.core.signature import DeadlockSignature

# Captured before any platform-wide patch can replace it (repro.core is
# always imported before repro.runtime.patch can be installed).
_RLock = threading.RLock


# ----------------------------------------------------------------------
# event taxonomy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Event:
    """Base of all Dimmunix events.

    ``seq`` is assigned by the bus at publish time (``-1`` until then);
    ``source`` names the emitting instance (one session can multiplex
    several adapters onto one bus); ``ts`` is the emitter's clock — wall
    time for real-thread runtimes, virtual ticks for the simulated VM.
    ``ts_ns`` is ``time.monotonic_ns()`` at emit time (``0`` when the
    emitter predates the stamp or is simulated): the steady clock that
    inter-event latencies (``dimmunix-events summary``, ``trace``) are
    computed from — wall-clock ``ts`` can step backwards under NTP,
    monotonic never does. Only deltas within one process are
    meaningful; the epoch is arbitrary.
    """

    kind: ClassVar[str] = "event"

    source: str = "core"
    ts: float = 0.0
    ts_ns: int = 0
    seq: int = field(default=-1, compare=False)


@dataclass(frozen=True)
class RequestEvent(Event):
    """A thread entered ``Request`` (pre-``monitorenter``)."""

    kind: ClassVar[str] = "request"

    thread: str = ""
    lock: str = ""
    position: tuple = ()


@dataclass(frozen=True)
class AcquiredEvent(Event):
    """``Acquired``: the physical acquisition completed."""

    kind: ClassVar[str] = "acquired"

    thread: str = ""
    lock: str = ""


@dataclass(frozen=True)
class ReleaseEvent(Event):
    """``Release``: the lock is about to be handed back.

    ``notified`` counts the parked signatures whose threads must be woken
    because the released position appears in them (§4).
    """

    kind: ClassVar[str] = "release"

    thread: str = ""
    lock: str = ""
    notified: int = 0


@dataclass(frozen=True)
class YieldEvent(Event):
    """Avoidance parked the thread on a history signature."""

    kind: ClassVar[str] = "yield"

    thread: str = ""
    lock: str = ""
    position: tuple = ()
    signature: Optional[DeadlockSignature] = None


@dataclass(frozen=True)
class ResumeEvent(Event):
    """A previously-yielded thread woke up and is retrying its request."""

    kind: ClassVar[str] = "resume"

    thread: str = ""
    signature: Optional[DeadlockSignature] = None


@dataclass(frozen=True)
class DetectionEvent(Event):
    """A request closed a RAG cycle: a deadlock was detected.

    ``recorded`` is ``False`` when the signature deduplicated against the
    history (a re-detection of a known bug).
    """

    kind: ClassVar[str] = "detection"

    thread: str = ""
    lock: str = ""
    signature: Optional[DeadlockSignature] = None
    recorded: bool = True


@dataclass(frozen=True)
class StarvationEvent(Event):
    """An avoidance-induced deadlock (starvation) was detected.

    ``trigger`` says which path found it: ``"request"`` (a fresh request
    closed a yield cycle), ``"yield"`` (parking this thread would have
    stalled the system), or ``"timeout"`` (a real-thread safety net
    fired).
    """

    kind: ClassVar[str] = "starvation"

    thread: str = ""
    signature: Optional[DeadlockSignature] = None
    trigger: str = "request"
    recorded: bool = True


@dataclass(frozen=True)
class MatchCappedEvent(Event):
    """An instantiation check exhausted its step budget (§2.2 cap).

    Emitted by the engine whenever the matcher hits
    ``DimmunixConfig.match_step_budget`` — on the avoidance path and on
    the starvation-relief recheck alike. ``policy`` is the configured
    :class:`~repro.config.MatchCapPolicy` value (``"grant"`` /
    ``"weak"``); ``instantiable`` is the post-cap verdict the engine
    acted on — always ``False`` under ``grant``, the weak
    over-approximation's answer under ``weak``. ``steps`` is how many
    matching steps ran before the cap. A platform operator alerting on
    this kind is seeing either an adversarial history shape or a budget
    set too low; ``stats.match_caps`` / ``stats.weak_fallbacks`` carry
    the same signal as counters.
    """

    kind: ClassVar[str] = "match-capped"

    thread: str = ""
    signature: Optional[DeadlockSignature] = None
    steps: int = 0
    policy: str = "grant"
    instantiable: bool = False


@dataclass(frozen=True)
class HistorySavedEvent(Event):
    """The persistent history was written to disk."""

    kind: ClassVar[str] = "history-saved"

    path: str = ""
    signatures: int = 0


@dataclass(frozen=True)
class PredictedSeededEvent(Event):
    """A *predicted* signature entered the history before any infection.

    Emitted by ``History.add_predicted`` — the write path shared by the
    static lint (``dimmunix-lint``) and the trace miner. ``origin``
    names the predictor (``"staticlint"`` / ``"tracemine"`` / ...);
    ``confidence`` is the predictor's own estimate in [0, 1] that the
    cycle is a reachable deadlock, carried for triage, not acted on by
    the engine.
    """

    kind: ClassVar[str] = "predicted-seeded"

    signature: Optional[DeadlockSignature] = None
    origin: str = ""
    confidence: float = 1.0


@dataclass(frozen=True)
class FleetSyncEvent(Event):
    """One sync-pump cycle against the fleet history backend.

    Emitted by :class:`~repro.fleet.pump.SyncPump` after a refresh
    cycle that had anything to report (all-zero cycles stay silent —
    a healthy idle fleet should not flood the stream). ``pulled`` is
    new signatures indexed from the fleet, ``pushed`` is signatures
    uploaded since the last cycle, ``failures`` counts unreachable-
    server errors, ``spill_replayed`` counts journal entries that
    finally traveled after a partition healed. ``trigger`` says what
    started the cycle: ``"period"`` (the configured interval),
    ``"saved"`` (a history-saved event), or ``"manual"``
    (``Dimmunix.sync()`` / ``SyncPump.sync_now``).
    """

    kind: ClassVar[str] = "fleet-sync"

    pulled: int = 0
    pushed: int = 0
    failures: int = 0
    spill_replayed: int = 0
    trigger: str = "period"


@dataclass(frozen=True)
class LivelockSuspectedEvent(Event):
    """The liveness watchdog scored a node as making no forward progress.

    Cycle detection cannot see these failures — yield storms, try-lock
    spins, starved waiters never close a RAG cycle — so the watchdog
    (:class:`repro.watchdog.LivenessWatchdog`, llkd-style) raises this
    kind instead. ``reason`` says which detector fired: ``"stall"`` (a
    ``request_since_ns`` age crossed ``watchdog_stall_age``),
    ``"yield-storm"`` (repeated yield/resume with no acquire inside the
    storm window), or ``"try-lock-spin"`` (repeated requests with no
    acquire and no parks). ``report`` is the structured stall report —
    every current suspect with its age and recent event window, plus
    the RAG fragment around the suspects — as plain JSON (lists and
    dicts only), so it round-trips the wire form untouched.
    """

    kind: ClassVar[str] = "livelock-suspected"

    thread: str = ""
    reason: str = "stall"
    age_ns: int = 0
    scan: int = 0
    report: dict = field(default_factory=dict)


@dataclass(frozen=True)
class WatchdogMitigationEvent(Event):
    """The watchdog's escalation ladder reached its mitigation rung.

    A suspect that is still stuck one scan after its
    ``livelock-suspected`` event gets mitigated per
    ``DimmunixConfig.watchdog_policy``. ``action`` records what actually
    happened: ``"reported"`` (policy ``report`` — observe only),
    ``"bypass-granted"`` (policy ``break_youngest`` found the youngest
    suspect parked by avoidance and granted it a one-shot starvation
    bypass, llkd's kill analog), or ``"no-op"`` (``break_youngest``
    chose a node that is physically blocked — nothing safe to break).
    """

    kind: ClassVar[str] = "watchdog-mitigation"

    thread: str = ""
    policy: str = "report"
    action: str = "reported"
    reason: str = "stall"
    age_ns: int = 0
    scan: int = 0


EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        RequestEvent,
        AcquiredEvent,
        ReleaseEvent,
        YieldEvent,
        ResumeEvent,
        DetectionEvent,
        StarvationEvent,
        MatchCappedEvent,
        HistorySavedEvent,
        PredictedSeededEvent,
        FleetSyncEvent,
        LivelockSuspectedEvent,
        WatchdogMitigationEvent,
    )
}


# ----------------------------------------------------------------------
# the bus
# ----------------------------------------------------------------------

@dataclass
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`.

    ``internal`` marks a subscription that belongs to the emitting
    engine itself (its stats mirror): it is excluded from the bus's
    ``lifecycle_observed`` accounting, because the engine keeps those
    counters exact on the fast path without materializing events.
    """

    callback: Callable[[Event], None]
    kinds: Optional[frozenset[str]] = None
    source: Optional[str] = None
    active: bool = True
    internal: bool = False

    def wants(self, event: Event) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.source is not None and event.source != self.source:
            return False
        return True


class EventBus:
    """Serialized fan-out of Dimmunix events to subscribers.

    One bus can carry several emitters (a session's runtime core and VM
    cores all publish here); ``seq`` is bus-wide, so interleavings across
    adapters are totally ordered. Dispatch happens synchronously in the
    publishing thread, under the bus lock — subscribers therefore must be
    quick and must not block on immunized locks.
    """

    #: kinds whose emission the engine's capture fast path may elide
    #: while nobody (beyond the engines' own stats mirrors) listens.
    FASTPATH_KINDS = frozenset({"request", "acquired", "release"})

    def __init__(self) -> None:
        self._lock = _RLock()
        self._subscriptions: list[Subscription] = []
        self._claimed_sources: set[str] = set()
        self._seq = 0
        self.published = 0
        self.delivered = 0
        self.subscriber_errors = 0
        # True while at least one non-internal subscription wants a
        # FASTPATH_KINDS event. Engines read this (plain attribute, no
        # lock) on every fast-path acquisition: False means the
        # request/acquired/release events would reach no one, so the
        # engine skips building them and bumps its stats directly —
        # identical counters, none of the construct/dispatch cost.
        # Maintained under the bus lock by (un)subscribe; readers may
        # observe a just-flipped value for one acquisition, which only
        # delays the first observed event by that acquisition.
        self.lifecycle_observed = False

    # -- emitter registry --------------------------------------------------

    def claim_source(self, source: str) -> None:
        """Register ``source`` as an emitter on this bus.

        Source strings disambiguate adapters on a shared bus — two
        emitters with the same name would silently double-count into
        each other's source-filtered subscribers (stats!), so a
        collision is an error, not a warning. Released by
        :meth:`release_source`.
        """
        with self._lock:
            if source in self._claimed_sources:
                raise ValueError(
                    f"event source {source!r} is already claimed on this "
                    "bus; give each core/adapter sharing a bus a unique "
                    "name"
                )
            self._claimed_sources.add(source)

    def release_source(self, source: str) -> None:
        with self._lock:
            self._claimed_sources.discard(source)

    # -- subscription management ------------------------------------------

    def subscribe(
        self,
        callback: Callable[[Event], None],
        *,
        kinds: Optional[Iterable[str]] = None,
        source: Optional[str] = None,
        internal: bool = False,
    ) -> Subscription:
        """Register ``callback``; optionally filter by kind and/or source.

        ``kinds`` accepts event kind strings (``"request"``, ``"yield"``,
        ...) or event classes. ``internal`` is reserved for an engine's
        own stats mirror (see :class:`Subscription`). Returns the
        :class:`Subscription` handle to pass to :meth:`unsubscribe`.
        """
        kind_set: Optional[frozenset[str]] = None
        if kinds is not None:
            kind_set = frozenset(
                k if isinstance(k, str) else k.kind for k in kinds
            )
            unknown = kind_set - set(EVENT_TYPES)
            if unknown:
                raise ValueError(f"unknown event kinds: {sorted(unknown)}")
        subscription = Subscription(callback, kind_set, source, internal=internal)
        with self._lock:
            self._subscriptions.append(subscription)
            self._recount_observers_locked()
        return subscription

    def unsubscribe(
        self, subscription: Subscription | Callable[[Event], None]
    ) -> bool:
        """Remove a subscription (by handle or by callback). True if found."""
        with self._lock:
            for existing in list(self._subscriptions):
                # Equality (not identity) on the callback: bound methods
                # are recreated on every attribute access.
                if existing is subscription or existing.callback == subscription:
                    existing.active = False
                    self._subscriptions.remove(existing)
                    self._recount_observers_locked()
                    return True
        return False

    def _recount_observers_locked(self) -> None:
        wanted = self.FASTPATH_KINDS
        self.lifecycle_observed = any(
            not s.internal
            and (s.kinds is None or not wanted.isdisjoint(s.kinds))
            for s in self._subscriptions
        )

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    # -- publishing --------------------------------------------------------

    def publish(self, event: Event) -> Event:
        """Stamp ``event`` with the next ``seq`` and fan it out.

        Subscriber exceptions are isolated: they increment
        :attr:`subscriber_errors` and never reach the publisher — the
        lock path must survive any observer.
        """
        with self._lock:
            self._seq += 1
            # Equivalent to object.__setattr__ but skips the frozen-
            # dataclass dispatch — this runs on the lock path for every
            # event, and events are plain (non-slots) dataclasses, so
            # writing the instance dict directly is always valid.
            event.__dict__["seq"] = self._seq
            self.published += 1
            # Snapshot so a subscriber may (un)subscribe during dispatch
            # (the lock is reentrant) without corrupting the iteration.
            for subscription in tuple(self._subscriptions):
                if not subscription.active or not subscription.wants(event):
                    continue
                try:
                    subscription.callback(event)
                    self.delivered += 1
                except Exception:
                    self.subscriber_errors += 1
        return event


# ----------------------------------------------------------------------
# stock subscribers
# ----------------------------------------------------------------------

class EventCounter:
    """Counts events by kind (and by source) — the parity oracle.

    ``counter.counts["yield"]`` must equal the emitting core's
    ``stats.yields`` and so on; the test suite holds the two accountings
    to each other.
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.by_source: dict[str, dict[str, int]] = {}
        self.total = 0

    def __call__(self, event: Event) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        per_source = self.by_source.setdefault(event.source, {})
        per_source[event.kind] = per_source.get(event.kind, 0) + 1
        self.total += 1

    def count(self, kind: str, source: Optional[str] = None) -> int:
        if source is None:
            return self.counts.get(kind, 0)
        return self.by_source.get(source, {}).get(kind, 0)


class EventLog:
    """Retains the last ``capacity`` events in arrival order (tests, demos).

    Backed by a bounded deque so eviction at capacity is O(1) — this
    runs inside bus dispatch, on the lock path.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        self.capacity = capacity
        self.events: deque[Event] = deque(maxlen=capacity)

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[Event]:
        return [event for event in self.events if event.kind == kind]


class JsonlWriter:
    """Streams events to a file as JSON lines (the ``dimmunix-events`` feed)."""

    def __init__(self, path, flush_every: int = 1) -> None:
        self.path = path
        self._handle: Optional[TextIO] = open(path, "a", encoding="utf-8")
        self._since_flush = 0
        self.flush_every = flush_every
        self.written = 0

    def __call__(self, event: Event) -> None:
        handle = self._handle
        if handle is None:
            return
        handle.write(json.dumps(event_to_dict(event), sort_keys=True) + "\n")
        self.written += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            handle.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


# ----------------------------------------------------------------------
# wire form
# ----------------------------------------------------------------------

def event_to_dict(event: Event) -> dict:
    """The stable JSONL form: ``kind`` plus every dataclass field."""
    data: dict = {"kind": event.kind}
    for f in fields(event):
        value = getattr(event, f.name)
        if isinstance(value, DeadlockSignature):
            value = value.to_json()
        elif isinstance(value, tuple):
            value = _position_to_jsonable(value)
        data[f.name] = value
    return data


def _position_to_jsonable(value):
    return [
        _position_to_jsonable(item) if isinstance(item, tuple) else item
        for item in value
    ]


def _jsonable_to_position(value):
    if isinstance(value, list):
        return tuple(_jsonable_to_position(item) for item in value)
    return value


def event_from_dict(data: dict) -> Event:
    """Rebuild a typed event from its :func:`event_to_dict` form."""
    kind = data.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    kwargs: dict = {}
    seq = -1
    for f in fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        if f.name == "signature" and isinstance(value, dict):
            value = DeadlockSignature.from_json(value)
        elif f.name == "position" and isinstance(value, list):
            value = _jsonable_to_position(value)
        if f.name == "seq":
            seq = value
            continue
        kwargs[f.name] = value
    event = cls(**kwargs)
    object.__setattr__(event, "seq", seq)
    return event


__all__ = [
    "Event",
    "RequestEvent",
    "AcquiredEvent",
    "ReleaseEvent",
    "YieldEvent",
    "ResumeEvent",
    "DetectionEvent",
    "StarvationEvent",
    "MatchCappedEvent",
    "HistorySavedEvent",
    "PredictedSeededEvent",
    "FleetSyncEvent",
    "LivelockSuspectedEvent",
    "WatchdogMitigationEvent",
    "EVENT_TYPES",
    "EventBus",
    "Subscription",
    "EventCounter",
    "EventLog",
    "JsonlWriter",
    "event_to_dict",
    "event_from_dict",
]
