"""The persistent deadlock history.

The history is the set of signatures a process is immune to. It is loaded
by ``initDimmunix`` when a process starts (on the phone: on every Zygote
fork) and persisted whenever a new signature is discovered, so a deadlock
survives the ensuing freeze/reboot as an antibody.

On-disk format: one JSON object per line. The first line is a header
recording the format name and version; each following line is one
signature. Writes go through a temp file + rename so a crash mid-save
(likely, since saves happen *during* a deadlock) never corrupts the
history.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Optional

from repro.core.position import PositionKey
from repro.core.signature import DeadlockSignature
from repro.errors import DimmunixError, HistoryFormatError

FORMAT_NAME = "dimmunix-history"
FORMAT_VERSION = 1


class HistoryFullError(DimmunixError):
    """The history reached ``max_signatures`` — a guard against explosion."""


class History:
    """An ordered, deduplicated collection of deadlock signatures.

    Signatures are indexed by their outer position keys so the avoidance
    hot path (``signatures_at``) is a single dict probe. Deduplication uses
    the signatures' canonical keys, so re-detecting a known deadlock is a
    no-op (the paper: a bug is uniquely delimited by its outer and inner
    positions).
    """

    def __init__(self, max_signatures: int = 4096) -> None:
        self._signatures: list[DeadlockSignature] = []
        self._canonical: set = set()
        # Values are tuples so the hot path can return them without
        # copying; adds (rare) rebuild the affected entries. Deadlock and
        # starvation signatures are indexed separately because avoidance
        # consults them with opposite polarity: deadlock signatures say
        # "park here", starvation signatures say "do not park here".
        self._by_outer: dict[PositionKey, tuple[DeadlockSignature, ...]] = {}
        self._starvation_by_outer: dict[
            PositionKey, tuple[DeadlockSignature, ...]
        ] = {}
        self.max_signatures = max_signatures

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, signature: DeadlockSignature) -> bool:
        """Insert ``signature``; returns ``False`` if it was a duplicate."""
        key = signature.canonical_key()
        if key in self._canonical:
            return False
        if len(self._signatures) >= self.max_signatures:
            raise HistoryFullError(
                f"history holds {len(self._signatures)} signatures "
                f"(max {self.max_signatures})"
            )
        self._canonical.add(key)
        self._signatures.append(signature)
        index = (
            self._starvation_by_outer
            if signature.is_starvation
            else self._by_outer
        )
        for outer_key in signature.outer_position_keys():
            existing = index.get(outer_key, ())
            if signature not in existing:
                index[outer_key] = existing + (signature,)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def signatures_at(
        self, key: PositionKey, include_starvation: bool = True
    ) -> tuple[DeadlockSignature, ...]:
        """Signatures having ``key`` among their outer positions.

        Returns interned tuples directly (no copy) — this runs on every
        request at an in-history position.
        """
        found = self._by_outer.get(key, ())
        if not include_starvation:
            return found
        starving = self._starvation_by_outer.get(key, ())
        if not starving:
            return found
        return found + starving

    def starvation_signatures_at(
        self, key: PositionKey
    ) -> tuple[DeadlockSignature, ...]:
        """Starvation signatures only — the "do not park here" index."""
        return self._starvation_by_outer.get(key, ())

    def contains_position(self, key: PositionKey) -> bool:
        return key in self._by_outer or key in self._starvation_by_outer

    def contains(self, signature: DeadlockSignature) -> bool:
        return signature.canonical_key() in self._canonical

    def deadlock_count(self) -> int:
        return sum(1 for sig in self._signatures if not sig.is_starvation)

    def starvation_count(self) -> int:
        return sum(1 for sig in self._signatures if sig.is_starvation)

    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self) -> Iterator[DeadlockSignature]:
        return iter(self._signatures)

    def __contains__(self, signature: object) -> bool:
        return (
            isinstance(signature, DeadlockSignature) and self.contains(signature)
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: Path | str) -> None:
        """Atomically persist all signatures to ``path``."""
        path = Path(path)
        header = {"format": FORMAT_NAME, "version": FORMAT_VERSION}
        tmp_path = path.with_name(path.name + ".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for signature in self._signatures:
                handle.write(json.dumps(signature.to_json()) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)

    @classmethod
    def load(
        cls, path: Path | str, max_signatures: int = 4096
    ) -> "History":
        """Load a history file; a missing file yields an empty history."""
        history = cls(max_signatures=max_signatures)
        path = Path(path)
        if not path.exists():
            return history
        with open(path, "r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line.strip():
                return history
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise HistoryFormatError(f"bad history header in {path}") from exc
            if header.get("format") != FORMAT_NAME:
                raise HistoryFormatError(
                    f"{path} is not a Dimmunix history "
                    f"(format={header.get('format')!r})"
                )
            if header.get("version") != FORMAT_VERSION:
                raise HistoryFormatError(
                    f"unsupported history version {header.get('version')!r} in {path}"
                )
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                    signature = DeadlockSignature.from_json(data)
                except (
                    json.JSONDecodeError,
                    KeyError,
                    ValueError,
                    TypeError,  # valid JSON of the wrong shape (e.g. a list)
                ) as exc:
                    raise HistoryFormatError(
                        f"bad signature at {path}:{line_number}"
                    ) from exc
                history.add(signature)
        return history

    def merge_from(self, other: "History") -> int:
        """Add all signatures from ``other``; returns how many were new."""
        added = 0
        for signature in other:
            if self.add(signature):
                added += 1
        return added


def load_or_empty(
    path: Optional[Path | str], max_signatures: int = 4096
) -> History:
    """Convenience used by ``initDimmunix``: load if a path is configured."""
    if path is None:
        return History(max_signatures=max_signatures)
    return History.load(path, max_signatures=max_signatures)
