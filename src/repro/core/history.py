"""The persistent deadlock history — a facade over a pluggable store.

The history is the set of signatures a process is immune to. It is
loaded by ``initDimmunix`` when a process starts (on the phone: on every
Zygote fork) and persisted whenever a new signature is discovered, so a
deadlock survives the ensuing freeze/reboot as an antibody.

Since the store redesign, :class:`History` no longer owns storage: it
wraps a :class:`~repro.core.store.HistoryStore` backend selected by a
DSN (``mem://``, ``jsonl://``, ``sqlite://`` — see
:mod:`repro.core.store.url`) and adds the session-facing concerns:

* the single event choke point — every flush or snapshot that persists
  signatures announces exactly one
  :class:`~repro.core.events.HistorySavedEvent` on the bound bus, no
  matter which adapter triggered it;
* the attachment point for the
  :class:`~repro.core.store.WriteBehindPersister`, so persistence stays
  off the engine's lock path.

The legacy construction paths (``History()``, ``History.load(path)``,
``history.save(path)``) keep their exact semantics, backed by a
:class:`~repro.core.store.MemoryStore` and legacy-format snapshots.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Iterator, Optional

# Captured at import time, before the platform-wide patch can replace
# threading.RLock (repro.core always loads before repro.runtime.patch
# installs): a History constructed inside a patched process must not get
# an immunized flush lock, or the write-behind worker would re-enter the
# engine from the persistence path.
_RLock = threading.RLock

from repro.core.position import PositionKey
from repro.core.signature import DeadlockSignature
from repro.core.store import (
    FORMAT_NAME,
    FORMAT_VERSION,
    HistoryFullError,
    HistoryStore,
    MemoryStore,
    open_store,
    read_signatures,
)

__all__ = [
    "History",
    "HistoryFullError",
    "load_or_empty",
    "open_history",
    "FORMAT_NAME",
    "FORMAT_VERSION",
]


class History:
    """An ordered, deduplicated collection of deadlock signatures.

    Signatures are indexed by their outer position keys so the avoidance
    hot path (``signatures_at``) is a single dict probe. Deduplication
    uses the signatures' canonical keys, so re-detecting a known deadlock
    is a no-op (the paper: a bug is uniquely delimited by its outer and
    inner positions). Storage and matching live in the wrapped
    :class:`~repro.core.store.HistoryStore`.
    """

    def __init__(
        self,
        max_signatures: int = 4096,
        *,
        store: Optional[HistoryStore] = None,
    ) -> None:
        self._store = (
            store
            if store is not None
            else MemoryStore(max_signatures=max_signatures)
        )
        # Event binding: (bus, source) set once by the first owner (a
        # core or a session facade); every persistence announcement goes
        # through _announce_saved so each flush emits exactly one event.
        self._events = None
        self._source = "history"
        self._persister = None
        self._sync_pump = None
        # expire_predictions runs at most once per History instance —
        # one aging step per process run, however many engines share it.
        self._aged = False
        # Serializes flush + its announcement so concurrent flushers
        # (worker thread vs explicit shutdown flush) cannot interleave:
        # when flush() returns, any flush that beat it has already
        # published its HistorySavedEvent.
        self._flush_lock = _RLock()
        # Monotonic counter of position-index mutations (adds, predicted
        # seeds, merges, expirations, fleet pulls). The engine's capture
        # fast path caches "this position has zero signatures" stamped
        # with this epoch and revalidates only when it moves — the
        # freshness contract that demotes a hot position on the very
        # next acquire. Int bumps under the GIL; a racing reader at
        # worst revalidates once more.
        self._index_epoch = 0

    @property
    def index_epoch(self) -> int:
        """Epoch of the signature index (bumped on every mutation)."""
        return self._index_epoch

    def bump_index_epoch(self) -> None:
        """Invalidate fast-path no-history caches (index just changed).

        Called by every in-class mutation and by external refreshers —
        the :class:`~repro.fleet.pump.SyncPump` after a pull that
        brought news — since the pump refreshes the store directly,
        beneath this facade.
        """
        self._index_epoch += 1

    # ------------------------------------------------------------------
    # store access
    # ------------------------------------------------------------------

    @property
    def store(self) -> HistoryStore:
        """The storage/matching backend this history wraps."""
        return self._store

    @property
    def url(self) -> str:
        return self._store.url

    @property
    def location(self) -> Optional[Path]:
        """The backing file, or ``None`` for in-memory histories."""
        return self._store.location

    @property
    def max_signatures(self) -> int:
        return self._store.max_signatures

    @max_signatures.setter
    def max_signatures(self, value: int) -> None:
        self._store.max_signatures = value

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------

    def bind_events(self, events, source: str) -> bool:
        """Bind the bus that save announcements publish on (first wins).

        Called by the first :class:`~repro.core.engine.DimmunixCore` or
        :class:`~repro.api.Dimmunix` session that adopts this history;
        later binds are no-ops so a session-shared history announces
        with one stable source.
        """
        if self._events is not None:
            return False
        self._events = events
        self._source = source
        return True

    @property
    def persister(self):
        """The attached write-behind persister, if any."""
        return self._persister

    def attach_persister(self, persister) -> bool:
        """Adopt a write-behind persister (first wins, like the bus)."""
        if self._persister is not None:
            return False
        self._persister = persister
        return True

    def detach_persister(self) -> None:
        """Close the attached persister (final flush, join worker).

        Session teardown: the history itself stays usable — a successor
        session adopting it attaches a fresh persister.
        """
        if self._persister is not None:
            self._persister.close()
            self._persister = None

    @property
    def sync_pump(self):
        """The attached fleet sync pump, if any."""
        return self._sync_pump

    def attach_sync_pump(self, pump) -> bool:
        """Adopt a fleet sync pump (first wins, like the persister)."""
        if self._sync_pump is not None:
            return False
        self._sync_pump = pump
        return True

    def detach_sync_pump(self) -> None:
        """Stop the attached sync pump; the history stays usable."""
        if self._sync_pump is not None:
            self._sync_pump.close()
            self._sync_pump = None

    def unbind_events(self, events) -> None:
        """Release the save-announcement bus, if it is ``events``.

        The companion of :meth:`bind_events` for session teardown: a
        history that outlives its session must not keep publishing on
        (or pinning) the retired session's bus.
        """
        if self._events is events:
            self._events = None
            self._source = "history"

    def _announce_saved(self, path: Path | str) -> None:
        if self._events is None:
            return
        from repro.core.events import HistorySavedEvent

        self._events.publish(
            HistorySavedEvent(
                source=self._source,
                ts_ns=time.monotonic_ns(),
                path=str(path),
                signatures=len(self._store),
            )
        )

    # ------------------------------------------------------------------
    # mutation / queries — delegated to the store
    # ------------------------------------------------------------------

    def add(self, signature: DeadlockSignature) -> bool:
        """Insert ``signature``; returns ``False`` if it was a duplicate."""
        added = self._store.add(signature)
        if added:
            self.bump_index_epoch()
        return added

    # ------------------------------------------------------------------
    # predictive immunity (predicted -> promoted -> expired)
    # ------------------------------------------------------------------

    def add_predicted(
        self,
        signature: DeadlockSignature,
        *,
        origin: str = "predict",
        confidence: float = 1.0,
    ) -> bool:
        """Seed a *predicted* antibody — immunity before any infection.

        The shared write path of the static lint and the trace miner.
        The signature is stamped ``provenance="predicted"`` before the
        store sees it; if the same bug was already earned (or promoted),
        the duplicate is a no-op — prediction never downgrades a proven
        antibody. Each actually-new prediction is announced as one
        :class:`~repro.core.events.PredictedSeededEvent`.
        """
        signature.provenance = "predicted"
        added = self._store.add(signature)
        if added:
            self.bump_index_epoch()
        if added and self._events is not None:
            from repro.core.events import PredictedSeededEvent

            self._events.publish(
                PredictedSeededEvent(
                    source=self._source,
                    ts_ns=time.monotonic_ns(),
                    signature=signature,
                    origin=origin,
                    confidence=confidence,
                )
            )
        return added

    def promote(self, signature: DeadlockSignature) -> bool:
        """Upgrade a predicted signature that triggered a real avoidance."""
        return self._store.promote(signature)

    def expire_predictions(self, ttl_runs: int) -> int:
        """Apply the ``predicted_ttl_runs`` demotion policy once per run.

        Ages every still-predicted signature by one run and drops those
        that reached the TTL (index *and* backend). Engines call this at
        start-up; it is idempotent per History instance so several
        adapters sharing one history age it exactly once. Returns how
        many predictions were expired.
        """
        if ttl_runs <= 0:
            return 0
        with self._flush_lock:
            if self._aged:
                return 0
            self._aged = True
            expired = self._store.expire_predictions(ttl_runs)
            if expired:
                self.bump_index_epoch()
            return expired

    def provenance_counts(self) -> dict[str, int]:
        """Antibody counts by provenance (earned/predicted/promoted)."""
        return self._store.provenance_counts()

    def signatures_at(
        self, key: PositionKey, include_starvation: bool = True
    ) -> tuple[DeadlockSignature, ...]:
        return self._store.signatures_at(key, include_starvation)

    def starvation_signatures_at(
        self, key: PositionKey
    ) -> tuple[DeadlockSignature, ...]:
        return self._store.starvation_signatures_at(key)

    def contains_position(self, key: PositionKey) -> bool:
        return self._store.contains_position(key)

    def contains(self, signature: DeadlockSignature) -> bool:
        return self._store.contains(signature)

    def deadlock_count(self) -> int:
        return self._store.deadlock_count()

    def starvation_count(self) -> int:
        return self._store.starvation_count()

    def merge_from(self, other: "History | HistoryStore") -> int:
        """Add all signatures from ``other``; returns how many were new."""
        merged = self._store.merge_from(other)
        if merged:
            self.bump_index_epoch()
        return merged

    def approximate_bytes(self) -> int:
        """In-process bytes held by signatures and the matching index."""
        return self._store.approximate_bytes()

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[DeadlockSignature]:
        return iter(self._store)

    def __contains__(self, signature: object) -> bool:
        return signature in self._store

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Persist pending signatures through the store; returns count.

        The one save path: every flush that wrote something announces
        exactly one ``HistorySavedEvent``. No-op (and no event) when the
        store is clean or in-memory.
        """
        with self._flush_lock:
            written = self._store.flush()
            if written:
                # Location-less durable backends (tcp://) announce their
                # DSN — the event's "path" names where the write landed.
                location = self._store.location
                if location is not None:
                    self._announce_saved(location)
                elif self._store.persistent:
                    self._announce_saved(self._store.url)
            return written

    def save(self, path: Path | str) -> None:
        """Atomically snapshot all signatures to ``path`` (legacy format).

        Explicit export — works for any backend. Announced as one
        ``HistorySavedEvent`` when a bus is bound.
        """
        self._store.snapshot_to(path)
        self._announce_saved(path)

    def persist(self, target: Optional[Path | str] = None) -> Path:
        """Make the history durable at ``target`` — the save front door.

        The one save policy shared by every adapter's ``save_history``:

        * no ``target``: the backing location (raises for ``mem://``
          histories with no location);
        * ``target`` == the backing location of a durable store: a
          cheap :meth:`flush` (plus a snapshot if the file was never
          materialized);
        * any other case — an export path, or a memory-backed history —
          a full legacy-format snapshot.
        """
        if target is None:
            target = self.location
            if target is None:
                if self._store.persistent:
                    # Durable but location-less (tcp://): a flush *is*
                    # persistence; there is no file to name but the DSN.
                    self.flush()
                    return Path(self._store.url)
                raise ValueError(
                    "no history location: pass a path or configure "
                    "DimmunixConfig.history_url / history_path"
                )
        target = Path(target)
        if self._store.persistent and self.location == target:
            if self.flush() == 0 and not target.exists():
                self.save(target)
        else:
            self.save(target)
        return target

    def close(self) -> None:
        """Flush (through the persister when attached) and close."""
        self.detach_sync_pump()
        self.detach_persister()
        self.flush()
        self._store.close()

    @classmethod
    def load(
        cls, path: Path | str, max_signatures: int = 4096
    ) -> "History":
        """Load a legacy history file into memory; missing file = empty.

        Unlike :func:`open_history`, the result is *not* bound to the
        file — mutations stay in memory until an explicit :meth:`save`.
        """
        history = cls(max_signatures=max_signatures)
        path = Path(path)
        if not path.exists():
            return history
        for _line, signature in read_signatures(path):
            history.add(signature)
        history._store.mark_clean()
        return history

    def __repr__(self) -> str:
        return f"<History {self.url}: {len(self)} signature(s)>"


def open_history(
    url: Optional[str | Path], max_signatures: int = 4096
) -> History:
    """Open a history on the backend a DSN names (``None`` = ``mem://``)."""
    if url is None:
        return History(max_signatures=max_signatures)
    return History(store=open_store(url, max_signatures=max_signatures))


def load_or_empty(
    path: Optional[Path | str], max_signatures: int = 4096
) -> History:
    """Convenience used by ``initDimmunix``: load if a path is configured.

    Accepts a bare path (legacy in-memory load, exactly as before) or a
    DSN, which opens the named backend file-bound.
    """
    if path is None:
        return History(max_signatures=max_signatures)
    if isinstance(path, str) and "://" in path:
        return open_history(path, max_signatures=max_signatures)
    return History.load(path, max_signatures=max_signatures)
