"""Call stacks and frames.

A *frame* is a position in the program (file, line, function). A *call
stack* is a tuple of frames, innermost first. Dimmunix signatures are built
from call stacks: the "outer" stack is where a lock was acquired, the
"inner" stack is where a thread was blocked at the moment of deadlock.

Android Dimmunix truncates outer call stacks to depth 1 (only the top
frame) because retrieving deep stacks on every ``monitorenter`` is too
expensive on a phone; :meth:`CallStack.truncated` implements that
truncation and :meth:`CallStack.key` yields the hashable identity used to
intern :class:`~repro.core.position.Position` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Frame:
    """One position in the program: ``file:line`` inside ``function``."""

    file: str
    line: int
    function: str = "?"

    def key(self) -> tuple[str, int]:
        """Hashable identity of the program location.

        The function name is informational only: two frames at the same
        file and line are the same location even if the reported function
        name differs (e.g. decorated vs. plain).
        """
        return (self.file, self.line)

    def to_json(self) -> list:
        return [self.file, self.line, self.function]

    @classmethod
    def from_json(cls, data: list) -> "Frame":
        file, line, function = data
        return cls(str(file), int(line), str(function))

    def __str__(self) -> str:
        return f"{self.file}:{self.line}({self.function})"


class CallStack:
    """An immutable stack of :class:`Frame` objects, innermost frame first.

    Instances are cheap value objects: equality and hashing are defined by
    the frame keys, so stacks can index dictionaries (position tables,
    signature matchers) directly.
    """

    __slots__ = ("_frames", "_key")

    def __init__(self, frames: Iterable[Frame]):
        self._frames: tuple[Frame, ...] = tuple(frames)
        self._key: tuple[tuple[str, int], ...] = tuple(
            frame.key() for frame in self._frames
        )

    @property
    def frames(self) -> tuple[Frame, ...]:
        return self._frames

    @property
    def depth(self) -> int:
        return len(self._frames)

    def top(self) -> Frame:
        """The innermost frame — the paper's "outer/inner position"."""
        if not self._frames:
            raise IndexError("empty call stack has no top frame")
        return self._frames[0]

    def truncated(self, depth: int) -> "CallStack":
        """Keep only the ``depth`` innermost frames (depth 1 in the paper)."""
        if depth <= 0:
            raise ValueError(f"stack depth must be positive, got {depth}")
        if depth >= len(self._frames):
            return self
        return CallStack(self._frames[:depth])

    def key(self) -> tuple[tuple[str, int], ...]:
        """Hashable identity: the tuple of frame keys."""
        return self._key

    def to_json(self) -> list:
        return [frame.to_json() for frame in self._frames]

    @classmethod
    def from_json(cls, data: list) -> "CallStack":
        return cls(Frame.from_json(item) for item in data)

    @classmethod
    def single(cls, file: str, line: int, function: str = "?") -> "CallStack":
        """Convenience constructor for a depth-1 stack (tests, synthetic sigs)."""
        return cls((Frame(file, line, function),))

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __len__(self) -> int:
        return len(self._frames)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CallStack):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        inner = " <- ".join(str(frame) for frame in self._frames)
        return f"CallStack[{inner}]"


EMPTY_STACK = CallStack(())
