"""Exception hierarchy for the Dimmunix reproduction.

All library errors derive from :class:`DimmunixError` so callers can catch
the whole family with one clause. The two "semantic" errors —
:class:`DeadlockDetectedError` and :class:`StarvationDetectedError` — carry
the signature that was recorded, so handlers can inspect or persist it.
"""

from __future__ import annotations


class DimmunixError(Exception):
    """Base class for all errors raised by this library."""


class DeadlockDetectedError(DimmunixError):
    """A deadlock cycle was found in the resource-allocation graph.

    Raised only under ``DetectionPolicy.RAISE``; with the paper-faithful
    ``BLOCK`` policy the deadlock is recorded and the threads are left to
    deadlock, exactly as on the phone.
    """

    def __init__(self, signature, message: str = "deadlock detected"):
        # ``signature`` may be None when the raiser cannot name the
        # specific signature race-free (a BREAK-policy denial observed
        # through a boolean return) — better no signature than another
        # thread's.
        super().__init__(
            f"{message}: {signature!s}" if signature is not None else message
        )
        self.signature = signature


class StarvationDetectedError(DimmunixError):
    """An avoidance-induced deadlock (starvation) was found and recorded."""

    def __init__(self, signature, message: str = "avoidance-induced starvation"):
        super().__init__(f"{message}: {signature!s}")
        self.signature = signature


class HistoryFormatError(DimmunixError):
    """The persistent deadlock history file is malformed or of a wrong version."""


class VMError(DimmunixError):
    """Base class for simulated Dalvik VM errors."""


class IllegalMonitorStateError(VMError):
    """A thread released or waited on a monitor it does not own."""


class VMDeadlockError(VMError):
    """The simulated VM reached a global stall: no runnable thread exists."""

    def __init__(self, message: str, blocked_threads=()):
        super().__init__(message)
        self.blocked_threads = tuple(blocked_threads)


class ProgramError(VMError):
    """A simulated program is malformed (bad register, bad jump target, ...)."""


class BinderError(DimmunixError):
    """A simulated binder (cross-service) call failed."""
