"""repro — reproduction of "Platform-wide Deadlock Immunity for Mobile
Phones" (Jula, Rensch, Candea; HotDep/DSN 2011).

Public entry points:

* :func:`repro.immunity` / :class:`repro.Dimmunix` — the unified facade:
  one session object (one config, one history, one typed event stream)
  that drives every adapter layer below. Start here.
* :mod:`repro.core` — the Dimmunix algorithm (detection, signatures,
  history, avoidance) as a pure state machine, plus the typed
  event stream (:mod:`repro.core.events`) every decision is published on.
* :mod:`repro.runtime` — deadlock immunity for real ``threading`` code:
  wrapped locks, ``synchronized`` monitors, and a platform-wide
  monkey-patch (the analog of patching the Dalvik VM).
* :mod:`repro.dalvik` — a deterministic, virtual-time Dalvik VM substrate
  used by the phone simulation and the benchmark harness.
* :mod:`repro.android` — the simulated Android platform: system services
  (including the issue-7986 deadlock), Zygote-forked app processes, the
  Table-1 app catalog, and memory/power accounting.
* :mod:`repro.workloads`, :mod:`repro.analysis` — the evaluation
  workloads and reporting used by ``benchmarks/``.
* :mod:`repro.instrument` — the §3.1 alternative: instrumentation-based
  (AST-woven) Dimmunix, full or selective-to-history.
* :mod:`repro.ndk` — §4's native gap: simulated POSIX-thread mutexes
  under JNI code and the VM, with the three interception policies.
* :mod:`repro.aio` — deadlock immunity for ``asyncio`` coroutine tasks:
  immunized asyncio primitives with cooperative yields, an opt-in
  ``asyncio`` patch, and cross-domain locks so tasks and threads share
  one RAG.
* :mod:`repro.tools` — the ``dimmunix-history``, ``dimmunix-report``,
  and ``dimmunix-events`` command-line tools.
"""

from repro.config import DetectionPolicy, DimmunixConfig, MatchCapPolicy
from repro.errors import (
    DeadlockDetectedError,
    DimmunixError,
    StarvationDetectedError,
)
from repro.version import __version__

__all__ = [
    "Dimmunix",
    "immunity",
    "DimmunixConfig",
    "DetectionPolicy",
    "MatchCapPolicy",
    "DimmunixError",
    "DeadlockDetectedError",
    "StarvationDetectedError",
    "__version__",
]


def __getattr__(name: str):
    # The facade pulls in every adapter layer; import it lazily so that
    # ``import repro`` stays light and cycle-free for the subpackages.
    if name in ("Dimmunix", "immunity"):
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
