"""``dimmunix-history`` — inspect and manage persistent deadlock histories.

Subcommands::

    list <src>                  one line per signature
    show <src> <index>          full outer/inner stacks of one signature
    stats <src>                 counts and position census
    merge <out> <in> [<in>...]  union of several histories (deduplicated)
    diff <a> <b>                signatures unique to each side / common
    prune <src> [filters]       write back a filtered history
    compact <src>               rewrite deduplicated, optionally capped
    migrate <src> <dst>         copy a history onto another backend
    validate <src>              load strictly; non-zero exit on problems

Every ``<src>``/``<dst>`` accepts either a plain file path (the legacy
flat format written by ``History.save()``) or a history DSN selecting a
backend: ``jsonl:///path`` (same flat format, append-only),
``sqlite:///path`` (indexed, multi-process-safe), ``shard:///dir``
(a directory of hash-sharded sqlite files, ``?shards=N`` at creation),
or ``tcp://host:port`` (a live ``dimmunix-serve`` fleet pool).
``migrate`` is the operator's path off legacy flat files — and between
fleet topologies (resharding, seeding a server)::

    dimmunix-history migrate /data/system_server.history \\
        sqlite:///data/platform-history.db
    dimmunix-history migrate shard:///data/pool "shard:///data/pool16?shards=16"
    dimmunix-history migrate sqlite:///data/platform-history.db \\
        tcp://immunity.fleet:7741

``compact`` refuses a ``tcp://`` target: rewriting a live fleet pool
in place (purge + re-add) would yank antibodies out from under every
connected client mid-sync — run it on the server's backing store
instead.

The tool works on histories produced by the real-thread runtime, the
substrate VM, and the weaver alike (including mixed Java + native
signatures from the NDK layer).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.callstack import CallStack
from repro.core.history import History, open_history
from repro.core.signature import DeadlockSignature
from repro.core.store import HistoryFullError, parse_history_url
from repro.core.store.url import SCHEME_MEM, SCHEME_TCP, HistoryUrlError
from repro.errors import DimmunixError, HistoryFormatError


def _format_stack(stack: CallStack) -> str:
    return " <- ".join(
        f"{frame.file}:{frame.line}({frame.function})" for frame in stack
    )


def _signature_line(index: int, signature: DeadlockSignature) -> str:
    outers = ", ".join(
        "|".join(f"{file}:{line}" for file, line in entry.outer.key())
        for entry in signature.entries
    )
    return (
        f"[{index}] {signature.kind:<10} size={signature.size}  "
        f"outer: {outers}"
    )


def _load(spec: str, max_signatures: int = 1_000_000) -> History:
    """Open a history for reading from a path or DSN.

    Plain paths load the legacy flat format into memory (exactly the
    old behaviour); DSNs open the named backend. The generous default
    capacity means inspection never trips ``HistoryFullError`` on a
    file some larger-capacity process wrote.
    """
    if "://" in spec:
        url = parse_history_url(spec)
        if url.scheme == SCHEME_MEM:
            raise HistoryUrlError("mem:// holds no data to read")
        if url.scheme == SCHEME_TCP:
            # An engine tolerates an unreachable server (it spills and
            # heals later); a CLI read must not mistake a partition for
            # an empty pool.
            history = open_history(spec, max_signatures=max_signatures)
            if not history.store.connected:
                from repro.fleet.remote import FleetUnreachableError

                raise FleetUnreachableError(
                    f"{spec}: fleet server unreachable "
                    "(is dimmunix-serve running?)"
                )
            return history
        if url.path is not None and not url.path.exists():
            # Missing histories read as empty (initDimmunix semantics) —
            # but a read-only command must not create the backend file
            # (opening sqlite:// would) as a side effect of a typo.
            return History(max_signatures=max_signatures)
        return open_history(spec, max_signatures=max_signatures)
    return History.load(Path(spec), max_signatures=max_signatures)


def _write_out(
    history: History, spec: str, replace: bool = False
) -> tuple[int, int]:
    """Write ``history`` to a path (legacy format) or DSN (backend).

    ``replace`` rewrites the target (merge/prune/compact); otherwise
    the signatures merge into whatever the target already holds
    (migrate) — for paths and DSNs alike. Returns
    ``(written, already_present)``.
    """
    if "://" not in spec:
        path = Path(spec)
        if replace or not path.exists():
            history.save(path)
            return len(history), 0
        existing = History.load(path, max_signatures=1_000_000)
        added = existing.merge_from(history)
        existing.save(path)
        return added, len(history) - added
    url = parse_history_url(spec)
    if url.scheme == SCHEME_MEM:
        raise HistoryUrlError(f"cannot write to {spec!r}: mem:// is not durable")
    target = open_history(spec, max_signatures=1_000_000)
    try:
        if replace:
            target.store.purge()
        added = target.merge_from(history)
        target.flush()
        return added, len(history) - added
    finally:
        target.close()


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------

def cmd_list(args: argparse.Namespace) -> int:
    history = _load(args.file)
    if len(history) == 0:
        print(f"{args.file}: empty history")
        return 0
    for index, signature in enumerate(history):
        print(_signature_line(index, signature))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    history = _load(args.file)
    signatures = list(history)
    if not 0 <= args.index < len(signatures):
        print(
            f"error: index {args.index} out of range "
            f"(history holds {len(signatures)} signatures)",
            file=sys.stderr,
        )
        return 2
    signature = signatures[args.index]
    print(f"signature [{args.index}] kind={signature.kind} size={signature.size}")
    for position, entry in enumerate(signature.entries):
        print(f"  thread {position + 1}:")
        print(f"    acquired at (outer): {_format_stack(entry.outer)}")
        print(f"    blocked  at (inner): {_format_stack(entry.inner)}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    history = _load(args.file)
    positions: dict[tuple, int] = {}
    sizes: dict[int, int] = {}
    for signature in history:
        sizes[signature.size] = sizes.get(signature.size, 0) + 1
        for key in signature.outer_position_keys():
            positions[key] = positions.get(key, 0) + 1
    provenance = history.provenance_counts()
    print(f"{args.file}:")
    print(f"  signatures:  {len(history)}")
    print(f"  deadlocks:   {history.deadlock_count()}")
    print(f"  starvations: {history.starvation_count()}")
    print(
        f"  provenance:  {provenance.get('earned', 0)} earned, "
        f"{provenance.get('promoted', 0)} promoted, "
        f"{provenance.get('predicted', 0)} predicted"
    )
    print(f"  distinct outer positions: {len(positions)}")
    for size, count in sorted(sizes.items()):
        print(f"  {count} signature(s) of {size} thread(s)")
    if positions and args.top > 0:
        print(f"  top positions (by signature membership):")
        ranked = sorted(positions.items(), key=lambda kv: -kv[1])
        for key, count in ranked[: args.top]:
            where = "|".join(f"{file}:{line}" for file, line in key)
            print(f"    {count:>3}x {where}")
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    merged = History(max_signatures=args.max_signatures)
    total_seen = 0
    try:
        for source in args.inputs:
            history = _load(source)
            total_seen += len(history)
            added = merged.merge_from(history)
            print(f"{source}: {len(history)} signature(s), {added} new")
    except HistoryFullError as error:
        print(
            f"error: {error} — raise --max-signatures to merge everything",
            file=sys.stderr,
        )
        return 2
    # merge's contract: the output becomes exactly the union of the
    # inputs (the legacy overwrite semantic); migrate is the additive
    # command.
    _write_out(merged, args.output, replace=True)
    print(
        f"wrote {len(merged)} signature(s) to {args.output} "
        f"({total_seen - len(merged)} duplicate(s) dropped)"
    )
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    """Move a history between backends (the legacy-file exit ramp)."""
    source = _load(args.src)
    if args.src.strip() == args.dst.strip():
        print("error: source and destination are the same", file=sys.stderr)
        return 2
    added, present = _write_out(source, args.dst)
    print(
        f"{args.src}: {len(source)} signature(s) -> {args.dst}: "
        f"{added} migrated, {present} already present"
    )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    left = _load(args.left)
    right = _load(args.right)
    left_keys = {sig.canonical_key(): sig for sig in left}
    right_keys = {sig.canonical_key(): sig for sig in right}
    only_left = [sig for key, sig in left_keys.items() if key not in right_keys]
    only_right = [sig for key, sig in right_keys.items() if key not in left_keys]
    common = [sig for key, sig in left_keys.items() if key in right_keys]
    print(f"only in {args.left}: {len(only_left)}")
    for index, signature in enumerate(only_left):
        print("  " + _signature_line(index, signature))
    print(f"only in {args.right}: {len(only_right)}")
    for index, signature in enumerate(only_right):
        print("  " + _signature_line(index, signature))
    print(f"common: {len(common)}")
    return 1 if (only_left or only_right) else 0


def cmd_prune(args: argparse.Namespace) -> int:
    history = _load(args.file)
    kept = History(max_signatures=history.max_signatures)
    dropped = 0
    position_filter: Optional[set] = None
    if args.drop_position:
        position_filter = set()
        for spec in args.drop_position:
            file, _sep, line = spec.rpartition(":")
            if not file or not line.isdigit():
                print(
                    f"error: bad position {spec!r} (expected file:line)",
                    file=sys.stderr,
                )
                return 2
            position_filter.add((file, int(line)))
    for signature in history:
        if args.drop_starvation and signature.is_starvation:
            dropped += 1
            continue
        if args.drop_deadlocks and not signature.is_starvation:
            dropped += 1
            continue
        if position_filter is not None and any(
            key and key[0] in position_filter
            for key in signature.outer_position_keys()
        ):
            dropped += 1
            continue
        kept.add(signature)
    target = args.output if args.output else args.file
    _write_out(kept, target, replace=True)
    print(f"kept {len(kept)}, dropped {dropped} -> {target}")
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Rewrite a history deduplicated and (optionally) capacity-capped.

    Reports exactly what a capacity cap costs: signatures dropped past
    ``--max-signatures`` are counted and the exit status is non-zero,
    so an operator can never truncate antibodies silently.
    """
    target = args.output if args.output else args.file
    if "://" in target and parse_history_url(target).scheme == SCHEME_TCP:
        print(
            f"error: compact cannot rewrite {target}: purging a live "
            "fleet pool would yank antibodies out from under every "
            "connected client; compact the server's backing store "
            "instead",
            file=sys.stderr,
        )
        return 2
    history = _load(args.file)
    capacity = (
        args.max_signatures if args.max_signatures else max(len(history), 1)
    )
    compacted = History(max_signatures=capacity)
    truncated = 0
    for signature in history:
        try:
            compacted.add(signature)
        except HistoryFullError:
            truncated += 1
    target = args.output if args.output else args.file
    _write_out(compacted, target, replace=True)
    print(
        f"compacted {len(history)} -> {len(compacted)} signature(s) "
        f"-> {target}"
    )
    if truncated:
        print(
            f"warning: capacity {capacity} truncated {truncated} "
            "signature(s) — immunity to those deadlocks is lost",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        history = _load(args.file)
    except (HistoryFormatError, HistoryUrlError) as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"UNREADABLE: {error}", file=sys.stderr)
        return 1
    print(
        f"OK: {args.file} holds {len(history)} signature(s) "
        f"({history.deadlock_count()} deadlock, "
        f"{history.starvation_count()} starvation)"
    )
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dimmunix-history",
        description=(
            "Inspect and manage Dimmunix deadlock histories. Sources and "
            "targets accept plain paths (legacy flat files) or DSNs: "
            "jsonl:///path, sqlite:///path, shard:///dir[?shards=N], "
            "tcp://host:port (a running dimmunix-serve)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="one line per signature")
    list_parser.add_argument("file", metavar="src")
    list_parser.set_defaults(func=cmd_list)

    show = commands.add_parser("show", help="full stacks of one signature")
    show.add_argument("file", metavar="src")
    show.add_argument("index", type=int)
    show.set_defaults(func=cmd_show)

    stats = commands.add_parser("stats", help="counts and position census")
    stats.add_argument("file", metavar="src")
    stats.add_argument("--top", type=int, default=5)
    stats.set_defaults(func=cmd_stats)

    merge = commands.add_parser("merge", help="union of several histories")
    merge.add_argument("output")
    merge.add_argument("inputs", nargs="+")
    merge.add_argument("--max-signatures", type=int, default=4096)
    merge.set_defaults(func=cmd_merge)

    migrate = commands.add_parser(
        "migrate",
        help="copy a history onto another backend (path or DSN to DSN)",
    )
    migrate.add_argument("src")
    migrate.add_argument("dst")
    migrate.set_defaults(func=cmd_migrate)

    diff = commands.add_parser("diff", help="compare two histories")
    diff.add_argument("left")
    diff.add_argument("right")
    diff.set_defaults(func=cmd_diff)

    compact = commands.add_parser(
        "compact",
        help="rewrite deduplicated; reports (and fails on) truncation",
    )
    compact.add_argument("file", metavar="src")
    compact.add_argument("--output", help="write here instead of in place")
    compact.add_argument(
        "--max-signatures",
        type=int,
        default=0,
        help="cap the rebuilt history (0 = keep everything)",
    )
    compact.set_defaults(func=cmd_compact)

    prune = commands.add_parser("prune", help="filter a history in place")
    prune.add_argument("file", metavar="src")
    prune.add_argument("--output", help="write here instead of in place")
    prune.add_argument(
        "--drop-starvation",
        action="store_true",
        help="remove avoidance-induced (starvation) signatures",
    )
    prune.add_argument(
        "--drop-deadlocks",
        action="store_true",
        help="remove plain deadlock signatures",
    )
    prune.add_argument(
        "--drop-position",
        action="append",
        metavar="FILE:LINE",
        help="remove signatures whose outer position matches (repeatable)",
    )
    prune.set_defaults(func=cmd_prune)

    validate = commands.add_parser("validate", help="strict load check")
    validate.add_argument("file")
    validate.set_defaults(func=cmd_validate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except HistoryUrlError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except DimmunixError as error:
        # Covers malformed histories and an unreachable tcp:// fleet
        # server alike — the CLI must never mistake a partition for an
        # empty pool, and never tracebacks on operator input.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
