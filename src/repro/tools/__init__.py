"""Operational tooling around the persistent deadlock history.

On a Dimmunix-enabled phone, the history files *are* the immunity: they
are written during freezes, survive reboots, and can be shipped between
devices (a vendor collecting signatures from the field and pre-seeding
them on new installs is the "software vendors as a safety net" use case
of §2.2). This package provides the operator's side of that story:

* :mod:`repro.tools.history_cli` — ``dimmunix-history``: inspect, merge,
  diff, prune, and validate history files.
* :mod:`repro.tools.events_cli` — ``dimmunix-events``: tail, summarize,
  and replay JSONL event streams recorded from the typed event bus.
"""

from repro.tools.events_cli import main as events_main
from repro.tools.history_cli import main as history_main

__all__ = ["history_main", "events_main"]
